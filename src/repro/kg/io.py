"""TSV persistence for knowledge graphs (DRKG-style `h\\tr\\tt` files)."""

from __future__ import annotations

import os

import numpy as np

from .graph import KnowledgeGraph
from .vocab import Vocabulary

__all__ = ["save_kg", "load_kg", "write_triples_tsv", "read_triples_tsv"]


def write_triples_tsv(path: str, graph: KnowledgeGraph, triples: np.ndarray | None = None) -> None:
    """Write triples as tab-separated entity/relation names, one per line."""
    rows = graph.triples if triples is None else triples
    with open(path, "w", encoding="utf-8") as handle:
        for h, r, t in rows:
            handle.write(
                f"{graph.entities.name(int(h))}\t"
                f"{graph.relations.name(int(r))}\t"
                f"{graph.entities.name(int(t))}\n"
            )


def read_triples_tsv(path: str, graph: KnowledgeGraph) -> np.ndarray:
    """Read a TSV written by :func:`write_triples_tsv` back into ids."""
    rows = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(f"{path}:{line_no}: expected 3 columns, got {len(parts)}")
            h, r, t = parts
            rows.append((graph.entities.id(h), graph.relations.id(r), graph.entities.id(t)))
    return np.asarray(rows, dtype=np.int64).reshape(-1, 3)


def save_kg(directory: str, graph: KnowledgeGraph) -> None:
    """Persist a KG as ``entities.tsv``, ``relations.tsv``, ``triples.tsv``."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "entities.tsv"), "w", encoding="utf-8") as handle:
        for idx, name in enumerate(graph.entities):
            etype = graph.entity_types[idx] if graph.entity_types else ""
            handle.write(f"{name}\t{etype}\n")
    with open(os.path.join(directory, "relations.tsv"), "w", encoding="utf-8") as handle:
        for name in graph.relations:
            handle.write(f"{name}\n")
    write_triples_tsv(os.path.join(directory, "triples.tsv"), graph)


def load_kg(directory: str, name: str = "kg") -> KnowledgeGraph:
    """Load a KG saved by :func:`save_kg`."""
    entities = Vocabulary()
    entity_types: list[str] = []
    with open(os.path.join(directory, "entities.tsv"), encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            ename, _, etype = line.partition("\t")
            entities.add(ename)
            entity_types.append(etype)
    relations = Vocabulary()
    with open(os.path.join(directory, "relations.tsv"), encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                relations.add(line)
    graph = KnowledgeGraph(
        entities=entities,
        relations=relations,
        triples=np.zeros((0, 3), dtype=np.int64),
        entity_types=entity_types,
        name=name,
    )
    triples = read_triples_tsv(os.path.join(directory, "triples.tsv"), graph)
    return graph.with_triples(triples)
