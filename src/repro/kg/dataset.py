"""Train/valid/test splits and 1-to-N training batches.

Implements the paper's optimisation protocol (Section IV-D):

* the KG is split 8:1:1 into train/valid/test (Table II);
* every training triple ``(h, r, t)`` is augmented with an inverse triple
  ``(t, r^-1, h)`` where ``r^-1`` is a fresh relation id, so tail ranking
  covers both directions;
* batches use *1-to-many scoring*: for each ``(h, r)`` query the model
  scores all entities at once against a multi-hot label vector of every
  true tail (optionally capped at ``1-to-K`` sampled negatives, the
  OMAHA-MM setting of 1-to-1000).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .graph import KnowledgeGraph

__all__ = ["KGSplit", "split_triples", "add_inverse_relations", "OneToNBatcher"]


@dataclass
class KGSplit:
    """A train/valid/test partition of one knowledge graph."""

    graph: KnowledgeGraph
    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray

    @property
    def num_entities(self) -> int:
        return self.graph.num_entities

    @property
    def num_relations(self) -> int:
        return self.graph.num_relations

    def all_true(self) -> set[tuple[int, int, int]]:
        """Union of all splits as a triple set (filtered-ranking support)."""
        stacked = np.concatenate([self.train, self.valid, self.test])
        return {(int(h), int(r), int(t)) for h, r, t in stacked}

    def summary(self) -> dict[str, int]:
        """Table II-style statistics for this split."""
        return {
            "#Ent": self.num_entities,
            "#Rel": self.num_relations,
            "#Train": len(self.train),
            "#Valid": len(self.valid),
            "#Test": len(self.test),
        }


def split_triples(
    graph: KnowledgeGraph,
    rng: np.random.Generator,
    ratios: tuple[float, float, float] = (0.8, 0.1, 0.1),
) -> KGSplit:
    """Randomly split ``graph`` into train/valid/test by ``ratios``.

    Two hygiene rules, both standard for KG completion benchmarks:

    * every entity and relation appearing in valid/test is also seen in
      train (violating triples are moved into train), so evaluation
      never queries an untrained embedding;
    * reciprocal duplicates of symmetric relations — ``(a, r, b)`` and
      ``(b, r, a)`` both present — are kept in the *same* partition,
      otherwise a model could read half of a symmetric fact in train and
      be handed the other half as a test answer (the classic inverse-
      leakage flaw of FB15k).
    """
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError("split ratios must sum to 1")
    triples = graph.triples.copy()
    present = {(int(h), int(r), int(t)) for h, r, t in triples}

    # Group reciprocal symmetric duplicates under one undirected key.
    groups: dict[tuple[int, int, int], list[int]] = {}
    for idx, (h, r, t) in enumerate(triples):
        h, r, t = int(h), int(r), int(t)
        if (t, r, h) in present and h != t:
            key = (r, min(h, t), max(h, t))
        else:
            key = (r, h, -t - 1)  # unique key, cannot collide with pairs
        groups.setdefault(key, []).append(idx)

    group_ids = list(groups.values())
    order = rng.permutation(len(group_ids))
    shuffled: list[int] = []
    for gi in order:
        shuffled.extend(group_ids[gi])
    triples = triples[shuffled]
    n_train = int(len(triples) * ratios[0])
    n_valid = int(len(triples) * ratios[1])
    # Nudge the boundaries so reciprocal pairs are never separated.
    def _aligned(boundary: int) -> int:
        while 0 < boundary < len(triples):
            h, r, t = (int(v) for v in triples[boundary - 1])
            nh, nr, nt = (int(v) for v in triples[boundary])
            if (nh, nr, nt) == (t, r, h):
                boundary += 1
                continue
            break
        return boundary

    n_train = _aligned(n_train)
    n_valid_end = _aligned(n_train + n_valid)
    train = triples[:n_train]
    valid = triples[n_train:n_valid_end]
    test = triples[n_valid_end:]

    seen_entities = set(train[:, 0]) | set(train[:, 2])
    seen_relations = set(train[:, 1])

    def _rescue(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ok = np.array([
            h in seen_entities and t in seen_entities and r in seen_relations
            for h, r, t in rows
        ], dtype=bool) if len(rows) else np.zeros(0, dtype=bool)
        return rows[ok], rows[~ok]

    valid, rescued_v = _rescue(valid)
    test, rescued_t = _rescue(test)
    if len(rescued_v) or len(rescued_t):
        train = np.concatenate([train, rescued_v, rescued_t])
    return KGSplit(graph=graph, train=train, valid=valid, test=test)


def add_inverse_relations(triples: np.ndarray, num_relations: int) -> np.ndarray:
    """Append ``(t, r + num_relations, h)`` for every ``(h, r, t)``.

    The returned array contains original and inverse triples; models
    trained on it must allocate ``2 * num_relations`` relation embeddings.
    """
    inverse = triples[:, [2, 1, 0]].copy()
    inverse[:, 1] += num_relations
    return np.concatenate([triples, inverse])


class OneToNBatcher:
    """Batches of ``(head, relation)`` queries with multi-hot tail labels.

    Parameters
    ----------
    triples:
        Training triples (typically after inverse augmentation).
    num_entities:
        Size of the label vector.
    batch_size:
        Queries per batch.
    rng:
        Shuffling source.
    label_smoothing:
        Smoothing applied to the multi-hot targets (ConvE-style).
    negatives:
        ``None`` for full 1-to-N scoring; an integer ``K`` restricts each
        query to its true tails plus ``K`` sampled negatives (the paper's
        "1-to-1000" OMAHA-MM setting).
    """

    def __init__(
        self,
        triples: np.ndarray,
        num_entities: int,
        batch_size: int,
        rng: np.random.Generator,
        label_smoothing: float = 0.1,
        negatives: int | None = None,
    ) -> None:
        self.num_entities = num_entities
        self.batch_size = batch_size
        self.rng = rng
        self.label_smoothing = label_smoothing
        # Sampling K >= num_entities negatives is strictly worse than full
        # 1-to-N scoring (duplicates, wider batches), so fall back.
        if negatives is not None and negatives >= num_entities:
            negatives = None
        self.negatives = negatives
        grouped: dict[tuple[int, int], set[int]] = defaultdict(set)
        for h, r, t in triples:
            grouped[(int(h), int(r))].add(int(t))
        self.queries = np.array(sorted(grouped), dtype=np.int64)
        self.tails = [np.fromiter(grouped[tuple(q)], dtype=np.int64) for q in self.queries]

    def __len__(self) -> int:
        return (len(self.queries) + self.batch_size - 1) // self.batch_size

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def epoch(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]]:
        """Yield ``(heads, relations, labels, candidates)`` batches.

        ``labels`` is ``(B, num_entities)`` for full 1-to-N, or
        ``(B, K + max_true)`` aligned with ``candidates`` when sampled
        negatives are used.  ``candidates`` is ``None`` in the full case.
        """
        order = self.rng.permutation(len(self.queries))
        for start in range(0, len(order), self.batch_size):
            batch_ids = order[start:start + self.batch_size]
            heads = self.queries[batch_ids, 0]
            rels = self.queries[batch_ids, 1]
            if self.negatives is None:
                labels = np.zeros((len(batch_ids), self.num_entities))
                for row, qid in enumerate(batch_ids):
                    labels[row, self.tails[qid]] = 1.0
                if self.label_smoothing:
                    labels = (1.0 - self.label_smoothing) * labels \
                        + self.label_smoothing / self.num_entities
                yield heads, rels, labels, None
            else:
                max_true = max(len(self.tails[qid]) for qid in batch_ids)
                width = max_true + self.negatives
                candidates = self.rng.integers(0, self.num_entities,
                                               size=(len(batch_ids), width))
                labels = np.zeros((len(batch_ids), width))
                for row, qid in enumerate(batch_ids):
                    true_tails = self.tails[qid]
                    candidates[row, :len(true_tails)] = true_tails
                    labels[row, :len(true_tails)] = 1.0
                    # Knock out accidental positives among the negatives.
                    true_set = set(int(t) for t in true_tails)
                    for col in range(len(true_tails), width):
                        if int(candidates[row, col]) in true_set:
                            labels[row, col] = 1.0
                if self.label_smoothing:
                    labels = (1.0 - self.label_smoothing) * labels \
                        + self.label_smoothing / width
                yield heads, rels, labels, candidates
