"""Negative sampling strategies for triple-based (margin/NLL) training.

Covers the schemes used by the baselines:

* **uniform** corruption (TransE): replace head or tail uniformly;
* **Bernoulli** corruption (TransH, adopted widely): corrupt head vs tail
  with probability proportional to tails-per-head / heads-per-tail so
  Many-to-1 relations are corrupted sensibly;
* **filtered** sampling: never emit a corruption that is actually a true
  triple anywhere in the dataset (the "filtered setting" of Bordes et
  al. used in every experiment of the paper);
* **self-adversarial** weighting (RotatE): not a sampler but a weighting
  of negative scores — provided as a helper used by a-RotatE and PairRE.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .graph import KnowledgeGraph

__all__ = ["NegativeSampler", "bernoulli_probabilities", "self_adversarial_weights"]


def _child_seed_sequence(rng: np.random.Generator,
                         seed_offset: int) -> np.random.SeedSequence:
    """Deterministic child seed sequence for a shard-local generator.

    Extends the generator's own :class:`~numpy.random.SeedSequence`
    spawn key with ``seed_offset``, so the child stream depends only on
    the parent's seed and the offset — never on how much of the parent
    stream has been consumed.  Generators built without a seed sequence
    (directly from a raw ``BitGenerator``) fall back to a bare
    ``SeedSequence(seed_offset)``, which is still deterministic.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        return np.random.SeedSequence(
            entropy=seed_seq.entropy,
            spawn_key=tuple(seed_seq.spawn_key) + (seed_offset,))
    return np.random.SeedSequence(seed_offset)


def bernoulli_probabilities(triples: np.ndarray, num_relations: int) -> np.ndarray:
    """Per-relation probability of corrupting the *head*.

    ``p_head = tph / (tph + hpt)`` where ``tph`` is the mean number of
    tails per head and ``hpt`` the mean number of heads per tail (Wang et
    al., 2014).
    """
    tails_per_head: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
    heads_per_tail: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
    for h, r, t in triples:
        tails_per_head[int(r)][int(h)].add(int(t))
        heads_per_tail[int(r)][int(t)].add(int(h))
    probs = np.full(num_relations, 0.5)
    for r in range(num_relations):
        if not tails_per_head[r]:
            continue
        tph = np.mean([len(s) for s in tails_per_head[r].values()])
        hpt = np.mean([len(s) for s in heads_per_tail[r].values()])
        probs[r] = tph / (tph + hpt)
    return probs


def self_adversarial_weights(negative_scores: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Softmax weights over negatives (Sun et al., 2019), detached.

    Higher-scoring (harder) negatives receive larger weight.  The caller
    multiplies per-negative losses by these weights.
    """
    scaled = temperature * negative_scores
    scaled = scaled - scaled.max(axis=-1, keepdims=True)
    e = np.exp(scaled)
    return e / e.sum(axis=-1, keepdims=True)


class NegativeSampler:
    """Corrupt triples into negatives, with optional filtering/Bernoulli.

    Parameters
    ----------
    graph:
        Source KG (provides entity count and, for filtering, true triples).
    triples:
        Training triples used to fit Bernoulli statistics.
    rng:
        Randomness source.
    bernoulli:
        Use per-relation head/tail corruption probabilities.
    filtered:
        Resample corruptions that collide with known true triples.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        triples: np.ndarray,
        rng: np.random.Generator,
        bernoulli: bool = False,
        filtered: bool = True,
        extra_true: set[tuple[int, int, int]] | None = None,
    ) -> None:
        self.num_entities = graph.num_entities
        self.rng = rng
        self.filtered = filtered
        self._true = graph.triple_set()
        if extra_true:
            self._true |= extra_true
        # Triples may be inverse-augmented, so size the per-relation table
        # by the largest relation id actually present.
        num_rel = max(graph.num_relations,
                      int(triples[:, 1].max()) + 1 if len(triples) else 0)
        self._head_prob = (
            bernoulli_probabilities(triples, num_rel)
            if bernoulli
            else np.full(num_rel, 0.5)
        )

    def spawn(self, seed_offset: int) -> "NegativeSampler":
        """A shard-local sampler with an independent deterministic stream.

        The child shares this sampler's immutable tables (true-triple
        set, Bernoulli probabilities) but owns a fresh
        :class:`numpy.random.Generator` derived from this sampler's seed
        sequence and ``seed_offset`` — the ``SeedSequence.spawn``
        convention.  Two samplers built from the same seed produce
        identical children for the same offset, and children at
        different offsets are statistically independent; neither
        consumes the parent's stream.  This is the per-worker RNG
        contract ``repro.dist`` relies on: worker ``w`` corrupts its
        minibatch shard with ``sampler.spawn(w)`` and stays
        deterministic regardless of what the other workers draw.
        """
        child = object.__new__(NegativeSampler)
        child.num_entities = self.num_entities
        child.filtered = self.filtered
        child._true = self._true
        child._head_prob = self._head_prob
        child.rng = np.random.default_rng(
            _child_seed_sequence(self.rng, int(seed_offset)))
        return child

    def corrupt(self, triples: np.ndarray, num_negatives: int = 1) -> np.ndarray:
        """Return ``(len(triples) * num_negatives, 3)`` corrupted triples."""
        batches = [self._corrupt_once(triples) for _ in range(num_negatives)]
        return np.concatenate(batches)

    def _corrupt_once(self, triples: np.ndarray) -> np.ndarray:
        out = triples.copy()
        corrupt_head = self.rng.random(len(triples)) < self._head_prob[triples[:, 1]]
        replacements = self.rng.integers(0, self.num_entities, size=len(triples))
        out[corrupt_head, 0] = replacements[corrupt_head]
        out[~corrupt_head, 2] = replacements[~corrupt_head]
        if self.filtered:
            for i in range(len(out)):
                tries = 0
                while tuple(int(v) for v in out[i]) in self._true and tries < 20:
                    slot = 0 if corrupt_head[i] else 2
                    out[i, slot] = self.rng.integers(0, self.num_entities)
                    tries += 1
        return out
