"""Core knowledge-graph data structure.

A :class:`KnowledgeGraph` is the structured-knowledge substrate of the
paper: a set of typed entities, a set of relations, and an integer triple
array ``(head, relation, tail)``.  It knows enough about itself to support
everything the experiments need — degree statistics (Fig. 4), relation
family grouping (Tables IV/V), sub-sampling (Fig. 9 scalability), and
neighbourhood queries (CompGCN message passing, diamond mining).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from .vocab import Vocabulary

__all__ = ["KnowledgeGraph", "Triple"]

Triple = tuple[int, int, int]


@dataclass
class KnowledgeGraph:
    """Typed multi-relational graph with integer-encoded triples.

    Attributes
    ----------
    entities:
        Entity name vocabulary.
    relations:
        Relation name vocabulary.
    triples:
        ``(n, 3)`` int64 array of ``(head, relation, tail)`` rows.
    entity_types:
        Per-entity semantic type (``"Gene"``, ``"Compound"``, ...),
        aligned with entity ids.
    name:
        Dataset label used in reports.
    """

    entities: Vocabulary
    relations: Vocabulary
    triples: np.ndarray
    entity_types: list[str] = field(default_factory=list)
    name: str = "kg"

    def __post_init__(self) -> None:
        self.triples = np.asarray(self.triples, dtype=np.int64).reshape(-1, 3)
        if self.entity_types and len(self.entity_types) != len(self.entities):
            raise ValueError(
                f"entity_types length {len(self.entity_types)} does not match "
                f"{len(self.entities)} entities"
            )
        if len(self.triples):
            if self.triples[:, [0, 2]].max() >= len(self.entities):
                raise ValueError("triple references an entity id out of range")
            if self.triples[:, 1].max() >= len(self.relations):
                raise ValueError("triple references a relation id out of range")

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_entities(self) -> int:
        return len(self.entities)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    @property
    def num_triples(self) -> int:
        return len(self.triples)

    def __len__(self) -> int:
        return self.num_triples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities}, "
            f"relations={self.num_relations}, triples={self.num_triples})"
        )

    # ------------------------------------------------------------------
    # Statistics (Fig. 4, Table II)
    # ------------------------------------------------------------------
    def entity_degrees(self) -> np.ndarray:
        """Total (in+out) degree per entity id."""
        degrees = np.zeros(self.num_entities, dtype=np.int64)
        np.add.at(degrees, self.triples[:, 0], 1)
        np.add.at(degrees, self.triples[:, 2], 1)
        return degrees

    def relation_frequencies(self) -> np.ndarray:
        """Number of triples per relation id."""
        freq = np.zeros(self.num_relations, dtype=np.int64)
        np.add.at(freq, self.triples[:, 1], 1)
        return freq

    def type_counts(self) -> dict[str, int]:
        """Entity count per semantic type."""
        return dict(Counter(self.entity_types))

    def relation_family(self, relation_id: int) -> str:
        """Family label like ``Compound-Gene`` derived from endpoint types.

        Uses the majority head/tail type among triples of this relation;
        this mirrors the paper's grouping in Tables IV/V.
        """
        mask = self.triples[:, 1] == relation_id
        rows = self.triples[mask]
        if not len(rows) or not self.entity_types:
            return "Unknown"
        head_type = Counter(self.entity_types[h] for h in rows[:, 0]).most_common(1)[0][0]
        tail_type = Counter(self.entity_types[t] for t in rows[:, 2]).most_common(1)[0][0]
        return f"{head_type}-{tail_type}"

    def relation_families(self) -> dict[int, str]:
        """Family label for every relation id."""
        return {r: self.relation_family(r) for r in range(self.num_relations)}

    def family_triple_counts(self) -> dict[str, int]:
        """Triples per relation family, unordered endpoints (Table V)."""
        families = self.relation_families()
        counts: Counter[str] = Counter()
        rel_freq = self.relation_frequencies()
        for rel_id, family in families.items():
            # Treat X-Y and Y-X as the same family, matching the paper.
            left, _, right = family.partition("-")
            key = "-".join(sorted((left, right))) if right else family
            counts[key] += int(rel_freq[rel_id])
        return dict(counts)

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------
    def adjacency(self) -> dict[int, list[tuple[int, int]]]:
        """Map ``head -> [(relation, tail), ...]`` for forward edges."""
        adj: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for h, r, t in self.triples:
            adj[int(h)].append((int(r), int(t)))
        return dict(adj)

    def undirected_neighbors(self) -> dict[int, set[int]]:
        """Entity -> set of neighbouring entities, ignoring direction."""
        neigh: dict[int, set[int]] = defaultdict(set)
        for h, _, t in self.triples:
            neigh[int(h)].add(int(t))
            neigh[int(t)].add(int(h))
        return dict(neigh)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subsample(self, fraction: float, rng: np.random.Generator) -> "KnowledgeGraph":
        """Return a copy keeping a random ``fraction`` of triples.

        Entity/relation vocabularies are preserved so embeddings stay
        comparable across fractions — this matches the Fig. 9 protocol of
        scaling triple counts, not vocabulary size.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        keep = rng.random(self.num_triples) < fraction
        return KnowledgeGraph(
            entities=self.entities,
            relations=self.relations,
            triples=self.triples[keep],
            entity_types=self.entity_types,
            name=f"{self.name}@{fraction:.2f}",
        )

    def with_triples(self, triples: np.ndarray, suffix: str = "") -> "KnowledgeGraph":
        """Copy of this KG with a different triple set (shared vocab)."""
        return KnowledgeGraph(
            entities=self.entities,
            relations=self.relations,
            triples=triples,
            entity_types=self.entity_types,
            name=self.name + suffix,
        )

    def triple_set(self) -> set[Triple]:
        """All triples as a hash set (for filtered evaluation)."""
        return {(int(h), int(r), int(t)) for h, r, t in self.triples}
