"""Core knowledge-graph data structure.

A :class:`KnowledgeGraph` is the structured-knowledge substrate of the
paper: a set of typed entities, a set of relations, and an integer triple
array ``(head, relation, tail)``.  It knows enough about itself to support
everything the experiments need — degree statistics (Fig. 4), relation
family grouping (Tables IV/V), sub-sampling (Fig. 9 scalability), and
neighbourhood queries (CompGCN message passing, diamond mining).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..graph import GraphData
from .vocab import Vocabulary

__all__ = ["KnowledgeGraph", "Triple"]

Triple = tuple[int, int, int]


@dataclass
class KnowledgeGraph:
    """Typed multi-relational graph with integer-encoded triples.

    Attributes
    ----------
    entities:
        Entity name vocabulary.
    relations:
        Relation name vocabulary.
    triples:
        ``(n, 3)`` int64 array of ``(head, relation, tail)`` rows.
    entity_types:
        Per-entity semantic type (``"Gene"``, ``"Compound"``, ...),
        aligned with entity ids.
    name:
        Dataset label used in reports.
    """

    entities: Vocabulary
    relations: Vocabulary
    triples: np.ndarray
    entity_types: list[str] = field(default_factory=list)
    name: str = "kg"
    _graph: GraphData | None = field(default=None, init=False, repr=False, compare=False)
    _families: dict[int, str] | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.triples = np.asarray(self.triples, dtype=np.int64).reshape(-1, 3)
        if self.entity_types and len(self.entity_types) != len(self.entities):
            raise ValueError(
                f"entity_types length {len(self.entity_types)} does not match "
                f"{len(self.entities)} entities"
            )
        if len(self.triples):
            if self.triples[:, [0, 2]].max() >= len(self.entities):
                raise ValueError("triple references an entity id out of range")
            if self.triples[:, 1].max() >= len(self.relations):
                raise ValueError("triple references a relation id out of range")

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_entities(self) -> int:
        return len(self.entities)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    @property
    def num_triples(self) -> int:
        return len(self.triples)

    def __len__(self) -> int:
        return self.num_triples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities}, "
            f"relations={self.num_relations}, triples={self.num_triples})"
        )

    # ------------------------------------------------------------------
    # Statistics (Fig. 4, Table II)
    # ------------------------------------------------------------------
    def entity_degrees(self) -> np.ndarray:
        """Total (in+out) degree per entity id."""
        degrees = np.zeros(self.num_entities, dtype=np.int64)
        np.add.at(degrees, self.triples[:, 0], 1)
        np.add.at(degrees, self.triples[:, 2], 1)
        return degrees

    def relation_frequencies(self) -> np.ndarray:
        """Number of triples per relation id."""
        freq = np.zeros(self.num_relations, dtype=np.int64)
        np.add.at(freq, self.triples[:, 1], 1)
        return freq

    def type_counts(self) -> dict[str, int]:
        """Entity count per semantic type."""
        return dict(Counter(self.entity_types))

    def relation_family(self, relation_id: int) -> str:
        """Family label like ``Compound-Gene`` derived from endpoint types.

        Uses the majority head/tail type among triples of this relation;
        this mirrors the paper's grouping in Tables IV/V.
        """
        return self.relation_families().get(int(relation_id), "Unknown")

    def relation_families(self) -> dict[int, str]:
        """Family label for every relation id.

        One vectorized pass: triples are grouped per relation with a
        stable sort and the majority endpoint types come from bincounts
        — O(T + R·|types|) total, versus the former O(R·T) per-relation
        mask scan.  Majority ties break like ``Counter.most_common``:
        the type occurring *first* among the relation's triples wins.
        """
        if self._families is not None:
            return dict(self._families)
        if not self.entity_types:
            self._families = {r: "Unknown" for r in range(self.num_relations)}
            return dict(self._families)
        type_names, type_codes = np.unique(np.asarray(self.entity_types, dtype=object),
                                           return_inverse=True)
        num_types = len(type_names)
        rels = self.triples[:, 1]
        order = np.argsort(rels, kind="stable")
        bounds = np.searchsorted(rels[order], np.arange(self.num_relations + 1))
        head_codes = type_codes[self.triples[order, 0]]
        tail_codes = type_codes[self.triples[order, 2]]

        def majority(codes: np.ndarray) -> int:
            counts = np.bincount(codes, minlength=num_types)
            candidates = np.flatnonzero(counts == counts.max())
            if len(candidates) == 1:
                return int(candidates[0])
            first_seen = np.full(num_types, len(codes), dtype=np.int64)
            np.minimum.at(first_seen, codes, np.arange(len(codes)))
            return int(candidates[np.argmin(first_seen[candidates])])

        families: dict[int, str] = {}
        for r in range(self.num_relations):
            start, end = int(bounds[r]), int(bounds[r + 1])
            if start == end:
                families[r] = "Unknown"
                continue
            head = type_names[majority(head_codes[start:end])]
            tail = type_names[majority(tail_codes[start:end])]
            families[r] = f"{head}-{tail}"
        self._families = families
        return dict(families)

    def family_triple_counts(self) -> dict[str, int]:
        """Triples per relation family, unordered endpoints (Table V)."""
        families = self.relation_families()
        counts: Counter[str] = Counter()
        rel_freq = self.relation_frequencies()
        for rel_id, family in families.items():
            # Treat X-Y and Y-X as the same family, matching the paper.
            left, _, right = family.partition("-")
            key = "-".join(sorted((left, right))) if right else family
            counts[key] += int(rel_freq[rel_id])
        return dict(counts)

    # ------------------------------------------------------------------
    # Neighbourhoods (CSR-backed)
    # ------------------------------------------------------------------
    def to_graph(self) -> GraphData:
        """The KG as a shared :class:`repro.graph.GraphData` view.

        Entities become nodes, triples become typed edges
        (``edge_type`` = relation id).  The instance is cached — CSR
        adjacency built once serves every subsequent neighbourhood
        query.  Treat the graph (like the KG itself) as immutable.
        """
        if self._graph is None:
            self._graph = GraphData(
                num_nodes=self.num_entities,
                src=self.triples[:, 0],
                dst=self.triples[:, 2],
                edge_type=self.triples[:, 1],
            )
        return self._graph

    def adjacency(self) -> dict[int, list[tuple[int, int]]]:
        """Map ``head -> [(relation, tail), ...]`` for forward edges.

        Grouping runs over the cached CSR view (one stable sort for the
        whole KG); per-head lists keep the original triple order.
        """
        csr = self.to_graph().csr()
        rel_sorted = self.triples[csr.edge_ids, 1]
        adj: dict[int, list[tuple[int, int]]] = {}
        for head in np.flatnonzero(np.diff(csr.indptr)):
            start, end = int(csr.indptr[head]), int(csr.indptr[head + 1])
            pairs = np.stack([rel_sorted[start:end], csr.neighbors[start:end]], axis=1)
            adj[int(head)] = list(map(tuple, pairs.tolist()))
        return adj

    def undirected_neighbors(self) -> dict[int, set[int]]:
        """Entity -> set of neighbouring entities, ignoring direction."""
        if not len(self.triples) or not self.num_entities:
            return {}
        h, t = self.triples[:, 0], self.triples[:, 2]
        codes = np.unique(np.concatenate([h, t]) * self.num_entities
                          + np.concatenate([t, h]))
        sources, targets = codes // self.num_entities, codes % self.num_entities
        starts = np.flatnonzero(np.concatenate([[True], sources[1:] != sources[:-1]]))
        ends = np.append(starts[1:], len(sources))
        return {int(sources[s]): set(targets[s:e].tolist())
                for s, e in zip(starts, ends)}

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subsample(self, fraction: float, rng: np.random.Generator) -> "KnowledgeGraph":
        """Return a copy keeping a random ``fraction`` of triples.

        Entity/relation vocabularies are preserved so embeddings stay
        comparable across fractions — this matches the Fig. 9 protocol of
        scaling triple counts, not vocabulary size.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        keep = rng.random(self.num_triples) < fraction
        return KnowledgeGraph(
            entities=self.entities,
            relations=self.relations,
            triples=self.triples[keep],
            entity_types=self.entity_types,
            name=f"{self.name}@{fraction:.2f}",
        )

    def with_triples(self, triples: np.ndarray, suffix: str = "") -> "KnowledgeGraph":
        """Copy of this KG with a different triple set (shared vocab)."""
        return KnowledgeGraph(
            entities=self.entities,
            relations=self.relations,
            triples=triples,
            entity_types=self.entity_types,
            name=self.name + suffix,
        )

    def triple_set(self) -> set[Triple]:
        """All triples as a hash set (for filtered evaluation)."""
        return {(int(h), int(r), int(t)) for h, r, t in self.triples}
