"""Bidirectional string <-> integer id vocabularies for entities/relations."""

from __future__ import annotations

import difflib
from typing import Iterable, Iterator

__all__ = ["Vocabulary"]


class Vocabulary:
    """An append-only mapping between names and contiguous integer ids.

    Used for entity and relation dictionaries.  Ids are assigned in
    insertion order starting at 0, which keeps embedding tables compact.
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._name_to_id: dict[str, int] = {}
        self._id_to_name: list[str] = []
        for name in names:
            self.add(name)

    def add(self, name: str) -> int:
        """Register ``name`` (idempotent) and return its id."""
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        idx = len(self._id_to_name)
        self._name_to_id[name] = idx
        self._id_to_name.append(name)
        return idx

    def extend(self, names: Iterable[str]) -> list[int]:
        """Append strictly-new names atomically and return their ids.

        Unlike the idempotent :meth:`add`, a name that is already
        registered (or repeated within ``names``) raises ``ValueError``
        — the streaming append path must not silently alias two
        different entities onto one embedding row.  Nothing is mutated
        when the batch is rejected, and an empty batch returns ``[]``.
        """
        batch = list(names)
        dupes = sorted({n for n in batch if n in self._name_to_id})
        if dupes:
            raise ValueError(f"names already registered: {dupes}")
        if len(set(batch)) != len(batch):
            seen: set[str] = set()
            repeated = sorted({n for n in batch if n in seen or seen.add(n)})
            raise ValueError(f"duplicate names within batch: {repeated}")
        return [self.add(name) for name in batch]

    def id(self, name: str) -> int:
        """Return the id of ``name``; raises ``KeyError`` if absent."""
        return self._name_to_id[name]

    def name(self, idx: int) -> str:
        """Return the name for ``idx``; raises ``IndexError`` if absent."""
        return self._id_to_name[idx]

    def get(self, name: str, default: int | None = None) -> int | None:
        """Return the id of ``name``, or ``default`` if absent."""
        return self._name_to_id.get(name, default)

    def resolve(self, token: str | int) -> int:
        """Resolve a name or a numeric id to an id, with helpful errors.

        Accepts an ``int`` (or a digit string) as a raw id, anything else
        as a name.  Unknown names raise ``KeyError`` with close-match
        suggestions; out-of-range ids raise ``IndexError``.  This is the
        front door the serving layer uses to validate user-supplied
        entity/relation references.
        """
        if isinstance(token, (int,)) or (isinstance(token, str) and token.isdigit()):
            idx = int(token)
            if not 0 <= idx < len(self._id_to_name):
                raise IndexError(
                    f"id {idx} out of range for vocabulary of size {len(self._id_to_name)}"
                )
            return idx
        existing = self._name_to_id.get(token)
        if existing is not None:
            return existing
        close = difflib.get_close_matches(str(token), self._id_to_name, n=3)
        hint = f"; did you mean one of {close}?" if close else ""
        raise KeyError(f"unknown name {token!r}{hint}")

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id

    def __len__(self) -> int:
        return len(self._id_to_name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_name)

    def names(self) -> list[str]:
        """All names in id order (a copy)."""
        return list(self._id_to_name)
