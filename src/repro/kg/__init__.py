"""``repro.kg`` — knowledge-graph substrate.

Data structures (:class:`KnowledgeGraph`, :class:`Vocabulary`), the 8:1:1
split / inverse-relation / 1-to-N batching protocol of the paper
(:mod:`repro.kg.dataset`), negative samplers (:mod:`repro.kg.sampling`)
and TSV persistence (:mod:`repro.kg.io`).
"""

from .dataset import KGSplit, OneToNBatcher, add_inverse_relations, split_triples
from .graph import KnowledgeGraph, Triple
from .io import load_kg, read_triples_tsv, save_kg, write_triples_tsv
from .sampling import NegativeSampler, bernoulli_probabilities, self_adversarial_weights
from .vocab import Vocabulary

__all__ = [
    "KnowledgeGraph",
    "Triple",
    "Vocabulary",
    "KGSplit",
    "OneToNBatcher",
    "add_inverse_relations",
    "split_triples",
    "NegativeSampler",
    "bernoulli_probabilities",
    "self_adversarial_weights",
    "save_kg",
    "load_kg",
    "write_triples_tsv",
    "read_triples_tsv",
]
