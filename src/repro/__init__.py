"""CamE: multimodal biological knowledge graph completion (ICDE 2023).

A complete from-scratch reproduction of *"Multimodal Biological
Knowledge Graph Completion via Triple Co-attention Mechanism"* (Xu et
al., ICDE 2023), including every substrate the paper depends on:

* :mod:`repro.nn`          — numpy autograd deep-learning framework
* :mod:`repro.kg`          — knowledge-graph data structures & protocols
* :mod:`repro.mol`         — molecular graphs, scaffolds, GIN pre-training
* :mod:`repro.text`        — biomedical text corpus & character encoders
* :mod:`repro.gnn`         — CompGCN structural embeddings
* :mod:`repro.datasets`    — synthetic DRKG-MM / OMAHA-MM
* :mod:`repro.core`        — the CamE model (TCA, MMF, RIC)
* :mod:`repro.baselines`   — the 13 Table III comparison models
* :mod:`repro.eval`        — filtered ranking metrics
* :mod:`repro.train`       — unified training engine + callbacks
* :mod:`repro.serve`       — checkpoint bundles + HTTP prediction service
* :mod:`repro.obs`         — metrics, tracing, autograd profiling
* :mod:`repro.experiments` — one harness per paper table/figure

Quickstart::

    import numpy as np
    from repro.datasets import get_dataset, build_features
    from repro.core import CamE, CamEConfig, OneToNTrainer
    from repro.eval import evaluate_ranking

    mkg = get_dataset("drkg-mm", scale=0.5)
    feats = build_features(mkg, np.random.default_rng(0))
    model = CamE(mkg.num_entities, mkg.num_relations, feats,
                 CamEConfig(entity_dim=48, relation_dim=48))
    OneToNTrainer(model, mkg.split, np.random.default_rng(1)).fit(epochs=60)
    print(evaluate_ranking(model, mkg.split))
"""

__version__ = "1.0.0"

__all__ = [
    "nn", "kg", "mol", "text", "gnn", "datasets", "core", "baselines",
    "eval", "train", "serve", "obs", "experiments", "__version__",
]
