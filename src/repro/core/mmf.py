"""MultiModal TCA Fusion module (MMF) — Section IV-B of the paper.

MMF turns the three unimodal entity representations (molecular ``h_m``,
textual ``h_t``, structured ``h_s``) into one joint representation
``h_f`` in three steps:

1. **Pairwise TCA matching** (Eqn. 9): project each modality to the
   fusion dimension with ``W_1/W_2/W_3`` and run TCA on each of the
   three modality pairs.
2. **Exchanging fusion** (Eqns. 10-12): EX each TCA output pair.
3. **Low-rank bilinear pooling** (Eqn. 13): per pair,
   ``P^T(sigmoid(U^T x) * sigmoid(V^T y)) + b``; the three pooled
   vectors are combined by a Hadamard product ``Omega``.

Ablation behaviour: with ``use_tca=False`` the matching step passes the
projected vectors straight through; with ``use_exchange=False`` the EX
step is skipped; an alternative ``SimpleFusion`` (element-wise product
of projections) implements the "w/o MMF" variant.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .exchange import ExchangeFusion
from .tca import TCAOperator

__all__ = ["MultimodalTCAFusion", "SimpleFusion"]


class _LowRankBilinear(nn.Module):
    """One pairwise low-rank bilinear pooling term of Eqn. 13."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.u = nn.Linear(dim, dim, bias=False, rng=rng)
        self.v = nn.Linear(dim, dim, bias=False, rng=rng)
        self.p = nn.Linear(dim, dim, bias=False, rng=rng)
        self.bias = nn.Parameter(np.zeros(dim))

    def forward(self, x: nn.Tensor, y: nn.Tensor) -> nn.Tensor:
        pooled = F.mul(F.sigmoid(self.u(x)), F.sigmoid(self.v(y)))
        return F.add(self.p(pooled), self.bias)


class MultimodalTCAFusion(nn.Module):
    """The full MMF module.

    Parameters
    ----------
    input_dims:
        ``(d_m, d_t, d_s)`` raw modality feature dimensions.
    fusion_dim:
        ``d_f``, the joint representation width.
    num_heads, interval, temperature_init:
        Multi-head TCA settings (Eqns. 7-8).
    theta:
        Exchanging factor (Eqns. 10-11).
    use_tca / use_exchange:
        Fig. 6 ablation switches.
    """

    def __init__(self, input_dims: tuple[int, int, int], fusion_dim: int,
                 num_heads: int = 2, interval: float = 5.0,
                 temperature_init: float = 1.0, theta: float = -0.5,
                 use_tca: bool = True, use_exchange: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        d_m, d_t, d_s = input_dims
        self.fusion_dim = fusion_dim
        self.use_tca = use_tca
        self.use_exchange = use_exchange
        # Eqn. 9 projections W_1 (molecule), W_2 (text), W_3 (structure).
        self.w1 = nn.Linear(d_m, fusion_dim, bias=False, rng=gen)
        self.w2 = nn.Linear(d_t, fusion_dim, bias=False, rng=gen)
        self.w3 = nn.Linear(d_s, fusion_dim, bias=False, rng=gen)
        # One TCA + EX + bilinear block per modality pair: (m,t) (m,s) (t,s).
        self.tca = nn.ModuleList([
            TCAOperator(fusion_dim, num_heads=num_heads, interval=interval,
                        temperature_init=temperature_init, rng=gen)
            for _ in range(3)
        ])
        self.exchange = nn.ModuleList([
            ExchangeFusion(fusion_dim, theta=theta) for _ in range(3)
        ])
        self.bilinear = nn.ModuleList([
            _LowRankBilinear(fusion_dim, gen) for _ in range(3)
        ])

    def forward(self, h_m: nn.Tensor, h_t: nn.Tensor, h_s: nn.Tensor) -> nn.Tensor:
        """Fuse the three modality batches into ``h_f`` of ``(B, d_f)``."""
        x_m = self.w1(h_m)
        x_t = self.w2(h_t)
        x_s = self.w3(h_s)
        pairs = [(x_m, x_t), (x_m, x_s), (x_t, x_s)]

        pooled = []
        for idx, (left, right) in enumerate(pairs):
            if self.use_tca:
                left, right = self.tca[idx](left, right)
            if self.use_exchange:
                left, right = self.exchange[idx](left, right)
            pooled.append(self.bilinear[idx](left, right))

        # Omega: Hadamard product over the three pooled vectors (Eqn. 13).
        joint = pooled[0]
        for vec in pooled[1:]:
            joint = F.mul(joint, vec)
        return joint


class SimpleFusion(nn.Module):
    """The "w/o MMF" variant: plain element-wise product of projections.

    Mirrors the ablation description "MMF is replaced by simple
    multiplication" — modalities are projected to the fusion dimension
    and multiplied with no attention, exchange, or bilinear pooling.
    """

    def __init__(self, input_dims: tuple[int, int, int], fusion_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        d_m, d_t, d_s = input_dims
        self.fusion_dim = fusion_dim
        self.w1 = nn.Linear(d_m, fusion_dim, bias=False, rng=gen)
        self.w2 = nn.Linear(d_t, fusion_dim, bias=False, rng=gen)
        self.w3 = nn.Linear(d_s, fusion_dim, bias=False, rng=gen)

    def forward(self, h_m: nn.Tensor, h_t: nn.Tensor, h_s: nn.Tensor) -> nn.Tensor:
        return F.mul(F.mul(self.w1(h_m), self.w2(h_t)), self.w3(h_s))
