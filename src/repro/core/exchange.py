"""Information-exchanging fusion (EX) — Eqns. 10-12 of the paper.

After pairwise TCA matching, features whose attention weight is small
carry little information (the smaller-norm-less-information assumption
the paper borrows from network slimming).  EX replaces those positions
in each modality vector with the other modality's values, bridging the
modality gap.  The threshold is applied to the layer-normalised vector,
so ``theta`` is in standard-deviation units and can be negative
(paper's best values: -0.5 on DRKG-MM, -2.0 on OMAHA-MM — more negative
means fewer positions exchanged).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["ExchangeFusion"]


class ExchangeFusion(nn.Module):
    """Symmetric feature exchange between two same-width vectors.

    Both outputs are computed from the *original* inputs: positions of
    ``x`` with ``LN(x) < theta`` take ``y``'s values and vice versa.
    The selection mask is data-dependent but non-differentiable (like a
    ReLU gate); gradients flow through the selected values.
    """

    def __init__(self, dim: int, theta: float = -0.5, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.theta = theta
        self.eps = eps

    @staticmethod
    def _normalized(values: np.ndarray, eps: float) -> np.ndarray:
        """Parameter-free layer normalisation of the raw values.

        The normalisation only produces the (non-differentiable)
        selection mask, so an affine transform could never receive
        gradient — it is deliberately omitted.
        """
        mu = values.mean(axis=-1, keepdims=True)
        sigma = values.std(axis=-1, keepdims=True)
        return (values - mu) / (sigma + eps)

    def forward(self, x: nn.Tensor, y: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        """Exchange low-attention positions between ``x`` and ``y``."""
        mask_x = self._normalized(x.data, self.eps) < self.theta
        mask_y = self._normalized(y.data, self.eps) < self.theta
        new_x = F.where(mask_x, y, x)
        new_y = F.where(mask_y, x, y)
        return new_x, new_y

    def exchange_fraction(self, x: nn.Tensor, y: nn.Tensor) -> tuple[float, float]:
        """Diagnostic: fraction of positions exchanged in each input."""
        mask_x = self._normalized(x.data, self.eps) < self.theta
        mask_y = self._normalized(y.data, self.eps) < self.theta
        return float(mask_x.mean()), float(mask_y.mean())
