"""The CamE model — co-attention multimodal embedding for BKG completion.

Assembles the paper's architecture (Fig. 2):

* fixed pre-trained modality features ``h_m`` / ``h_t`` / ``h_s`` per
  entity (molecule GIN, text encoder, CompGCN — see
  :mod:`repro.datasets.features`);
* learnable relation embeddings (with inverse relations) and learnable
  entity embeddings ``t_s`` for candidate scoring;
* the **MMF** module producing the joint representation ``h_f``;
* the **RIC** module producing interactive representations ``v_t``,
  ``v_m``, ``v_s``;
* the Eqn. 15 multi-channel convolutional scoring head:

  ``Phi = f(h_f * (v_t W_t) * (v_m W_m)) W_1 h_s  +  f(v_s * v_0) W_2 t_s``

  where ``*`` stacks reshaped vectors as channels of a 2-D feature map
  and ``f`` is a convolution + fully-connected block.  Following the
  paper's prose ("we construct a multi-channel feature map by stacking
  modality joint and interactive representations ... which are then fed
  into the convolutional neural network to infer the missing links"),
  all five views — ``h_f``, ``v_t W_t``, ``v_m W_m``, ``v_s`` and
  ``v_0 = [h; r]`` — are stacked into ONE feature map processed by a
  single convolution trunk, from which two fully-connected heads
  produce the Eqn. 15 query vectors: one scored against candidates'
  *pre-trained structural features* (the ``W_1 h_s`` term) and one
  against their *learned embeddings* (the ``W_2 t_s`` term), plus a
  per-entity bias (ConvE-style).  Read literally, Eqn. 15's first term
  would be a per-query scalar that cannot affect candidate ranking;
  the prose reading above is the consistent one.

Training uses 1-to-many scoring with the Bernoulli NLL of Eqn. 16
(:func:`repro.nn.functional.bce_with_logits`), implemented in
:mod:`repro.core.trainer`.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..datasets.features import ModalityFeatures
from .config import CamEConfig
from .mmf import MultimodalTCAFusion, SimpleFusion
from .ric import RelationInteractiveTCA

__all__ = ["CamE", "reshape_to_2d_shape"]


def reshape_to_2d_shape(length: int) -> tuple[int, int]:
    """Factor ``length`` into the most square ``(h, w)`` grid.

    Used to turn embedding vectors into 2-D maps for the convolutional
    scoring head, as the paper's ``*`` (reshape-and-stack) operator does.
    """
    h = int(np.sqrt(length))
    while h > 1 and length % h != 0:
        h -= 1
    return h, length // h


class _ConvTrunk(nn.Module):
    """``f`` of Eqn. 15: conv -> BN -> ReLU -> flatten -> dropout.

    Two downstream FC heads read the shared trunk features (see the
    module docstring for why the trunk is shared).
    """

    def __init__(self, channels_in: int, height: int, width: int,
                 conv_channels: int, kernel_size: int, dropout: float,
                 rng: np.random.Generator) -> None:
        super().__init__()
        pad = kernel_size // 2
        self.conv = nn.Conv2d(channels_in, conv_channels, kernel_size,
                              padding=pad, rng=rng)
        self.bn = nn.BatchNorm2d(conv_channels)
        self.drop = nn.Dropout(dropout, rng=rng)
        self.flat_dim = conv_channels * height * width

    def forward(self, feature_map: nn.Tensor) -> nn.Tensor:
        x = F.relu(self.bn(self.conv(feature_map)))
        return self.drop(F.reshape(x, (x.shape[0], -1)))


class CamE(nn.Module):
    """CamE link predictor over a multimodal BKG.

    Parameters
    ----------
    num_entities:
        Entity vocabulary size.
    num_relations:
        Number of *original* relations; the model allocates ``2x`` for
        inverse relations (Section IV-D).
    features:
        Fixed pre-trained modality feature matrices.
    config:
        Hyperparameters and ablation switches.
    rng:
        Weight initialisation source.
    """

    def __init__(self, num_entities: int, num_relations: int,
                 features: ModalityFeatures, config: CamEConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        cfg = config or CamEConfig()
        self.config = cfg
        self.num_entities = num_entities
        self.num_relations = num_relations

        # Fixed modality features (constants, ablations may zero them).
        feats = features
        if not cfg.use_text:
            feats = feats.drop_modality("textual")
        if not cfg.use_molecule:
            feats = feats.drop_modality("molecular")
        self.h_m_table = feats.molecular
        self.h_t_table = feats.textual
        self.h_s_table = feats.structural
        d_m, d_t, d_s = feats.dims
        self.modality_dims = (d_m, d_t, d_s)

        # Learnable tables.
        self.relation_embedding = nn.Embedding(2 * num_relations, cfg.relation_dim, rng=gen)
        self.entity_embedding = nn.Embedding(num_entities, cfg.entity_dim, rng=gen)
        self.entity_bias = nn.Parameter(np.zeros(num_entities))

        # MMF -----------------------------------------------------------
        if cfg.use_mmf:
            self.fusion = MultimodalTCAFusion(
                (d_m, d_t, d_s), cfg.fusion_dim, num_heads=cfg.num_heads,
                interval=cfg.interval, temperature_init=cfg.temperature_init,
                theta=cfg.exchange_theta, use_tca=cfg.use_tca,
                use_exchange=cfg.use_exchange, rng=gen,
            )
        else:
            self.fusion = SimpleFusion((d_m, d_t, d_s), cfg.fusion_dim, rng=gen)

        # RIC -----------------------------------------------------------
        if cfg.use_ric:
            self.ric = RelationInteractiveTCA(
                (d_m, d_t, d_s), cfg.relation_dim, cfg.fusion_dim,
                num_heads=cfg.num_heads, interval=cfg.interval,
                temperature_init=cfg.temperature_init, use_tca=cfg.use_tca,
                rng=gen,
            )
            # W_t, W_m of Eqn. 15: project v_t, v_m (2*d_f) to d_f; v_s
            # gets the analogous projection so all channels share a grid.
            self.w_vt = nn.Linear(2 * cfg.fusion_dim, cfg.fusion_dim, bias=False, rng=gen)
            self.w_vm = nn.Linear(2 * cfg.fusion_dim, cfg.fusion_dim, bias=False, rng=gen)
            self.w_vs = nn.Linear(2 * cfg.fusion_dim, cfg.fusion_dim, bias=False, rng=gen)
        else:
            self.ric = None
            # "w/o RIC": modality channels come straight from projections.
            self.proj_t_plain = nn.Linear(d_t, cfg.fusion_dim, bias=False, rng=gen)
            self.proj_m_plain = nn.Linear(d_m, cfg.fusion_dim, bias=False, rng=gen)
            self.proj_s_plain = nn.Linear(d_s, cfg.fusion_dim, bias=False, rng=gen)

        # Scoring head ----------------------------------------------------
        fh, fw = cfg.fusion_height, cfg.fusion_width
        self.fusion_shape = (fh, fw)
        # v_0 = [h; r]: when the embedding dims match the fusion grid the
        # two halves become two full-resolution channels (ConvE's exact
        # input); otherwise v_0 is projected onto the common grid.
        self.v0_native = (cfg.entity_dim == cfg.fusion_dim
                          and cfg.relation_dim == cfg.fusion_dim)
        if not self.v0_native:
            self.w_v0 = nn.Linear(cfg.entity_dim + cfg.relation_dim,
                                  cfg.fusion_dim, bias=False, rng=gen)
        self.channels = 6 if self.v0_native else 5  # h_f, v_t, v_m, v_s + v_0 view(s)
        self.input_bn = nn.BatchNorm2d(self.channels) if cfg.input_bn else None
        self.trunk = _ConvTrunk(self.channels, fh, fw, cfg.conv_channels,
                                cfg.kernel_size, cfg.dropout, gen)
        if cfg.use_struct_term:
            self.head_struct = nn.Linear(self.trunk.flat_dim, d_s, rng=gen)
            # W_1 of Eqn. 15 applied on the candidate side: a learnable
            # transform of the pre-trained structural features, scaled by
            # a gate that starts at zero so the (initially noisy) term
            # cannot drown the embedding term early in training.
            self.w1_struct = nn.Linear(d_s, d_s, bias=False, rng=gen)
            self.struct_gate = nn.Parameter(np.zeros(1))
        else:
            self.head_struct = None
        self.head_embed = nn.Linear(self.trunk.flat_dim, cfg.entity_dim, rng=gen)
        self.input_drop = nn.Dropout(cfg.dropout, rng=gen)

    # ------------------------------------------------------------------
    def _modalities(self, heads: np.ndarray) -> tuple[nn.Tensor, nn.Tensor, nn.Tensor]:
        """Fixed (constant) modality features of the head batch."""
        return (
            nn.Tensor(self.h_m_table[heads]),
            nn.Tensor(self.h_t_table[heads]),
            nn.Tensor(self.h_s_table[heads]),
        )

    def _stack_channels(self, vectors: list[nn.Tensor], shape: tuple[int, int]) -> nn.Tensor:
        """The Eqn. 15 ``*`` operator: reshape each vector and stack as channels."""
        h, w = shape
        maps = [F.reshape(v, (v.shape[0], 1, h, w)) for v in vectors]
        return F.concat(maps, axis=1)

    def query_vectors(self, heads: np.ndarray, rels: np.ndarray) -> tuple[nn.Tensor, nn.Tensor]:
        """Compute the two Eqn. 15 query vectors for a ``(h, r)`` batch.

        Returns ``(q_struct, q_embed)`` where candidates are scored as
        ``q_struct . h_s[t] + q_embed . t_s[t] + bias[t]``.
        """
        h_m, h_t, h_s = self._modalities(heads)
        relation = self.relation_embedding(rels)

        h_f = self.input_drop(self.fusion(h_m, h_t, h_s))

        if self.ric is not None:
            v = self.ric(h_t, h_m, h_s, relation)
            chan_t = self.w_vt(v["t"])
            chan_m = self.w_vm(v["m"])
            chan_s = self.w_vs(v["s"])
        else:
            chan_t = self.proj_t_plain(h_t)
            chan_m = self.proj_m_plain(h_m)
            chan_s = self.proj_s_plain(h_s)
        head_emb = self.entity_embedding(heads)
        if self.v0_native:
            v0_channels = [head_emb, relation]
        else:
            v0_channels = [self.w_v0(F.concat([head_emb, relation], axis=-1))]

        feature_map = self._stack_channels(
            [h_f, chan_t, chan_m, chan_s, *v0_channels], self.fusion_shape
        )
        if self.input_bn is not None:
            feature_map = self.input_bn(feature_map)
        trunk = self.trunk(feature_map)
        q_struct = self.head_struct(trunk) if self.head_struct is not None else None
        q_embed = F.relu(self.head_embed(trunk))  # (B, d_e), ConvE-style ReLU
        return q_struct, q_embed

    # ------------------------------------------------------------------
    def score_queries(self, heads: np.ndarray, rels: np.ndarray,
                      candidates: np.ndarray | None = None) -> nn.Tensor:
        """Scores over all entities ``(B, E)`` or candidate subsets ``(B, K)``."""
        q_struct, q_embed = self.query_vectors(heads, rels)
        if candidates is None:
            scores = F.matmul(q_embed, F.transpose(self.entity_embedding.weight))
            if q_struct is not None:
                cand = F.transpose(self.w1_struct(nn.Tensor(self.h_s_table)))
                term1 = F.mul(F.matmul(q_struct, cand), self.struct_gate)
                scores = F.add(scores, term1)
            return F.add(scores, self.entity_bias)
        # Candidate-restricted scoring (1-to-K negative sampling).
        b, k = candidates.shape
        e_cand = F.embedding(self.entity_embedding.weight, candidates)  # (B, K, d_e)
        scores = F.reshape(F.matmul(e_cand, F.reshape(q_embed, (b, -1, 1))), (b, k))
        if q_struct is not None:
            s_cand = self.w1_struct(nn.Tensor(self.h_s_table[candidates]))  # (B, K, d_s)
            term1 = F.reshape(F.matmul(s_cand, F.reshape(q_struct, (b, -1, 1))), (b, k))
            scores = F.add(scores, F.mul(term1, self.struct_gate))
        bias = F.index(self.entity_bias, candidates)
        return F.add(scores, bias)

    #: See :attr:`repro.baselines.base.EmbeddingModel.inference_dtype`.
    inference_dtype: np.dtype | type | None = None

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        """Inference-mode scores over all entities (used by evaluation)."""
        with nn.inference_mode(self):
            scores = self.score_queries(heads, rels).data
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores
