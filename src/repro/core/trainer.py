"""1-to-many training (Section IV-D) — compatibility shim.

The actual loop lives in :mod:`repro.train`: a single
:class:`~repro.train.TrainingEngine` parameterised by a
:class:`~repro.train.OneToNObjective` (the BCE / label-smoothing batcher
path of Eqn. 16) and callback hooks for timing, eval history, best-state
checkpointing and telemetry.  :class:`OneToNTrainer` preserves the
original constructor/``fit`` surface — and bit-identical seeded
behaviour — on top of that engine, for scripts and tests that predate
the engine.  New code should construct the engine directly::

    from repro.train import OneToNObjective, TrainingEngine

    engine = TrainingEngine(model, split, rng,
                            OneToNObjective(batch_size=64), lr=1e-3)
    report = engine.fit(epochs=60, eval_every=10)

:class:`TrainReport` is re-exported from :mod:`repro.train.report` so
existing ``from repro.core.trainer import TrainReport`` imports keep
working.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..eval import RankingEvaluator
from ..kg import KGSplit
from ..train import OneToNObjective, TrainingEngine
from ..train.report import TrainReport

__all__ = ["QueryScoringModel", "TrainReport", "OneToNTrainer"]


class QueryScoringModel(Protocol):
    """Structural type for 1-to-N trainable models."""

    def score_queries(self, heads: np.ndarray, rels: np.ndarray,
                      candidates: np.ndarray | None = None): ...  # pragma: no cover

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray: ...  # pragma: no cover

    def parameters(self): ...  # pragma: no cover


class OneToNTrainer:
    """Trainer for 1-to-N scoring models (shim over the shared engine).

    Parameters
    ----------
    model:
        Must implement :class:`QueryScoringModel` and (for checkpointing)
        ``state_dict``/``load_state_dict``.
    split:
        Dataset partition; train triples get inverse augmentation here.
    rng:
        Batching/negative-sampling randomness.
    lr, batch_size, label_smoothing, negatives:
        Optimisation hyperparameters (Section V-B).
    grad_clip:
        Global-norm gradient clipping (0 disables).
    """

    def __init__(self, model, split: KGSplit, rng: np.random.Generator,
                 lr: float = 1e-3, batch_size: int = 64,
                 label_smoothing: float = 0.1, negatives: int | None = None,
                 grad_clip: float = 5.0) -> None:
        self.engine = TrainingEngine(
            model, split, rng,
            OneToNObjective(batch_size=batch_size,
                            label_smoothing=label_smoothing,
                            negatives=negatives),
            lr=lr, grad_clip=grad_clip,
        )

    # Everything below delegates; the shim holds no training state.
    @property
    def model(self):
        return self.engine.model

    @property
    def split(self) -> KGSplit:
        return self.engine.split

    @property
    def rng(self) -> np.random.Generator:
        return self.engine.rng

    @property
    def grad_clip(self) -> float:
        return self.engine.grad_clip

    @property
    def optimizer(self):
        return self.engine.optimizer

    @property
    def batcher(self):
        return self.engine.batcher

    @property
    def evaluator(self) -> RankingEvaluator:
        """Shared filtered-ranking evaluator (filter built on first use)."""
        return self.engine.evaluator

    def train_epoch(self) -> float:
        """One pass over all queries; returns the mean batch loss."""
        return self.engine.train_epoch()

    def fit(self, epochs: int, eval_every: int | None = None,
            eval_part: str = "valid", eval_max_queries: int | None = 200,
            eval_batch_size: int = 128,
            keep_best: bool = True, verbose: bool = False) -> TrainReport:
        """Train for ``epochs``; optionally track timed eval history.

        Same contract as :meth:`repro.train.TrainingEngine.fit` minus
        the ``callbacks`` parameter (use the engine for those).
        """
        return self.engine.fit(epochs, eval_every=eval_every,
                               eval_part=eval_part,
                               eval_max_queries=eval_max_queries,
                               eval_batch_size=eval_batch_size,
                               keep_best=keep_best, verbose=verbose)
