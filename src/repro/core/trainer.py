"""1-to-many training loop (Section IV-D) with timed evaluation hooks.

Trains any model exposing ``score_queries(heads, rels, candidates) ->
Tensor`` (CamE and the neural baselines) against the Bernoulli NLL of
Eqn. 16.  The loop:

* augments train triples with inverse relations;
* batches ``(h, r)`` queries with multi-hot labels (full 1-to-N, or
  1-to-K sampled negatives — the paper's OMAHA-MM setting);
* optionally evaluates filtered MRR on a sampled validation/test subset
  every ``eval_every`` epochs, recording wall-clock time — the exact
  measurement Fig. 8 (convergence) plots;
* keeps the best state by validation Hits@10, as the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from .. import nn
from ..nn import functional as F
from ..kg import KGSplit, OneToNBatcher, add_inverse_relations
from ..eval import RankingEvaluator, RankingMetrics

__all__ = ["QueryScoringModel", "TrainReport", "OneToNTrainer"]


class QueryScoringModel(Protocol):
    """Structural type for 1-to-N trainable models."""

    def score_queries(self, heads: np.ndarray, rels: np.ndarray,
                      candidates: np.ndarray | None = None): ...  # pragma: no cover

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray: ...  # pragma: no cover

    def parameters(self): ...  # pragma: no cover


@dataclass
class TrainReport:
    """Everything a training run produced.

    ``eval_history`` rows are ``(epoch, elapsed_seconds, metrics)`` —
    the series Fig. 8 plots.  ``epoch_seconds`` feeds Fig. 9.
    """

    epoch_losses: list[float] = field(default_factory=list)
    eval_history: list[tuple[int, float, RankingMetrics]] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    best_metrics: RankingMetrics | None = None
    best_state: dict[str, np.ndarray] | None = None

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def mean_epoch_seconds(self) -> float:
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else float("nan")


class OneToNTrainer:
    """Trainer for 1-to-N scoring models.

    Parameters
    ----------
    model:
        Must implement :class:`QueryScoringModel` and (for checkpointing)
        ``state_dict``/``load_state_dict``.
    split:
        Dataset partition; train triples get inverse augmentation here.
    rng:
        Batching/negative-sampling randomness.
    lr, batch_size, label_smoothing, negatives:
        Optimisation hyperparameters (Section V-B).
    grad_clip:
        Global-norm gradient clipping (0 disables).
    """

    def __init__(self, model, split: KGSplit, rng: np.random.Generator,
                 lr: float = 1e-3, batch_size: int = 64,
                 label_smoothing: float = 0.1, negatives: int | None = None,
                 grad_clip: float = 5.0) -> None:
        self.model = model
        self.split = split
        self.rng = rng
        self.grad_clip = grad_clip
        self.optimizer = nn.Adam(list(model.parameters()), lr=lr)
        self._evaluator: RankingEvaluator | None = None
        train = add_inverse_relations(split.train, split.num_relations)
        self.batcher = OneToNBatcher(
            train, split.num_entities, batch_size=batch_size, rng=rng,
            label_smoothing=label_smoothing, negatives=negatives,
        )

    @property
    def evaluator(self) -> RankingEvaluator:
        """Shared filtered-ranking evaluator (filter built on first use).

        Constructed at most once per trainer, so every epoch eval inside
        :meth:`fit` — and any post-training evaluation that reuses it —
        shares a single CSR filter construction.
        """
        if self._evaluator is None:
            self._evaluator = RankingEvaluator(self.split)
        return self._evaluator

    def train_epoch(self) -> float:
        """One pass over all queries; returns the mean batch loss."""
        losses = []
        for heads, rels, labels, candidates in self.batcher.epoch():
            self.optimizer.zero_grad()
            logits = self.model.score_queries(heads, rels, candidates)
            loss = F.bce_with_logits(logits, labels)
            loss.backward()
            if self.grad_clip:
                nn.clip_grad_norm(self.optimizer.parameters, self.grad_clip)
            self.optimizer.step()
            losses.append(float(loss.data))
        return float(np.mean(losses)) if losses else float("nan")

    def fit(self, epochs: int, eval_every: int | None = None,
            eval_part: str = "valid", eval_max_queries: int | None = 200,
            eval_batch_size: int = 128,
            keep_best: bool = True, verbose: bool = False) -> TrainReport:
        """Train for ``epochs``; optionally track timed eval history.

        The ranking filter is built once (lazily, at the first eval) and
        shared across every epoch eval of this ``fit`` call.
        ``eval_batch_size`` bounds the ``(B, num_entities)`` score blocks
        the evaluator requests — the knob Fig. 9 scalability runs tune.
        """
        report = TrainReport()
        start = time.perf_counter()
        best_key = -np.inf
        for epoch in range(1, epochs + 1):
            tick = time.perf_counter()
            loss = self.train_epoch()
            report.epoch_seconds.append(time.perf_counter() - tick)
            report.epoch_losses.append(loss)
            if eval_every and (epoch % eval_every == 0 or epoch == epochs):
                metrics = self.evaluator.evaluate(
                    self.model, part=eval_part,
                    max_queries=eval_max_queries, rng=self.rng,
                    batch_size=eval_batch_size,
                )
                elapsed = time.perf_counter() - start
                report.eval_history.append((epoch, elapsed, metrics))
                key = metrics.hits.get(10, metrics.mrr)
                if keep_best and key > best_key:
                    best_key = key
                    report.best_metrics = metrics
                    if hasattr(self.model, "state_dict"):
                        report.best_state = self.model.state_dict()
                if verbose:  # pragma: no cover - console convenience
                    print(f"epoch {epoch:3d} loss {loss:.4f} {metrics}")
        if keep_best and report.best_state is not None and hasattr(self.model, "load_state_dict"):
            self.model.load_state_dict(report.best_state)
        return report
