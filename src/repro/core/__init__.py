"""``repro.core`` — the paper's contribution: CamE.

The TCA operator (:mod:`repro.core.tca`), exchanging fusion
(:mod:`repro.core.exchange`), the MMF and RIC modules
(:mod:`repro.core.mmf`, :mod:`repro.core.ric`), the assembled CamE model
(:mod:`repro.core.came`), its configuration/ablation switches
(:mod:`repro.core.config`) and the 1-to-N trainer
(:mod:`repro.core.trainer`).
"""

from .came import CamE, reshape_to_2d_shape
from .config import CamEConfig
from .exchange import ExchangeFusion
from .mmf import MultimodalTCAFusion, SimpleFusion
from .ric import RelationInteractiveTCA
from .tca import TCAHead, TCAOperator
from .trainer import OneToNTrainer, TrainReport

__all__ = [
    "CamE",
    "CamEConfig",
    "reshape_to_2d_shape",
    "TCAOperator",
    "TCAHead",
    "ExchangeFusion",
    "MultimodalTCAFusion",
    "SimpleFusion",
    "RelationInteractiveTCA",
    "OneToNTrainer",
    "TrainReport",
]
