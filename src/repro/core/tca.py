"""The Triple Co-Attention (TCA) operator — Eqns. 1-8 of the paper.

TCA takes a pair of same-dimensional modality vectors ``(Q, D)`` and
returns a pair in which the semantic features shared by both inputs are
mutually highlighted.  Three affinity matrices are learned per sample:

* a **co-affinity** matrix ``M_co = sigmoid(Q W_co^q) (x) sigmoid(D W_co^d)``
  (outer product) whose row/column softmaxes attend each input over the
  other (Eqns. 1-3);
* two **intra-affinity** matrices that reuse the co-projection on one
  side (``W_co`` is shared, restricting both attentions to the same
  subspace) and a private projection on the other (Eqns. 4-5).

Co- and intra-attention outputs are summed (Eqn. 6).  Multi-head TCA
concatenates ``m`` independent heads and projects back (Eqn. 7); head
``i`` divides its affinities by a learnable temperature sequence
``tau_i = tau_0 * (lambda * i)`` with fixed interval ``lambda`` (Eqn. 8)
so head diversity is itself learnable.

Shape note: the paper writes ``Q in R^{d1}``, ``D in R^{d2}`` but sums
co-attention (length ``d2``) with intra-attention (length ``d1``) in
Eqn. 6, which is only consistent when ``d1 == d2``; both call sites
(MMF after the Eqn. 9 projections, RIC after relation projection)
satisfy this, so this implementation requires equal dimensions.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["TCAHead", "TCAOperator"]


class TCAHead(nn.Module):
    """A single TCA head over batched vector pairs ``(B, d)``."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.dim = dim
        self.w_co_q = nn.Linear(dim, dim, bias=False, rng=rng)
        self.w_co_d = nn.Linear(dim, dim, bias=False, rng=rng)
        self.w_in_q = nn.Linear(dim, dim, bias=False, rng=rng)
        self.w_in_d = nn.Linear(dim, dim, bias=False, rng=rng)

    def forward(self, q: nn.Tensor, d: nn.Tensor, tau: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        """Apply one TCA head.

        Parameters
        ----------
        q, d:
            ``(B, dim)`` modality vector batches.
        tau:
            Scalar temperature tensor for this head.
        """
        b = q.shape[0]
        # Projected, squashed representations (Eqn. 1 & 4 share W_co).
        q_co = F.sigmoid(self.w_co_q(q))          # (B, d)
        d_co = F.sigmoid(self.w_co_d(d))          # (B, d)
        q_in = F.sigmoid(self.w_in_q(q))          # (B, d)
        d_in = F.sigmoid(self.w_in_d(d))          # (B, d)

        inv_tau = F.div(1.0, tau)

        # Co-affinity (B, d, d): outer product per sample (Eqn. 1).
        m_co = F.matmul(F.reshape(q_co, (b, self.dim, 1)),
                        F.reshape(d_co, (b, 1, self.dim)))
        m_co = F.mul(m_co, inv_tau)
        # Row-wise (dim=0 over Q axis) and column-wise softmax (Eqn. 2).
        m_co_q = F.softmax(m_co, axis=1)
        m_co_d = F.softmax(m_co, axis=2)
        # Attend each input over the other (Eqn. 3).
        q_att = F.reshape(F.matmul(F.reshape(q, (b, 1, self.dim)), m_co_q),
                          (b, self.dim))
        d_att = F.reshape(F.matmul(m_co_d, F.reshape(d, (b, self.dim, 1))),
                          (b, self.dim))

        # Intra-affinities share the co projections (Eqn. 4).
        m_in_q = F.mul(F.matmul(F.reshape(q_co, (b, self.dim, 1)),
                                F.reshape(q_in, (b, 1, self.dim))), inv_tau)
        m_in_d = F.mul(F.matmul(F.reshape(d_co, (b, self.dim, 1)),
                                F.reshape(d_in, (b, 1, self.dim))), inv_tau)
        q_self = F.reshape(F.matmul(F.reshape(q, (b, 1, self.dim)),
                                    F.softmax(m_in_q, axis=1)), (b, self.dim))
        d_self = F.reshape(F.matmul(F.reshape(d, (b, 1, self.dim)),
                                    F.softmax(m_in_d, axis=1)), (b, self.dim))

        # Sum co- and intra-attention (Eqn. 6).
        return F.add(q_att, q_self), F.add(d_att, d_self)


class TCAOperator(nn.Module):
    """Multi-head TCA with a learnable fixed-interval temperature sequence.

    Parameters
    ----------
    dim:
        Vector dimension of both inputs.
    num_heads:
        ``m`` in Eqn. 7.
    interval:
        ``lambda`` in Eqn. 8.
    temperature_init:
        Initial value of the learnable base temperature ``tau_0``.
    """

    def __init__(self, dim: int, num_heads: int = 2, interval: float = 5.0,
                 temperature_init: float = 1.0,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        self.dim = dim
        self.num_heads = num_heads
        self.interval = interval
        self.heads = nn.ModuleList([TCAHead(dim, gen) for _ in range(num_heads)])
        self.tau0 = nn.Parameter(np.asarray([temperature_init]))
        self.w_head_q = nn.Linear(num_heads * dim, dim, bias=False, rng=gen)
        self.w_head_d = nn.Linear(num_heads * dim, dim, bias=False, rng=gen)

    def head_temperatures(self) -> list[nn.Tensor]:
        """The Eqn. 8 sequence ``tau_i = tau_0 * (lambda * i)``, i = 1..m.

        Temperatures are clamped away from zero for numerical safety
        (``tau_0`` is learnable and unconstrained).
        """
        taus = []
        for i in range(1, self.num_heads + 1):
            tau = F.mul(self.tau0, self.interval * i)
            taus.append(F.add(F.abs(tau), 1e-3))
        return taus

    def forward(self, q: nn.Tensor, d: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        """Apply multi-head TCA to ``(B, dim)`` input pairs (Eqn. 7).

        A residual connection adds each input back to its multi-head
        attended representation.  The attended vectors are convex
        mixtures of input coordinates (softmax-weighted averages), so
        without the residual the operator is strictly smoothing; the
        residual preserves the identity signal the downstream fusion
        needs — the same stabilisation every transformer block applies.
        """
        if q.shape[-1] != self.dim or d.shape[-1] != self.dim:
            raise ValueError(
                f"TCA expects inputs of dim {self.dim}, got {q.shape[-1]} and {d.shape[-1]}"
            )
        taus = self.head_temperatures()
        outs_q, outs_d = [], []
        for head, tau in zip(self.heads, taus):
            out_q, out_d = head(q, d, tau)
            outs_q.append(out_q)
            outs_d.append(out_d)
        if self.num_heads == 1:
            att_q, att_d = self.w_head_q(outs_q[0]), self.w_head_d(outs_d[0])
        else:
            att_q = self.w_head_q(F.concat(outs_q, axis=-1))
            att_d = self.w_head_d(F.concat(outs_d, axis=-1))
        return F.add(q, att_q), F.add(d, att_d)
