"""Configuration for the CamE model and its ablation variants."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CamEConfig"]


@dataclass
class CamEConfig:
    """Hyperparameters of CamE (Section V-B) plus ablation switches.

    Paper defaults (DRKG-MM): fusion dim 200, 128 9x9 filters, lr 1e-3,
    embedding dim 500, heads m=2, interval lambda=5, exchanging factor
    theta=-0.5.  The reproduction defaults are scaled for CPU execution;
    the geometry (reshape of the fusion vector into a 2-D feature map)
    requires ``fusion_dim == fusion_height * fusion_width``.

    Ablation switches map one-to-one onto the Fig. 6 variants:

    * ``use_tca=False``     -> "w/o TCA"
    * ``use_exchange=False``-> "w/o EX"
    * ``use_mmf=False``     -> "w/o MMF" (fusion replaced by element product)
    * ``use_ric=False``     -> "w/o RIC" (interaction replaced by concat)
    * both off              -> "w/o M and R"
    * ``use_text=False``    -> "w/o TD"
    * ``use_molecule=False``-> "w/o MS"
    """

    # Embedding geometry -------------------------------------------------
    # fusion_dim == entity_dim == relation_dim activates the native
    # two-channel [h; r] feature map (see repro.core.came), which avoids
    # bottlenecking the learned embeddings through a projection.
    entity_dim: int = 48
    relation_dim: int = 48
    fusion_dim: int = 48
    fusion_height: int = 6
    fusion_width: int = 8

    # TCA ----------------------------------------------------------------
    # The paper's best full-scale settings are m=2, lambda=5 (Fig. 5); at
    # CPU scale the grid search selects a sharper attention temperature
    # (tau0=0.2, lambda=1) — with lambda=5 the softmaxes are near-uniform
    # at d_f=48 and TCA degenerates to averaging.
    num_heads: int = 2
    temperature_init: float = 0.2
    interval: float = 1.0

    # Exchanging fusion ----------------------------------------------------
    exchange_theta: float = -0.5

    # Scoring head ---------------------------------------------------------
    conv_channels: int = 16
    kernel_size: int = 3
    input_bn: bool = True        # ConvE-style BN on the stacked feature map
    use_struct_term: bool = True  # the W_1 h_s scoring term of Eqn. 15

    # Training ---------------------------------------------------------------
    # The paper uses 1e-3 at d=500 on millions of triples; the CPU-scale
    # reproduction converges best at 3e-3 (validated by grid search on
    # the synthetic DRKG-MM valid split).
    learning_rate: float = 3e-3
    batch_size: int = 64
    label_smoothing: float = 0.1
    dropout: float = 0.2
    negatives: int | None = None  # None = full 1-to-N; int = 1-to-K sampling

    # Ablation switches ---------------------------------------------------
    use_tca: bool = True
    use_exchange: bool = True
    use_mmf: bool = True
    use_ric: bool = True
    use_text: bool = True
    use_molecule: bool = True

    def __post_init__(self) -> None:
        if self.fusion_height * self.fusion_width != self.fusion_dim:
            raise ValueError(
                "fusion_dim must equal fusion_height * fusion_width "
                f"({self.fusion_height}x{self.fusion_width} != {self.fusion_dim})"
            )
        if self.num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")

    def variant(self, **changes) -> "CamEConfig":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)

    @classmethod
    def ablation(cls, name: str, base: "CamEConfig | None" = None) -> "CamEConfig":
        """Build a named Fig. 6 ablation variant from ``base``."""
        cfg = base or cls()
        variants = {
            "full": {},
            "w/o EX": {"use_exchange": False},
            "w/o TCA": {"use_tca": False},
            "w/o MMF": {"use_mmf": False},
            "w/o RIC": {"use_ric": False},
            "w/o M and R": {"use_mmf": False, "use_ric": False},
            "w/o TD": {"use_text": False},
            "w/o MS": {"use_molecule": False},
        }
        try:
            return cfg.variant(**variants[name])
        except KeyError:
            raise KeyError(f"unknown ablation {name!r}; known: {sorted(variants)}") from None
