"""Relation-aware Interactive TCA module (RIC) — Section IV-C.

RIC deepens the entity-relation interaction beyond ConvE's
concatenation: for each modality ``omega in {t, m, s}`` the modality
vector and the relation embedding pass through a TCA operator so every
element of the entity representation can interact multiplicatively with
every element of the relation embedding (Eqn. 14); the attended pair is
concatenated into the interactive representation ``v_omega``.

Dimension note: the paper applies ``TCA(h_omega, r)`` directly; TCA
requires equal dimensions (see :mod:`repro.core.tca`), so RIC first
projects both the modality vector and the relation embedding to the
fusion dimension — the same resolution the MMF module applies in
Eqn. 9.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .tca import TCAOperator

__all__ = ["RelationInteractiveTCA"]


class RelationInteractiveTCA(nn.Module):
    """Entity-relation interactive representations for all modalities.

    Parameters
    ----------
    input_dims:
        ``(d_m, d_t, d_s)`` raw modality feature dimensions.
    relation_dim:
        Width of the relation embedding fed in.
    fusion_dim:
        Shared interaction width ``d_f``; each ``v_omega`` has width
        ``2 * d_f`` (concat of attended entity and relation parts).
    use_tca:
        When false (the "w/o RIC" spirit is handled at the model level;
        this switch covers "w/o TCA"), the projected vectors pass through
        unattended and are simply concatenated.
    """

    MODALITIES = ("t", "m", "s")

    def __init__(self, input_dims: tuple[int, int, int], relation_dim: int,
                 fusion_dim: int, num_heads: int = 2, interval: float = 5.0,
                 temperature_init: float = 1.0, use_tca: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        d_m, d_t, d_s = input_dims
        self.fusion_dim = fusion_dim
        self.use_tca = use_tca
        self.proj_t = nn.Linear(d_t, fusion_dim, bias=False, rng=gen)
        self.proj_m = nn.Linear(d_m, fusion_dim, bias=False, rng=gen)
        self.proj_s = nn.Linear(d_s, fusion_dim, bias=False, rng=gen)
        self.proj_r = nn.Linear(relation_dim, fusion_dim, bias=False, rng=gen)
        self.tca = nn.ModuleList([
            TCAOperator(fusion_dim, num_heads=num_heads, interval=interval,
                        temperature_init=temperature_init, rng=gen)
            for _ in self.MODALITIES
        ])

    def forward(self, h_t: nn.Tensor, h_m: nn.Tensor, h_s: nn.Tensor,
                relation: nn.Tensor) -> dict[str, nn.Tensor]:
        """Return ``{"t": v_t, "m": v_m, "s": v_s}``, each ``(B, 2*d_f)``.

        Parameters are per-modality entity batches plus the relation
        embedding batch ``(B, relation_dim)``.
        """
        projected = {
            "t": self.proj_t(h_t),
            "m": self.proj_m(h_m),
            "s": self.proj_s(h_s),
        }
        rel = self.proj_r(relation)
        interactive: dict[str, nn.Tensor] = {}
        for idx, omega in enumerate(self.MODALITIES):
            ent = projected[omega]
            if self.use_tca:
                ent_att, rel_att = self.tca[idx](ent, rel)
            else:
                ent_att, rel_att = ent, rel
            interactive[omega] = F.concat([ent_att, rel_att], axis=-1)
        return interactive
