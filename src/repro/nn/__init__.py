"""``repro.nn`` — a compact numpy deep-learning framework.

This package is the reproduction's substitute for PyTorch: a
reverse-mode autograd engine (:mod:`repro.nn.tensor`), an operator zoo
(:mod:`repro.nn.functional`), layers and containers
(:mod:`repro.nn.layers`, :mod:`repro.nn.module`), Xavier/He
initialisation (:mod:`repro.nn.init`), Adam/SGD optimisers
(:mod:`repro.nn.optim`), checkpointing (:mod:`repro.nn.serialize`), and
a finite-difference gradient checker (:mod:`repro.nn.gradcheck`).
"""

from . import functional, gradcheck, init, optim, quant, serialize
from .layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .module import Module, ModuleList, inference_mode
from .optim import SGD, Adam, ExponentialLR, StepLR, clip_grad_norm
from .quant import QuantizedTable, quantize_table
from .serialize import (
    FlatSpec,
    flatten_state_dict,
    load_module,
    save_module,
    unflatten_state_dict,
)
from .tensor import Parameter, Tensor, is_grad_enabled, no_grad

__all__ = [
    "functional",
    "gradcheck",
    "init",
    "optim",
    "quant",
    "serialize",
    "QuantizedTable",
    "quantize_table",
    "Tensor",
    "Parameter",
    "is_grad_enabled",
    "no_grad",
    "Module",
    "inference_mode",
    "ModuleList",
    "Linear",
    "Embedding",
    "Conv2d",
    "LayerNorm",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "Sequential",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Adam",
    "SGD",
    "StepLR",
    "ExponentialLR",
    "clip_grad_norm",
    "save_module",
    "FlatSpec",
    "flatten_state_dict",
    "unflatten_state_dict",
    "load_module",
]
