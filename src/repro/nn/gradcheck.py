"""Numerical gradient verification.

Used throughout ``tests/nn`` to validate every analytic backward pass in
:mod:`repro.nn.functional` against central finite differences — the same
guarantee ``torch.autograd.gradcheck`` provides.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients"]


def numeric_gradient(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
                     wrt: int, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t one input.

    Parameters
    ----------
    fn:
        Function mapping :class:`Tensor` inputs to a Tensor output.
    inputs:
        Raw numpy input arrays.
    wrt:
        Index of the input to differentiate against.
    eps:
        Perturbation size.
    """
    base = [np.array(x, dtype=np.float64) for x in inputs]
    grad = np.zeros_like(base[wrt])
    flat = grad.reshape(-1)
    target = base[wrt].reshape(-1)
    for i in range(target.size):
        original = target[i]
        target[i] = original + eps
        plus = float(fn(*[Tensor(b) for b in base]).data.sum())
        target[i] = original - eps
        minus = float(fn(*[Tensor(b) for b in base]).data.sum())
        target[i] = original
        flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
                    atol: float = 1e-5, rtol: float = 1e-4, eps: float = 1e-6) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    Runs ``fn`` once with gradient tracking, back-propagates the sum of the
    output, and compares each input's accumulated gradient against
    :func:`numeric_gradient`.  Raises ``AssertionError`` on mismatch.
    """
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.sum().backward()
    for i, t in enumerate(tensors):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numeric_gradient(fn, inputs, wrt=i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
