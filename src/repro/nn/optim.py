"""Optimisers and learning-rate schedules.

The paper trains every model with Adam (Kingma & Ba, 2015); SGD with
momentum is provided for baseline parity and tests.  Gradient clipping is
exposed as a free function so trainers can apply it between
``backward()`` and ``step()``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR", "ExponentialLR"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1 ** self._step
        bc2 = 1.0 - self.beta2 ** self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self._base_lr * self.gamma ** (self._epoch // self.step_size)


class ExponentialLR:
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.99) -> None:
        self.optimizer = optimizer
        self.gamma = gamma

    def step(self) -> None:
        self.optimizer.lr *= self.gamma
