"""Differentiable operations for :mod:`repro.nn`.

Every public function takes :class:`~repro.nn.tensor.Tensor` (or plain
array-likes, which are promoted) and returns a new tensor wired into the
autograd graph.  Gradients are defined analytically per op; the test suite
verifies each of them against central finite differences via
:mod:`repro.nn.gradcheck`.

The set of operators is exactly what the CamE paper and its baselines
need: dense algebra (matmul, elementwise), activations (sigmoid, tanh,
relu), softmax with configurable axis and temperature, 2-D convolution
(im2col), layer/batch normalisation, dropout, embedding lookup, shape
surgery (reshape / transpose / concat / stack / indexing), and the
binary-cross-entropy-with-logits loss of Eqn. 16.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, is_grad_enabled, unbroadcast

__all__ = [
    "add", "sub", "mul", "div", "neg", "pow", "matmul", "exp", "log",
    "sqrt", "abs", "sigmoid", "tanh", "relu", "leaky_relu", "softmax",
    "log_softmax", "sum", "mean", "max", "min", "reshape", "transpose",
    "index", "concat", "stack", "embedding", "dropout", "layer_norm",
    "batch_norm", "conv2d", "max_pool2d", "bce_with_logits",
    "cross_entropy", "clip", "maximum", "minimum", "where", "norm", "logsigmoid",
    "scatter_mean", "scatter_sum", "segment_sum", "segment_mean",
    "circular_correlation", "l2_normalize",
]


def _t(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------

def add(a, b) -> Tensor:
    """Elementwise ``a + b`` with numpy broadcasting."""
    a, b = _t(a), _t(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad)
        b._accumulate(grad)

    return Tensor.make(out_data, (a, b), backward)


def sub(a, b) -> Tensor:
    """Elementwise ``a - b``."""
    a, b = _t(a), _t(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad)
        b._accumulate(-grad)

    return Tensor.make(out_data, (a, b), backward)


def mul(a, b) -> Tensor:
    """Elementwise (Hadamard) product."""
    a, b = _t(a), _t(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * b.data)
        b._accumulate(grad * a.data)

    return Tensor.make(out_data, (a, b), backward)


def div(a, b) -> Tensor:
    """Elementwise ``a / b``."""
    a, b = _t(a), _t(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad / b.data)
        b._accumulate(-grad * a.data / (b.data * b.data))

    return Tensor.make(out_data, (a, b), backward)


def neg(a) -> Tensor:
    a = _t(a)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(-grad)

    return Tensor.make(-a.data, (a,), backward)


def pow(a, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    a = _t(a)
    out_data = a.data ** exponent

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * exponent * a.data ** (exponent - 1))

    return Tensor.make(out_data, (a,), backward)


def exp(a) -> Tensor:
    a = _t(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data)

    return Tensor.make(out_data, (a,), backward)


def log(a, eps: float = 0.0) -> Tensor:
    """Natural logarithm; ``eps`` guards against log(0)."""
    a = _t(a)
    safe = a.data + eps if eps else a.data
    out_data = np.log(safe)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad / safe)

    return Tensor.make(out_data, (a,), backward)


def sqrt(a) -> Tensor:
    a = _t(a)
    out_data = np.sqrt(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * 0.5 / out_data)

    return Tensor.make(out_data, (a,), backward)


def abs(a) -> Tensor:
    a = _t(a)
    out_data = np.abs(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * np.sign(a.data))

    return Tensor.make(out_data, (a,), backward)


def clip(a, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is zero outside."""
    a = _t(a)
    out_data = np.clip(a.data, low, high)
    mask = (a.data >= low) & (a.data <= high)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)

    return Tensor.make(out_data, (a,), backward)


def maximum(a, b) -> Tensor:
    """Elementwise maximum; ties route gradient to the first operand."""
    a, b = _t(a), _t(b)
    take_a = a.data >= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * take_a)
        b._accumulate(grad * ~take_a)

    return Tensor.make(out_data, (a, b), backward)


def minimum(a, b) -> Tensor:
    """Elementwise minimum; ties route gradient to the first operand."""
    a, b = _t(a), _t(b)
    take_a = a.data <= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * take_a)
        b._accumulate(grad * ~take_a)

    return Tensor.make(out_data, (a, b), backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Select ``a`` where ``condition`` else ``b`` (condition is constant)."""
    a, b = _t(a), _t(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * cond)
        b._accumulate(grad * ~cond)

    return Tensor.make(out_data, (a, b), backward)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------

def matmul(a, b) -> Tensor:
    """Matrix product supporting 1-D vectors and batched operands."""
    a, b = _t(a), _t(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        a_data, b_data = a.data, b.data
        if a_data.ndim == 1 and b_data.ndim == 1:
            # inner product -> scalar grad
            a._accumulate(grad * b_data)
            b._accumulate(grad * a_data)
            return
        if a_data.ndim == 1:
            # (k,) @ (..., k, n) -> (..., n)
            if b_data.ndim == 2:
                a._accumulate(b_data @ grad)
                b._accumulate(np.outer(a_data, grad))
            else:  # batched
                a._accumulate(np.einsum("...n,...kn->k", grad, b_data))
                b._accumulate(np.einsum("k,...n->...kn", a_data, grad))
            return
        if b_data.ndim == 1:
            # (..., m, k) @ (k,) -> (..., m)
            a._accumulate(np.einsum("...m,k->...mk", grad, b_data))
            b._accumulate(np.einsum("...m,...mk->k", grad, a_data))
            return
        # General batched matmul.
        ga = grad @ np.swapaxes(b_data, -1, -2)
        gb = np.swapaxes(a_data, -1, -2) @ grad
        a._accumulate(unbroadcast(ga, a_data.shape))
        b._accumulate(unbroadcast(gb, b_data.shape))

    return Tensor.make(out_data, (a, b), backward)


def norm(a, axis=None, keepdims: bool = False, eps: float = 1e-12) -> Tensor:
    """L2 norm along ``axis`` (differentiable, eps-stabilised)."""
    return sqrt(sum(mul(a, a), axis=axis, keepdims=keepdims) + eps)


def l2_normalize(a, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Scale vectors along ``axis`` to unit L2 norm."""
    return div(a, norm(a, axis=axis, keepdims=True, eps=eps))


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def sigmoid(a) -> Tensor:
    a = _t(a)
    # Numerically stable logistic.
    out_data = np.where(a.data >= 0, 1.0 / (1.0 + np.exp(-a.data)),
                        np.exp(a.data) / (1.0 + np.exp(a.data)))

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor.make(out_data, (a,), backward)


def tanh(a) -> Tensor:
    a = _t(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * (1.0 - out_data * out_data))

    return Tensor.make(out_data, (a,), backward)


def relu(a) -> Tensor:
    a = _t(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)

    return Tensor.make(out_data, (a,), backward)


def leaky_relu(a, slope: float = 0.01) -> Tensor:
    a = _t(a)
    mask = a.data > 0
    out_data = np.where(mask, a.data, slope * a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * np.where(mask, 1.0, slope))

    return Tensor.make(out_data, (a,), backward)


def softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` with fused backward."""
    a = _t(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        # dL/dx = s * (g - sum(g * s))
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        a._accumulate(out_data * (grad - dot))

    return Tensor.make(out_data, (a,), backward)


def log_softmax(a, axis: int = -1) -> Tensor:
    """Log-softmax with fused, stable backward."""
    a = _t(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor.make(out_data, (a,), backward)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _t(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        a._accumulate(np.broadcast_to(g, a.data.shape))

    return Tensor.make(out_data, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _t(a)
    count = a.data.size if axis is None else np.prod(
        [a.data.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )
    return mul(sum(a, axis=axis, keepdims=keepdims), 1.0 / float(count))


def max(a, axis=None, keepdims: bool = False) -> Tensor:
    """Max reduction; gradient flows to (all) argmax positions."""
    a = _t(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        expanded = out_data if keepdims or axis is None else np.expand_dims(out_data, axis)
        g = grad if keepdims or axis is None else np.expand_dims(np.asarray(grad), axis)
        mask = a.data == expanded
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        a._accumulate(mask * g / counts)

    return Tensor.make(out_data, (a,), backward)


def min(a, axis=None, keepdims: bool = False) -> Tensor:
    return neg(max(neg(a), axis=axis, keepdims=keepdims))


# ---------------------------------------------------------------------------
# Shape surgery
# ---------------------------------------------------------------------------

def reshape(a, shape: Sequence[int]) -> Tensor:
    a = _t(a)
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad.reshape(a.data.shape))

    return Tensor.make(out_data, (a,), backward)


def transpose(a, axes: Sequence[int] | None = None) -> Tensor:
    a = _t(a)
    out_data = a.data.transpose(axes)
    inverse = None if axes is None else np.argsort(axes)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad.transpose(inverse))

    return Tensor.make(out_data, (a,), backward)


def index(a, idx) -> Tensor:
    """Differentiable ``a[idx]`` (slices, ints, integer arrays)."""
    a = _t(a)
    out_data = a.data[idx]

    def backward(grad: np.ndarray) -> None:
        buf = np.zeros_like(a.data)
        np.add.at(buf, idx, grad)
        a._accumulate(buf)

    return Tensor.make(out_data, (a,), backward)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    ts = [_t(t) for t in tensors]
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.data.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(ts, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(grad[tuple(slicer)])

    return Tensor.make(out_data, tuple(ts), backward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    ts = [_t(t) for t in tensors]
    out_data = np.stack([t.data for t in ts], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(ts), axis=axis)
        for t, part in zip(ts, parts):
            t._accumulate(np.squeeze(part, axis=axis))

    return Tensor.make(out_data, tuple(ts), backward)


# ---------------------------------------------------------------------------
# Neural-network primitives
# ---------------------------------------------------------------------------

def embedding(weight, ids) -> Tensor:
    """Row lookup ``weight[ids]`` with scatter-add backward."""
    weight = _t(weight)
    ids = np.asarray(ids, dtype=np.int64)
    out_data = weight.data[ids]

    def backward(grad: np.ndarray) -> None:
        buf = np.zeros_like(weight.data)
        np.add.at(buf, ids, grad)
        weight._accumulate(buf)

    return Tensor.make(out_data, (weight,), backward)


def dropout(a, p: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: identity when ``not training`` or ``p == 0``."""
    a = _t(a)
    if not training or p <= 0.0:
        return a
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    gen = rng if rng is not None else np.random.default_rng()
    mask = (gen.random(a.data.shape) >= p) / (1.0 - p)
    return mul(a, Tensor(mask))


def layer_norm(a, gamma, beta, axis: int = -1, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over ``axis`` with affine parameters."""
    a, gamma, beta = _t(a), _t(gamma), _t(beta)
    mu = a.data.mean(axis=axis, keepdims=True)
    var = a.data.var(axis=axis, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (a.data - mu) * inv_std
    out_data = x_hat * gamma.data + beta.data

    def backward(grad: np.ndarray) -> None:
        gamma._accumulate(unbroadcast(grad * x_hat, gamma.data.shape))
        beta._accumulate(unbroadcast(grad, beta.data.shape))
        g = grad * gamma.data
        term1 = g
        term2 = g.mean(axis=axis, keepdims=True)
        term3 = x_hat * (g * x_hat).mean(axis=axis, keepdims=True)
        a._accumulate(inv_std * (term1 - term2 - term3))

    return Tensor.make(out_data, (a, gamma, beta), backward)


def batch_norm(
    a,
    gamma,
    beta,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over axis 0 (features on the last axes).

    ``running_mean``/``running_var`` are plain arrays updated in place
    during training, mirroring PyTorch's buffer semantics.
    """
    a, gamma, beta = _t(a), _t(gamma), _t(beta)
    reduce_axes = tuple(i for i in range(a.data.ndim) if i != a.data.ndim - 1) if a.data.ndim > 1 else (0,)
    if training:
        mu = a.data.mean(axis=reduce_axes)
        var = a.data.var(axis=reduce_axes)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mu
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mu, var = running_mean, running_var
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (a.data - mu) * inv_std
    out_data = x_hat * gamma.data + beta.data

    def backward(grad: np.ndarray) -> None:
        gamma._accumulate(unbroadcast(grad * x_hat, gamma.data.shape))
        beta._accumulate(unbroadcast(grad, beta.data.shape))
        g = grad * gamma.data
        if training:
            term2 = g.mean(axis=reduce_axes, keepdims=True)
            term3 = x_hat * (g * x_hat).mean(axis=reduce_axes, keepdims=True)
            a._accumulate(inv_std * (g - term2 - term3))
        else:
            a._accumulate(inv_std * g)

    return Tensor.make(out_data, (a, gamma, beta), backward)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int,
            out: np.ndarray | None = None):
    """Unfold ``(N, C, H, W)`` into ``(N, C*kh*kw, out_h*out_w)`` columns.

    ``out``, when provided with the right shape/dtype, receives the
    columns in place instead of allocating a fresh buffer — the Conv2d
    inference fast path reuses one buffer per input shape this way.
    """
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (
        x.strides[0], x.strides[1], x.strides[2], x.strides[3],
        x.strides[2] * stride, x.strides[3] * stride,
    )
    cols = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    flat_shape = (n, c * kh * kw, out_h * out_w)
    if out is None or out.shape != flat_shape or out.dtype != x.dtype:
        out = np.empty(flat_shape, dtype=x.dtype)
    np.copyto(out.reshape(shape), cols)
    return out, out_h, out_w


def _col2im(cols: np.ndarray, x_shape, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Inverse of :func:`_im2col` (scatter-add of overlapping patches)."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    x = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            x[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    if pad:
        return x[:, :, pad:-pad, pad:-pad]
    return x


def conv2d(x, weight, bias=None, stride: int = 1, padding: int = 0,
           col_cache: dict | None = None) -> Tensor:
    """2-D cross-correlation: input ``(N,C,H,W)``, weight ``(F,C,kh,kw)``.

    ``col_cache`` (a per-layer dict keyed on input shape) lets inference
    reuse the im2col column buffer across calls.  It is consulted only
    while autograd is off: with grad enabled the backward closure
    captures ``cols``, so the buffer must stay private to this call.
    """
    x, weight = _t(x), _t(weight)
    n, c, h, w = x.data.shape
    f, c2, kh, kw = weight.data.shape
    if c != c2:
        raise ValueError(f"conv2d channel mismatch: input has {c}, weight expects {c2}")
    buffer = None
    cache_key = None
    if col_cache is not None and not is_grad_enabled():
        cache_key = x.data.shape
        buffer = col_cache.get(cache_key)
    cols, out_h, out_w = _im2col(x.data, kh, kw, stride, padding, out=buffer)
    if cache_key is not None:
        col_cache[cache_key] = cols
    w_mat = weight.data.reshape(f, -1)
    out = np.einsum("fk,nkl->nfl", w_mat, cols).reshape(n, f, out_h, out_w)
    parents = [x, weight]
    if bias is not None:
        bias = _t(bias)
        out = out + bias.data.reshape(1, f, 1, 1)
        parents.append(bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, f, -1)
        weight._accumulate(
            np.einsum("nfl,nkl->fk", grad_mat, cols).reshape(weight.data.shape)
        )
        grad_cols = np.einsum("fk,nfl->nkl", w_mat, grad_mat)
        x._accumulate(_col2im(grad_cols, x.data.shape, kh, kw, stride, padding))
        if bias is not None:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor.make(out, tuple(parents), backward)


def max_pool2d(x, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    x = _t(x)
    stride = stride or kernel
    cols, out_h, out_w = _im2col(x.data, kernel, kernel, stride, 0)
    n, c = x.data.shape[:2]
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    arg = cols.argmax(axis=2)
    out = np.take_along_axis(cols, arg[:, :, None, :], axis=2).squeeze(2)
    out = out.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        g = np.zeros((n, c, kernel * kernel, out_h * out_w))
        np.put_along_axis(g, arg[:, :, None, :], grad.reshape(n, c, 1, -1), axis=2)
        g = g.reshape(n, c * kernel * kernel, out_h * out_w)
        x._accumulate(_col2im(g, x.data.shape, kernel, kernel, stride, 0))

    return Tensor.make(out, (x,), backward)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

def bce_with_logits(logits, targets, label_smoothing: float = 0.0) -> Tensor:
    """Bernoulli negative log-likelihood of Eqn. 16, computed stably.

    ``loss = mean( max(z,0) - z*q + log(1+exp(-|z|)) )`` where ``z`` are the
    logits and ``q`` the (optionally smoothed) binary targets.
    """
    logits = _t(logits)
    q = np.asarray(targets, dtype=np.float64)
    if label_smoothing:
        q = q * (1.0 - label_smoothing) + label_smoothing / q.shape[-1]
    z = logits.data
    loss = np.maximum(z, 0) - z * q + np.log1p(np.exp(-np.abs(z)))
    out_data = np.asarray(loss.mean())
    n = z.size

    def backward(grad: np.ndarray) -> None:
        p = np.where(z >= 0, 1.0 / (1.0 + np.exp(-z)), np.exp(z) / (1.0 + np.exp(z)))
        logits._accumulate(grad * (p - q) / n)

    return Tensor.make(out_data, (logits,), backward)


def logsigmoid(a) -> Tensor:
    """Numerically stable ``log(sigmoid(a))``: ``min(a,0) - log1p(exp(-|a|))``."""
    a = _t(a)
    out_data = np.minimum(a.data, 0.0) - np.log1p(np.exp(-np.abs(a.data)))

    def backward(grad: np.ndarray) -> None:
        # d/da log sigmoid(a) = 1 - sigmoid(a) = sigmoid(-a)
        s = np.where(a.data >= 0, np.exp(-a.data) / (1.0 + np.exp(-a.data)),
                     1.0 / (1.0 + np.exp(a.data)))
        a._accumulate(grad * s)

    return Tensor.make(out_data, (a,), backward)


def cross_entropy(logits, target_ids) -> Tensor:
    """Mean categorical cross-entropy; ``logits`` is ``(N, C)``."""
    logits = _t(logits)
    ids = np.asarray(target_ids, dtype=np.int64)
    lsm = log_softmax(logits, axis=-1)
    picked = index(lsm, (np.arange(len(ids)), ids))
    return neg(mean(picked))


# ---------------------------------------------------------------------------
# Scatter reductions (for GNN message passing)
# ---------------------------------------------------------------------------

def scatter_sum(src, idx, num_segments: int) -> Tensor:
    """Sum rows of ``src`` into ``num_segments`` buckets given by ``idx``."""
    src = _t(src)
    ids = np.asarray(idx, dtype=np.int64)
    out_data = np.zeros((num_segments,) + src.data.shape[1:], dtype=src.data.dtype)
    np.add.at(out_data, ids, src.data)

    def backward(grad: np.ndarray) -> None:
        src._accumulate(grad[ids])

    return Tensor.make(out_data, (src,), backward)


def scatter_mean(src, idx, num_segments: int) -> Tensor:
    """Mean-reduce rows of ``src`` per segment (empty segments get 0)."""
    ids = np.asarray(idx, dtype=np.int64)
    counts = np.bincount(ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (np.ndim(_t(src).data) - 1))
    return div(scatter_sum(src, ids, num_segments), Tensor(counts))


def segment_sum(src, indptr) -> Tensor:
    """Sum contiguous row segments: segment ``i`` is ``src[indptr[i]:indptr[i+1]]``.

    The CSR-ordered sibling of :func:`scatter_sum` — when rows are
    already laid out segment-contiguously (a :class:`repro.graph`
    adjacency), ``np.add.reduceat`` replaces the scatter's
    per-row indirection.  Empty segments get zeros.
    """
    src = _t(src)
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr[-1] != src.data.shape[0]:
        raise ValueError(f"indptr covers {int(indptr[-1])} rows, "
                         f"src has {src.data.shape[0]}")
    starts = indptr[:-1]
    counts = np.diff(indptr)
    num_segments = len(starts)
    if src.data.shape[0] == 0 or num_segments == 0:
        out_data = np.zeros((num_segments,) + src.data.shape[1:], dtype=src.data.dtype)

        def backward_empty(grad: np.ndarray) -> None:
            src._accumulate(np.zeros_like(src.data))

        return Tensor.make(out_data, (src,), backward_empty)
    # reduceat quirk: an index pair (i, i) yields src[i], not 0, and any
    # start == len(src) raises — clip then zero out the empty segments.
    out_data = np.add.reduceat(src.data, np.minimum(starts, src.data.shape[0] - 1), axis=0)
    out_data[counts == 0] = 0.0

    def backward(grad: np.ndarray) -> None:
        src._accumulate(np.repeat(grad, counts, axis=0))

    return Tensor.make(out_data, (src,), backward)


def segment_mean(src, indptr) -> Tensor:
    """Mean-reduce contiguous row segments (empty segments get 0)."""
    src = _t(src)
    indptr = np.asarray(indptr, dtype=np.int64)
    counts = np.diff(indptr).astype(np.float64)
    divisor = np.maximum(counts, 1.0).reshape((len(counts),) + (1,) * (src.data.ndim - 1))
    return div(segment_sum(src, indptr), Tensor(divisor))


def circular_correlation(a, b) -> Tensor:
    """Circular correlation ``c[..., k] = sum_i a[..., i] * b[..., (i+k) % d]``.

    Computed as ``irfft(conj(rfft(a)) * rfft(b))`` — O(d log d) versus
    the O(d^2) roll-and-sum formulation, matching it to ~1e-13 at
    float64.  This is CompGCN's ``corr`` composition (and HolE's score).
    Gradients are themselves correlations/convolutions:
    ``dL/da = corr(g, b)`` and ``dL/db = conv(g, a)``, both via FFT.
    """
    a, b = _t(a), _t(b)
    d = a.data.shape[-1]
    if b.data.shape[-1] != d:
        raise ValueError(f"last-axis mismatch: {d} vs {b.data.shape[-1]}")
    fa = np.fft.rfft(a.data, axis=-1)
    fb = np.fft.rfft(b.data, axis=-1)
    out_data = np.fft.irfft(np.conj(fa) * fb, n=d, axis=-1)

    def backward(grad: np.ndarray) -> None:
        fg = np.fft.rfft(grad, axis=-1)
        ga = np.fft.irfft(np.conj(fg) * np.fft.rfft(b.data, axis=-1), n=d, axis=-1)
        gb = np.fft.irfft(fg * np.fft.rfft(a.data, axis=-1), n=d, axis=-1)
        a._accumulate(unbroadcast(ga, a.data.shape))
        b._accumulate(unbroadcast(gb, b.data.shape))

    return Tensor.make(out_data, (a, b), backward)
