"""Standard neural-network layers built on the autograd core.

Every layer the paper's architecture needs: dense projections,
embedding tables (for entities / relations), 2-D convolution (the
ConvE-style scoring head in Eqn. 15), layer and batch normalisation,
dropout, and a ``Sequential`` container.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, ModuleList
from .tensor import Parameter, Tensor

__all__ = [
    "Linear",
    "Embedding",
    "Conv2d",
    "LayerNorm",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "Sequential",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
]


class Linear(Module):
    """Affine map ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator used for Xavier-normal weight initialisation.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_normal((out_features, in_features), gen))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = F.matmul(x, F.transpose(self.weight))
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense rows."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.xavier_normal((num_embeddings, embedding_dim), gen))

    def forward(self, ids) -> Tensor:
        return F.embedding(self.weight, ids)


class Conv2d(Module):
    """2-D convolution (cross-correlation), NCHW layout.

    Holds a small per-input-shape im2col column-buffer cache that
    :func:`repro.nn.functional.conv2d` reuses while autograd is off, so
    all-entity inference (ranking evaluation) stops reallocating the
    unfold buffer on every batch.  Training is unaffected: with grad
    enabled the buffer is never shared because the backward closure owns
    its columns.
    """

    #: Distinct input shapes cached before the cache resets; inference
    #: sees at most a handful (full batch + remainder batch).
    _COL_CACHE_LIMIT = 8

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.xavier_normal(shape, gen))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self._col_cache: dict[tuple[int, ...], np.ndarray] = {}

    def forward(self, x: Tensor) -> Tensor:
        if len(self._col_cache) > self._COL_CACHE_LIMIT:
            self._col_cache.clear()
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, col_cache=self._col_cache)


class LayerNorm(Module):
    """Layer normalisation over the last axis with learnable affine."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, axis=-1, eps=self.eps)


class _BatchNorm(Module):
    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over ``(N, C)`` inputs."""

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self.gamma, self.beta, self.running_mean,
                            self.running_var, self.training,
                            momentum=self.momentum, eps=self.eps)


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over ``(N, C, H, W)`` inputs (per channel)."""

    def forward(self, x: Tensor) -> Tensor:
        # Move channels last, normalise, move back.
        moved = F.transpose(x, (0, 2, 3, 1))
        normed = F.batch_norm(moved, self.gamma, self.beta, self.running_mean,
                              self.running_var, self.training,
                              momentum=self.momentum, eps=self.eps)
        return F.transpose(normed, (0, 3, 1, 2))


class Dropout(Module):
    """Inverted dropout; inert in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, rng=self._rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Flatten(Module):
    """Flatten all but the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return F.reshape(x, (x.shape[0], -1))


class Sequential(Module):
    """Chain modules, feeding each output into the next layer."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
