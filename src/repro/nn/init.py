"""Weight initialisation schemes.

The paper initialises all learnable parameters with Xavier normalisation
(Glorot & Bengio, 2010); we also provide uniform variants used by
individual baselines (e.g. TransE's uniform init in the original code).
All functions take an explicit ``numpy.random.Generator`` so experiment
runs are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "xavier_normal",
    "xavier_uniform",
    "kaiming_normal",
    "uniform",
    "normal",
    "zeros",
    "ones",
]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return (fan_in, fan_out) for a weight of the given shape."""
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: ``std = gain * sqrt(2 / (fan_in + fan_out))``."""
    fan_in, fan_out = _fans(tuple(shape))
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: ``bound = gain * sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = _fans(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal (for ReLU networks): ``std = sqrt(2 / fan_in)``."""
    fan_in, _ = _fans(tuple(shape))
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Zero-mean Gaussian with the given standard deviation."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
