"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of :mod:`repro.nn`, the small deep-learning
framework that stands in for PyTorch in this reproduction.  A
:class:`Tensor` wraps a ``numpy.ndarray`` together with an optional
gradient buffer and a closure describing how to propagate gradients to its
parents.  Calling :meth:`Tensor.backward` on a scalar result runs a
topological sweep over the recorded computation graph, exactly like
``torch.Tensor.backward``.

The design follows the classic "define-by-run" tape:

* every differentiable operation builds a child tensor whose
  ``_backward`` closure knows how to turn the child's gradient into
  parent gradients;
* broadcasting is handled uniformly by :func:`unbroadcast`, which sums a
  gradient back down to the shape of the tensor that produced it;
* non-differentiable bookkeeping (shapes, dtype checks) lives here, while
  the actual operator zoo lives in :mod:`repro.nn.functional`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "unbroadcast", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


class no_grad:
    """Context manager that disables graph recording, like ``torch.no_grad``.

    Inside the context, operations still compute values but never attach
    backward closures, which makes pure-inference code paths (evaluation,
    ranking over every candidate entity) dramatically cheaper.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, *exc_info) -> None:
        _GRAD_ENABLED[0] = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED[0]


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has exactly ``shape``.

    Numpy broadcasting can expand an operand along leading axes and along
    axes of size one.  The gradient of a broadcast is the sum over the
    broadcast axes, which this helper performs.

    Parameters
    ----------
    grad:
        Gradient with the shape of the broadcast *result*.
    shape:
        Shape of the original operand the gradient belongs to.
    """
    if grad.shape == shape:
        return grad
    # Sum out the extra leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape but expanded.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float64) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype and np.issubdtype(value.dtype, np.floating):
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy array with reverse-mode autograd support.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of floats.
    requires_grad:
        When true, gradients flowing into this tensor are accumulated in
        :attr:`grad` during :meth:`backward`.
    parents:
        The input tensors of the operation that created this tensor.
        Leaf tensors have no parents.
    backward_fn:
        Closure invoked with this tensor's gradient; it must route
        gradient contributions into each parent via ``parent._accumulate``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._parents: tuple[Tensor, ...] = tuple(parents) if self.requires_grad else ()
        self._backward_fn = backward_fn if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op result tensor; grad tracking follows its parents."""
        needs = is_grad_enabled() and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=needs, parents=parents if needs else (), backward_fn=backward_fn if needs else None)

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1.0`` which requires this tensor
            to be a scalar (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient argument requires a scalar tensor")
            grad = np.ones_like(self.data)

        order: list[Tensor] = []
        seen: set[int] = set()
        # Iterative post-order DFS: recursion would overflow on deep graphs
        # such as unrolled training loops.
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)
                # Intermediate results never have their gradient read back;
                # freeing it eagerly keeps peak memory proportional to the
                # number of leaves rather than the graph size.
                if node._parents and not isinstance(node, Parameter) and node is not self:
                    node.grad = None

    # ------------------------------------------------------------------
    # Operator sugar (implemented in repro.nn.functional)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from . import functional as F

        return F.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from . import functional as F

        return F.sub(self, other)

    def __rsub__(self, other):
        from . import functional as F

        return F.sub(other, self)

    def __mul__(self, other):
        from . import functional as F

        return F.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import functional as F

        return F.div(self, other)

    def __rtruediv__(self, other):
        from . import functional as F

        return F.div(other, self)

    def __neg__(self):
        from . import functional as F

        return F.neg(self)

    def __pow__(self, exponent: float):
        from . import functional as F

        return F.pow(self, exponent)

    def __matmul__(self, other):
        from . import functional as F

        return F.matmul(self, other)

    def __getitem__(self, index):
        from . import functional as F

        return F.index(self, index)

    # Convenience wrappers -------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        from . import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from . import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from . import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)

    def transpose(self, *axes):
        from . import functional as F

        return F.transpose(self, axes or None)

    @property
    def T(self):
        return self.transpose()

    def flatten(self):
        from . import functional as F

        return F.reshape(self, (-1,))


class Parameter(Tensor):
    """A trainable :class:`Tensor`; always requires grad.

    Modules discover their parameters by type, mirroring
    ``torch.nn.Parameter``.
    """

    __slots__ = ()

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)
        # Parameters must track gradients even when created under no_grad.
        self.requires_grad = True


def _tensor_list(values: Iterable) -> list[Tensor]:
    return [v if isinstance(v, Tensor) else Tensor(v) for v in values]
