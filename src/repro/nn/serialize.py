"""Checkpoint save/load for modules (``.npz`` based) and flat views.

Besides the ``.npz`` round-trip, this module provides the ordered
flat-vector view of a state dict (:class:`FlatSpec`,
:func:`flatten_state_dict`, :func:`unflatten_state_dict`) that
``repro.dist`` uses to mirror model replicas through
``multiprocessing.shared_memory`` buffers — and that is handy on its own
for checkpoint diffing (``np.abs(flat_a - flat_b)``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from .module import Module

__all__ = [
    "save_module",
    "load_module",
    "FlatSpec",
    "flatten_state_dict",
    "unflatten_state_dict",
]


def save_module(module: Module, path: str) -> None:
    """Serialise a module's parameters and buffers to ``path`` (npz).

    The file is written atomically (tmp file + rename) so a crash mid-save
    never corrupts an existing checkpoint.
    """
    state = module.state_dict()
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        np.savez(handle, **state)
    os.replace(tmp, path)


@dataclass(frozen=True)
class FlatSpec:
    """Layout of a state dict inside one flat ``float64`` vector.

    ``names`` preserves the state dict's own ordering; entry ``i``
    occupies ``flat[offsets[i]:offsets[i] + sizes[i]]`` reshaped to
    ``shapes[i]`` and cast back to ``dtypes[i]``.  Two modules of the
    same architecture produce identical specs, which is what lets
    ``repro.dist`` exchange raw vectors between process replicas.
    """

    names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]
    dtypes: tuple[np.dtype, ...]
    offsets: tuple[int, ...]
    sizes: tuple[int, ...]
    total_size: int

    @classmethod
    def from_state_dict(cls, state: dict[str, np.ndarray]) -> "FlatSpec":
        names, shapes, dtypes, offsets, sizes = [], [], [], [], []
        offset = 0
        for name, array in state.items():
            array = np.asarray(array)
            names.append(name)
            shapes.append(tuple(array.shape))
            dtypes.append(array.dtype)
            offsets.append(offset)
            sizes.append(int(array.size))
            offset += int(array.size)
        return cls(names=tuple(names), shapes=tuple(shapes),
                   dtypes=tuple(dtypes), offsets=tuple(offsets),
                   sizes=tuple(sizes), total_size=offset)

    def slot(self, name: str) -> slice:
        """The flat-vector slice holding ``name``."""
        i = self.names.index(name)
        return slice(self.offsets[i], self.offsets[i] + self.sizes[i])


def flatten_state_dict(
    state: dict[str, np.ndarray],
    spec: FlatSpec | None = None,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, FlatSpec]:
    """Pack a state dict into one ordered flat ``float64`` vector.

    Without ``spec`` the layout is derived from ``state`` itself; with a
    ``spec`` the arrays are validated against it (names in order, exact
    shapes), so replicas cannot silently diverge in layout.  ``out``
    writes into an existing vector — e.g. a shared-memory view — instead
    of allocating; it must have ``spec.total_size`` elements.
    """
    if spec is None:
        spec = FlatSpec.from_state_dict(state)
    elif tuple(state.keys()) != spec.names:
        raise ValueError(
            f"state dict keys {list(state)} do not match spec names "
            f"{list(spec.names)}")
    if out is None:
        out = np.empty(spec.total_size, dtype=np.float64)
    elif out.shape != (spec.total_size,):
        raise ValueError(
            f"out must be a ({spec.total_size},) vector, got {out.shape}")
    for name, shape, offset, size in zip(spec.names, spec.shapes,
                                         spec.offsets, spec.sizes):
        array = np.asarray(state[name])
        if array.shape != shape:
            raise ValueError(
                f"shape mismatch for {name!r}: spec {shape}, got {array.shape}")
        out[offset:offset + size] = array.reshape(-1)
    return out, spec


def unflatten_state_dict(flat: np.ndarray, spec: FlatSpec) -> dict[str, np.ndarray]:
    """Rebuild a state dict from a flat vector (inverse of flattening).

    Entries are cast back to their recorded dtypes, so integer buffers
    (e.g. batch-norm step counts) survive the ``float64`` detour.
    """
    flat = np.asarray(flat).reshape(-1)
    if flat.shape != (spec.total_size,):
        raise ValueError(
            f"flat vector must have {spec.total_size} elements, got {flat.shape}")
    state: dict[str, np.ndarray] = {}
    for name, shape, dtype, offset, size in zip(spec.names, spec.shapes,
                                                spec.dtypes, spec.offsets,
                                                spec.sizes):
        state[name] = flat[offset:offset + size].reshape(shape).astype(dtype)
    return state


def load_module(module: Module, path: str, strict: bool = True) -> Module:
    """Load a checkpoint produced by :func:`save_module` into ``module``.

    A checkpoint whose keys do not match the module raises a ``KeyError``
    naming the file and listing every missing and unexpected entry.  With
    ``strict=False`` the intersection of keys is loaded and mismatches are
    tolerated (useful for loading a bundle into a near-compatible
    architecture); shape mismatches always raise.
    """
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    try:
        module.load_state_dict(state, strict=strict)
    except KeyError as exc:
        raise KeyError(f"checkpoint {path!r} does not match module: {exc.args[0]}") from None
    return module
