"""Checkpoint save/load for modules (``.npz`` based)."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str) -> None:
    """Serialise a module's parameters and buffers to ``path`` (npz).

    The file is written atomically (tmp file + rename) so a crash mid-save
    never corrupts an existing checkpoint.
    """
    state = module.state_dict()
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        np.savez(handle, **state)
    os.replace(tmp, path)


def load_module(module: Module, path: str, strict: bool = True) -> Module:
    """Load a checkpoint produced by :func:`save_module` into ``module``.

    A checkpoint whose keys do not match the module raises a ``KeyError``
    naming the file and listing every missing and unexpected entry.  With
    ``strict=False`` the intersection of keys is loaded and mismatches are
    tolerated (useful for loading a bundle into a near-compatible
    architecture); shape mismatches always raise.
    """
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    try:
        module.load_state_dict(state, strict=strict)
    except KeyError as exc:
        raise KeyError(f"checkpoint {path!r} does not match module: {exc.args[0]}") from None
    return module
