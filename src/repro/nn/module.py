"""Module base class: parameter registration, modes, and state dicts.

Mirrors the parts of ``torch.nn.Module`` used by the reproduction:
recursive parameter discovery, ``train()``/``eval()`` mode switching
(needed by dropout and batch-norm), and flat ``state_dict`` round-trips
for checkpointing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from .tensor import Parameter, no_grad

__all__ = ["Module", "ModuleList", "inference_mode"]


@contextmanager
def inference_mode(model):
    """Run ``model`` with autograd off and eval-mode layers.

    Every ``predict_tails``-style inference path must score under
    ``no_grad()`` with dropout and batch-norm switched to eval mode;
    this context manager is the single place that pattern lives so
    implementations cannot drift.  The previous training/eval mode is
    restored on exit, even on error.  Objects that are not
    :class:`Module` (no mode switching) still get the ``no_grad`` part.
    """
    training = getattr(model, "training", False)
    if hasattr(model, "eval"):
        model.eval()
    try:
        with no_grad():
            yield
    finally:
        if hasattr(model, "train"):
            model.train(training)


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Parameter`, :class:`Module`, or
    :class:`ModuleList` instances as attributes; this class walks the
    attribute tree to enumerate parameters and serialise state.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every parameter in this module and its submodules."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()

    def buffers(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield named non-trainable arrays (e.g. batch-norm statistics)."""
        for name, value in self._named_buffers(""):
            yield name, value

    def _named_buffers(self, prefix: str) -> Iterator[tuple[str, np.ndarray]]:
        buffer_names = getattr(self, "_buffer_names", ())
        for key in buffer_names:
            yield f"{prefix}{key}", getattr(self, key)
        for key, value in vars(self).items():
            if isinstance(value, Module):
                yield from value._named_buffers(f"{prefix}{key}.")

    def register_buffer(self, name: str, array: np.ndarray) -> None:
        """Attach a persistent non-trainable array to this module."""
        names = list(getattr(self, "_buffer_names", ()))
        if name not in names:
            names.append(name)
        self._buffer_names = tuple(names)
        setattr(self, name, array)

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Switch this module (and children) to training mode."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode (disables dropout, freezes BN stats)."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(np.sum([p.data.size for p in self.parameters()], dtype=np.int64))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat name -> array mapping of parameters and buffers."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buf in self.buffers():
            state[f"buffer::{name}"] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray],
                        strict: bool = True) -> tuple[list[str], list[str]]:
        """Load arrays produced by :meth:`state_dict`.

        With ``strict=True`` (default) a single ``KeyError`` is raised
        that lists *all* missing and unexpected entries at once, so a
        mismatched checkpoint is diagnosable in one shot.  With
        ``strict=False`` the intersection of keys is loaded and the
        ``(missing, unexpected)`` name lists are returned instead of
        raising.  Shape mismatches are always an error.
        """
        params = dict(self.named_parameters())
        buffers = dict(self.buffers())
        expected = set(params) | {f"buffer::{name}" for name in buffers}
        unexpected = sorted(set(state) - expected)
        missing = sorted(expected - set(state))
        if strict and (missing or unexpected):
            raise KeyError(
                "state dict does not match module: "
                f"missing keys {missing}; unexpected keys {unexpected}"
            )
        for name, array in state.items():
            if name in unexpected:
                continue
            if name.startswith("buffer::"):
                key = name[len("buffer::"):]
                target = buffers[key]
                if np.shape(target) != np.shape(array):
                    raise ValueError(
                        f"shape mismatch for buffer {key!r}: model "
                        f"{np.shape(target)}, state {np.shape(array)}"
                    )
                target[...] = array
                continue
            if params[name].data.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: model {params[name].data.shape}, "
                    f"state {array.shape}"
                )
            params[name].data[...] = array
        return missing, unexpected

    # ------------------------------------------------------------------
    # Callable protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of submodules that participates in parameter discovery."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = list(modules)

    def append(self, module: Module) -> None:
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, i: int) -> Module:
        return self._items[i]

    def named_parameters(self, prefix: str = ""):
        for i, module in enumerate(self._items):
            yield from module.named_parameters(prefix=f"{prefix}{i}.")

    def modules(self):
        yield self
        for module in self._items:
            yield from module.modules()

    def _named_buffers(self, prefix: str):
        for i, module in enumerate(self._items):
            yield from module._named_buffers(f"{prefix}{i}.")

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise RuntimeError("ModuleList is a container and cannot be called")
