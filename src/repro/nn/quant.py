"""Quantized embedding-table kernels (int8 / float16) with dequant-on-gather.

Entity embedding tables dominate serve-path memory: a DRKG-scale table
(97k entities x 400 dims, float64) is ~300 MB before the model even
scores a query.  :class:`QuantizedTable` stores such a table in a
compressed dtype and reconstructs float64 rows only for the ids a query
actually touches:

* ``int8`` — symmetric per-dimension scaling: ``scale[d] =
  max(|w[:, d]|) / 127`` and ``codes = round(w / scale)``, so the table
  shrinks 8x vs float64 (plus one float64 scale per dimension) with a
  worst-case per-cell error of ``scale[d] / 2``;
* ``float16`` — IEEE half precision, 4x smaller, ~3 decimal digits;
* ``float32`` / ``float64`` — passthrough dtypes for completeness, so
  callers can select precision with one string.

The kernels below are the numpy analogue of a fused dequantize+gather /
dequantize+GEMM: ``gather`` upcasts only the requested rows, and ``dot``
folds the int8 scale into the *query* side (``(q * scale) @ codes.T``)
so the big code matrix is never materialised in float64.  The IVF index
(:mod:`repro.ann.ivf`) stores its per-list vectors through this class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizedTable", "quantize_table", "QUANT_MODES"]

#: Supported storage modes, in decreasing compression order.
QUANT_MODES = ("int8", "float16", "float32", "float64")


@dataclass
class QuantizedTable:
    """An ``(N, d)`` float table stored in a compressed dtype.

    ``codes`` holds the stored representation; ``scale`` is the
    per-dimension dequantization factor (``None`` for float modes).
    """

    codes: np.ndarray
    scale: np.ndarray | None
    mode: str

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def quantize(cls, weight: np.ndarray, mode: str = "int8") -> "QuantizedTable":
        """Compress ``weight`` (any float dtype) into ``mode`` storage."""
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(f"expected a 2-D table, got shape {weight.shape}")
        if mode == "int8":
            peak = np.abs(weight).max(axis=0)
            # All-zero dimensions quantize to zero codes; scale 1 avoids
            # divide-by-zero without changing any reconstructed value.
            scale = np.where(peak > 0, peak / 127.0, 1.0)
            codes = np.clip(np.rint(weight / scale), -127, 127).astype(np.int8)
            return cls(codes=codes, scale=scale, mode=mode)
        if mode in ("float16", "float32"):
            return cls(codes=weight.astype(mode), scale=None, mode=mode)
        if mode == "float64":
            return cls(codes=weight, scale=None, mode=mode)
        raise ValueError(f"unknown quantization mode {mode!r}; "
                         f"choose from {QUANT_MODES}")

    # ------------------------------------------------------------------
    # Shape / memory introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.codes.shape

    @property
    def nbytes(self) -> int:
        """Total storage bytes (codes + scales)."""
        return int(self.codes.nbytes + (self.scale.nbytes if self.scale is not None else 0))

    def compression_vs_float64(self) -> float:
        """``stored bytes / float64 bytes`` for the same table."""
        full = self.codes.shape[0] * self.codes.shape[1] * 8
        return self.nbytes / full if full else 1.0

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Dequantized float64 rows for ``ids`` (dequant-on-gather).

        Only the gathered rows are upcast, so memory traffic stays
        proportional to the result, not the table.
        """
        rows = self.codes[np.asarray(ids, dtype=np.int64)]
        if self.mode == "int8":
            return rows.astype(np.float64) * self.scale
        return rows.astype(np.float64, copy=False)

    def dequantize(self) -> np.ndarray:
        """The full float64 table (tests / debugging; O(table) memory)."""
        return self.gather(np.arange(self.codes.shape[0]))

    def dot(self, queries: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Inner products ``queries @ table[ids].T`` without dequantizing.

        For int8 storage the per-dimension scale is folded into the
        query side first — ``(q * scale) @ codes.T`` — so the code
        matrix participates in the GEMM in its compact dtype's natural
        float32 upcast instead of a materialised float64 copy.
        """
        queries = np.asarray(queries, dtype=np.float64)
        codes = self.codes if ids is None else self.codes[np.asarray(ids, np.int64)]
        if self.mode == "int8":
            return (queries * self.scale) @ codes.astype(np.float32).T
        return queries @ codes.astype(np.float64, copy=False).T

    # ------------------------------------------------------------------
    # Serialization (bundle embedding)
    # ------------------------------------------------------------------
    def to_arrays(self, prefix: str = "") -> dict[str, np.ndarray]:
        out = {f"{prefix}codes": self.codes}
        if self.scale is not None:
            out[f"{prefix}scale"] = self.scale
        return out

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray], mode: str,
                    prefix: str = "") -> "QuantizedTable":
        return cls(codes=np.asarray(arrays[f"{prefix}codes"]),
                   scale=(np.asarray(arrays[f"{prefix}scale"])
                          if f"{prefix}scale" in arrays else None),
                   mode=mode)


def quantize_table(weight: np.ndarray, mode: str = "int8") -> QuantizedTable:
    """Functional alias for :meth:`QuantizedTable.quantize`."""
    return QuantizedTable.quantize(weight, mode)
