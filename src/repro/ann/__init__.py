"""``repro.ann`` — approximate nearest-neighbor candidate generation.

Sublinear top-k serving needs two ingredients this package provides in
pure numpy (no new dependencies):

* :func:`kmeans` (:mod:`repro.ann.kmeans`) — the seeded, deterministic
  coarse quantizer;
* :class:`IVFIndex` (:mod:`repro.ann.ivf`) — inverted lists over an
  entity embedding table with contiguous per-list storage, quantized
  stored vectors (:class:`repro.nn.quant.QuantizedTable`), and
  ``nprobe``-controlled probing.

The serving layer (:mod:`repro.serve.ann`) couples an index to a model:
probed candidates are re-scored through the model's *exact* scoring
function, so approximation only ever costs recall, never score
fidelity.
"""

from .ivf import METRICS, IVFIndex, default_nlist, default_nprobe
from .kmeans import kmeans

__all__ = ["IVFIndex", "METRICS", "default_nlist", "default_nprobe", "kmeans"]
