"""IVF (inverted-file) approximate nearest-neighbor index, pure numpy.

The classic two-level ANN structure the FAISS/DRKG serving ecosystem
deploys, reduced to its numpy essentials:

* a **coarse quantizer** — k-means centroids over the entity vectors
  (:func:`repro.ann.kmeans.kmeans`, seeded and deterministic);
* **inverted lists** — entity ids grouped by nearest centroid and laid
  out contiguously (``ids`` permutation + ``offsets``), so probing a
  list is one slice, not a gather;
* a **stored vector table** — the permuted entity vectors held in a
  :class:`repro.nn.quant.QuantizedTable` (int8 / float16 / float32 /
  float64), dequantized only for the rows a probe touches.

Search ranks centroids under the index metric, probes the ``nprobe``
best lists, scores their stored vectors, and returns the top-k with the
serving tie-break (score descending, entity id ascending).  Recall is
controlled entirely by ``nprobe``: ``nprobe == nlist`` probes every
list and is exhaustive over the *stored* (possibly quantized) vectors.

Serving does not rank on stored-vector scores directly — the
:class:`repro.serve.ann.AnnServing` wrapper treats ``probe`` as a
candidate generator and re-scores candidates through the model's real
scoring function, so quantization error can cost recall but never a
wrong score.

Metrics (scores are "higher is better" throughout):

* ``"l2"`` — ``-||q - x||^2`` (squared Euclidean);
* ``"l1"`` — ``-||q - x||_1`` (Manhattan; TransE's native ranking);
* ``"ip"`` — ``q . x`` (inner product; DistMult / ComplEx ranking).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..graph import build_csr
from ..nn.quant import QUANT_MODES, QuantizedTable
from .kmeans import kmeans

__all__ = ["IVFIndex", "METRICS", "default_nlist", "default_nprobe"]

METRICS = ("l2", "l1", "ip")


def default_nlist(num_vectors: int) -> int:
    """The usual IVF heuristic: ``~sqrt(N)`` lists."""
    return max(1, int(round(math.sqrt(max(1, num_vectors)))))


def default_nprobe(nlist: int) -> int:
    """Probe a quarter of the lists by default — a recall-leaning
    setting that still skips ~75% of the table at scale."""
    return max(1, math.ceil(nlist / 4))


def _metric_scores(metric: str, queries: np.ndarray,
                   vectors: np.ndarray) -> np.ndarray:
    """``(Q, M)`` scores of every query against every vector row."""
    if metric == "ip":
        return queries @ vectors.T
    diff = queries[:, None, :] - vectors[None, :, :]
    if metric == "l2":
        return -(diff * diff).sum(axis=-1)
    return -np.abs(diff).sum(axis=-1)


@dataclass
class IVFIndex:
    """Coarse quantizer + contiguous inverted lists + stored vectors."""

    metric: str
    centroids: np.ndarray        # (nlist, d) float64
    ids: np.ndarray              # (N,) int64 — entity ids, list-contiguous
    offsets: np.ndarray          # (nlist + 1,) int64 row offsets into ids
    table: QuantizedTable        # (N, d) stored vectors, aligned with ids
    default_nprobe: int
    seed: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, vectors: np.ndarray, *, metric: str,
              nlist: int | None = None, store: str = "int8",
              nprobe: int | None = None, seed: int = 0,
              iters: int = 20) -> "IVFIndex":
        """Train the coarse quantizer and lay out the inverted lists.

        ``vectors[i]`` is the indexed vector of entity ``i``; ``store``
        selects the stored-table dtype (see :data:`QUANT_MODES`).
        """
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")
        if store not in QUANT_MODES:
            raise ValueError(f"unknown store dtype {store!r}; "
                             f"choose from {QUANT_MODES}")
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or len(vectors) == 0:
            raise ValueError(f"expected a non-empty (N, d) table, "
                             f"got shape {vectors.shape}")
        n = len(vectors)
        nlist = min(n, int(nlist) if nlist else default_nlist(n))
        centroids, assign = kmeans(vectors, nlist, seed=seed, iters=iters)
        nlist = len(centroids)
        # The inverted-list layout is a CSR build: rows = centroid
        # assignments, payload = entity ids (the stable permutation).
        offsets, order = build_csr(assign, nlist)
        table = QuantizedTable.quantize(vectors[order], store)
        nprobe = int(nprobe) if nprobe else default_nprobe(nlist)
        return cls(metric=metric, centroids=centroids, ids=order,
                   offsets=offsets, table=table,
                   default_nprobe=min(nprobe, nlist), seed=int(seed))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nlist(self) -> int:
        return len(self.centroids)

    @property
    def num_vectors(self) -> int:
        return len(self.ids)

    @property
    def dim(self) -> int:
        return int(self.centroids.shape[1])

    @property
    def store(self) -> str:
        return self.table.mode

    def list_sizes(self) -> np.ndarray:
        return np.diff(self.offsets)

    def memory(self) -> dict[str, Any]:
        """Byte accounting, including the ratio vs a float64 table."""
        structure = int(self.centroids.nbytes + self.ids.nbytes
                        + self.offsets.nbytes)
        full = self.num_vectors * self.dim * 8
        return {
            "store": self.store,
            "table_bytes": self.table.nbytes,
            "structure_bytes": structure,
            "total_bytes": self.table.nbytes + structure,
            "float64_table_bytes": full,
            "table_ratio_vs_float64": (self.table.nbytes / full) if full else 1.0,
        }

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _probe_positions(self, queries: np.ndarray,
                         nprobe: int) -> list[np.ndarray]:
        """Positions (rows of ``table`` / ``ids``) probed per query."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        cscores = _metric_scores(self.metric, queries, self.centroids)
        nprobe = max(1, min(int(nprobe), self.nlist))
        if nprobe < self.nlist:
            lists = np.argpartition(-cscores, nprobe - 1, axis=1)[:, :nprobe]
        else:
            lists = np.tile(np.arange(self.nlist), (len(queries), 1))
        out: list[np.ndarray] = []
        for row in lists:
            # Sorted list order keeps each probe's slices cache-friendly
            # and the concatenated positions deterministic.
            row = np.sort(row)
            out.append(np.concatenate(
                [np.arange(self.offsets[c], self.offsets[c + 1]) for c in row]))
        return out

    def probe(self, queries: np.ndarray,
              nprobe: int | None = None) -> list[np.ndarray]:
        """Candidate **entity ids** from the ``nprobe`` best lists.

        This is the serving entry point: the caller re-scores the
        returned candidates exactly, so only membership matters here.
        """
        nprobe = self.default_nprobe if nprobe is None else nprobe
        return [self.ids[pos] for pos in self._probe_positions(queries, nprobe)]

    def search(self, queries: np.ndarray, k: int,
               nprobe: int | None = None) -> list[tuple[np.ndarray, np.ndarray]]:
        """Top-``k`` per query under the index metric on *stored* vectors.

        Returns one ``(entity_ids, scores)`` pair per query, ordered by
        score descending with ties broken by ascending entity id — the
        same contract as :func:`repro.serve.engine.topk_indices`.  Used
        directly by tests and benchmarks; serving reranks through the
        model instead.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        nprobe = self.default_nprobe if nprobe is None else nprobe
        results = []
        for query, pos in zip(queries, self._probe_positions(queries, nprobe)):
            cand_ids = self.ids[pos]
            vecs = self.table.gather(pos)
            scores = _metric_scores(self.metric, query[None], vecs)[0]
            kk = min(k, len(cand_ids))
            if kk <= 0:
                results.append((np.empty(0, np.int64), np.empty(0)))
                continue
            part = np.argpartition(-scores, kk - 1)[:kk]
            order = np.lexsort((cand_ids[part], -scores[part]))
            sel = part[order]
            results.append((cand_ids[sel].astype(np.int64), scores[sel]))
        return results

    # ------------------------------------------------------------------
    # Serialization (bundle artifact)
    # ------------------------------------------------------------------
    def to_arrays(self) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        """``(meta, arrays)`` — JSON-safe metadata + numpy payload."""
        meta = {
            "metric": self.metric,
            "store": self.store,
            "nlist": self.nlist,
            "dim": self.dim,
            "num_vectors": self.num_vectors,
            "default_nprobe": int(self.default_nprobe),
            "seed": int(self.seed),
        }
        arrays = {"centroids": self.centroids, "ids": self.ids,
                  "offsets": self.offsets}
        arrays.update(self.table.to_arrays(prefix="table_"))
        return meta, arrays

    @classmethod
    def from_arrays(cls, meta: dict[str, Any],
                    arrays: dict[str, np.ndarray]) -> "IVFIndex":
        for key in ("centroids", "ids", "offsets", "table_codes"):
            if key not in arrays:
                raise KeyError(f"IVF payload is missing array {key!r}")
        table = QuantizedTable.from_arrays(arrays, meta["store"], prefix="table_")
        return cls(metric=meta["metric"],
                   centroids=np.asarray(arrays["centroids"], np.float64),
                   ids=np.asarray(arrays["ids"], np.int64),
                   offsets=np.asarray(arrays["offsets"], np.int64),
                   table=table,
                   default_nprobe=int(meta.get("default_nprobe") or
                                      default_nprobe(len(arrays["centroids"]))),
                   seed=int(meta.get("seed", 0)))
