"""Seeded k-means coarse quantizer (pure numpy, deterministic).

The IVF index needs one thing from clustering: a stable partition of the
entity embedding table into ``nlist`` cells whose centroids can be
ranked cheaply at query time.  Lloyd iterations with k-means++ seeding
are plenty — the partition only gates *recall*, never correctness,
because every probed candidate is re-scored exactly afterwards.

Determinism contract: identical ``(vectors, k, seed, iters)`` produce
identical centroids and assignments on every platform numpy supports,
so a bundle's precomputed index can be regenerated bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans"]


def _squared_distances(x: np.ndarray, centroids: np.ndarray,
                       block: int = 65536) -> np.ndarray:
    """``(N, K)`` squared L2 distances, blocked over rows to bound memory."""
    n = len(x)
    c_norm = (centroids * centroids).sum(axis=1)
    out = np.empty((n, len(centroids)))
    for start in range(0, n, block):
        stop = min(n, start + block)
        xb = x[start:stop]
        out[start:stop] = ((xb * xb).sum(axis=1)[:, None]
                           - 2.0 * (xb @ centroids.T) + c_norm)
    # Rounding can push tiny true-zero distances negative; clamp so
    # argmin ties resolve on magnitude, not sign noise.
    np.maximum(out, 0.0, out=out)
    return out


def _plusplus_init(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = len(x)
    chosen = np.empty(k, dtype=np.int64)
    chosen[0] = rng.integers(n)
    closest = _squared_distances(x, x[chosen[:1]])[:, 0]
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:  # all remaining points coincide with a centroid
            chosen[i] = rng.integers(n)
        else:
            chosen[i] = rng.choice(n, p=closest / total)
        new_d = _squared_distances(x, x[chosen[i:i + 1]])[:, 0]
        np.minimum(closest, new_d, out=closest)
    return x[chosen].copy()


def kmeans(x: np.ndarray, k: int, *, iters: int = 20,
           seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``x`` (``(N, d)`` float) into ``k`` cells.

    Returns ``(centroids, assign)`` with ``centroids`` of shape
    ``(k, d)`` (float64) and ``assign`` of shape ``(N,)`` (int64 cell
    per row).  ``k`` is clamped to ``N``.  Empty cells are repaired each
    iteration by re-seeding them on the point currently farthest from
    its centroid, so every returned cell is non-empty whenever
    ``k <= N``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (N, d) vectors, got shape {x.shape}")
    n = len(x)
    if n == 0:
        raise ValueError("cannot cluster an empty vector set")
    k = int(min(max(1, k), n))
    rng = np.random.default_rng(seed)
    centroids = _plusplus_init(x, k, rng)
    assign = np.zeros(n, dtype=np.int64)
    for _ in range(max(1, iters)):
        dists = _squared_distances(x, centroids)
        assign = dists.argmin(axis=1).astype(np.int64)
        closest = dists[np.arange(n), assign]
        counts = np.bincount(assign, minlength=k)
        for empty in np.flatnonzero(counts == 0):
            victim = int(closest.argmax())
            assign[victim] = empty
            closest[victim] = 0.0
            counts = np.bincount(assign, minlength=k)
        # Mean update via per-cell scatter-add (vectorized over dims).
        sums = np.zeros((k, x.shape[1]))
        np.add.at(sums, assign, x)
        counts = np.bincount(assign, minlength=k)
        centroids = sums / counts[:, None]
    return centroids, assign
