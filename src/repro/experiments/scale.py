"""Scale presets for experiments.

The paper runs on an RTX 3090 with d=500 embeddings and 500 epochs over
millions of triples; this reproduction runs every experiment on one CPU
core.  A :class:`Scale` bundles all the knobs that shrink consistently:
dataset size, feature dims, model dims, training budgets, and
evaluation sample sizes.

* ``SMOKE`` — seconds; used by the test suite.
* ``SMALL`` — minutes per experiment; the default for benchmarks and
  the numbers recorded in EXPERIMENTS.md.
* ``PAPER`` — the paper's actual parameters, documented for reference;
  not runnable in this environment.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Scale", "SMOKE", "SMALL", "PAPER", "get_scale"]


@dataclass(frozen=True)
class Scale:
    """Consistent experiment sizing."""

    name: str
    dataset_scale: float      # multiplier on dataset entity/triple counts
    feature_dim: int          # d_m = d_t = d_s of the pre-trained features
    model_dim: int            # entity/relation embedding dim
    epochs_1ton: int          # ConvE-regime training epochs
    epochs_came: int          # CamE epochs (converges slower, Fig. 8)
    epochs_neg: int           # negative-sampling-regime epochs
    eval_every: int           # validation cadence during training
    eval_max_queries: int     # validation subset size
    test_max_queries: int     # test subset size for reported metrics
    pretrain_epochs: int      # GIN / CompGCN self-supervised epochs


SMOKE = Scale(
    name="smoke", dataset_scale=0.15, feature_dim=8, model_dim=16,
    epochs_1ton=2, epochs_came=2, epochs_neg=2, eval_every=2,
    eval_max_queries=30, test_max_queries=40, pretrain_epochs=1,
)

SMALL = Scale(
    name="small", dataset_scale=0.5, feature_dim=24, model_dim=48,
    epochs_1ton=40, epochs_came=60, epochs_neg=40, eval_every=10,
    eval_max_queries=100, test_max_queries=300, pretrain_epochs=4,
)

#: The paper's settings (Section V-B); for documentation only.
PAPER = Scale(
    name="paper", dataset_scale=1.0, feature_dim=300, model_dim=500,
    epochs_1ton=500, epochs_came=500, epochs_neg=500, eval_every=10,
    eval_max_queries=10_000, test_max_queries=1_174_852, pretrain_epochs=100,
)

_PRESETS = {s.name: s for s in (SMOKE, SMALL, PAPER)}


def get_scale(name: str) -> Scale:
    """Look up a preset by name."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; known: {sorted(_PRESETS)}") from None
