"""Shared experiment runner with in-process caching.

Several tables/figures need the same trained models (Table III provides
the trained CamE that Table IV, Fig. 7 and Fig. 8 reuse), so runs are
cached by ``(dataset, scale, model, seed)``.  Everything is
deterministic given the seed.
"""

from __future__ import annotations

import logging
import os
import re
from dataclasses import dataclass

import numpy as np

from ..baselines import build_model
from ..core import TrainReport
from ..datasets import ModalityFeatures, MultimodalKG, build_features, get_dataset
from ..eval import RankingMetrics, evaluate_ranking
from .scale import Scale

__all__ = ["RunResult", "get_prepared", "train_model", "clear_run_cache",
           "set_export_dir"]

logger = logging.getLogger("repro.experiments.runner")

_FEATURE_CACHE: dict[tuple, tuple[MultimodalKG, ModalityFeatures]] = {}
_RUN_CACHE: dict[tuple, "RunResult"] = {}

#: When set (``set_export_dir`` / ``--export-bundle``), every trained run
#: also writes a servable checkpoint bundle under this directory.
_EXPORT_DIR: str | None = None


def set_export_dir(path: str | None) -> None:
    """Make every subsequent :func:`train_model` emit a serve bundle.

    ``None`` disables exporting.  Bundles land in
    ``<path>/<dataset>_<model>_<scale>_seed<seed>`` and can be loaded
    with ``repro.serve`` (``query`` / ``serve`` subcommands).
    """
    global _EXPORT_DIR
    _EXPORT_DIR = path


@dataclass
class RunResult:
    """A trained model plus its training trace and test metrics."""

    model_name: str
    dataset: str
    model: object
    report: TrainReport
    test_metrics: RankingMetrics


def get_prepared(dataset: str, scale: Scale, seed: int = 0) -> tuple[MultimodalKG, ModalityFeatures]:
    """Dataset + pre-trained modality features (cached)."""
    key = (dataset, scale.name, seed)
    if key not in _FEATURE_CACHE:
        mkg = get_dataset(dataset, scale=scale.dataset_scale, seed=seed)
        rng = np.random.default_rng(1000 + seed)
        feats = build_features(
            mkg, rng, d_m=scale.feature_dim, d_t=scale.feature_dim,
            d_s=scale.feature_dim, gin_epochs=scale.pretrain_epochs,
            compgcn_epochs=scale.pretrain_epochs,
        )
        _FEATURE_CACHE[key] = (mkg, feats)
    return _FEATURE_CACHE[key]


def _epochs_for(model_name: str, scale: Scale) -> int:
    from ..baselines import MODEL_REGISTRY

    if model_name == "CamE":
        return scale.epochs_came
    spec = MODEL_REGISTRY[model_name]
    return scale.epochs_1ton if spec.regime == "1toN" else scale.epochs_neg


def _bundle_path(model_name: str, dataset: str, scale: Scale, seed: int) -> str:
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-",
                  f"{dataset}_{model_name}_{scale.name}_seed{seed}")
    return os.path.join(_EXPORT_DIR, slug)


def train_model(model_name: str, dataset: str, scale: Scale, seed: int = 0,
                epochs: int | None = None, negatives_1ton: int | None = None,
                eval_batch_size: int = 128,
                export_bundle: str | None = None) -> RunResult:
    """Train ``model_name`` on ``dataset`` and evaluate on test (cached).

    ``eval_batch_size`` is threaded through to the trainer's epoch evals
    and the final test pass (the Fig. 9 scalability knob).  The final
    test eval reuses the trainer's ranking evaluator, so the filter is
    built exactly once for the whole run.

    ``export_bundle`` writes a ``repro.serve`` checkpoint bundle of the
    trained model to the given path; independently, a process-wide
    export directory set via :func:`set_export_dir` makes *every* run
    (cached or fresh) emit one, so any experiment doubles as a bundle
    factory.
    """
    key = (model_name, dataset, scale.name, seed, epochs, negatives_1ton,
           eval_batch_size)
    if key in _RUN_CACHE:
        result = _RUN_CACHE[key]
        _maybe_export(result, scale, seed, export_bundle)
        return result
    mkg, feats = get_prepared(dataset, scale, seed)
    rng = np.random.default_rng(2000 + seed)
    model, trainer = build_model(model_name, mkg, feats, rng,
                                 dim=scale.model_dim,
                                 negatives_1ton=negatives_1ton)
    budget = epochs if epochs is not None else _epochs_for(model_name, scale)
    report = trainer.fit(budget, eval_every=scale.eval_every,
                         eval_max_queries=scale.eval_max_queries,
                         eval_batch_size=eval_batch_size)
    metrics = evaluate_ranking(model, mkg.split, part="test",
                               max_queries=scale.test_max_queries,
                               rng=np.random.default_rng(3000 + seed),
                               batch_size=eval_batch_size,
                               evaluator=trainer.evaluator)
    result = RunResult(model_name=model_name, dataset=dataset, model=model,
                       report=report, test_metrics=metrics)
    _RUN_CACHE[key] = result
    _maybe_export(result, scale, seed, export_bundle)
    return result


def _maybe_export(result: RunResult, scale: Scale, seed: int,
                  export_bundle: str | None) -> None:
    """Write serve bundles for a finished run (explicit path and/or dir)."""
    paths = []
    if export_bundle:
        paths.append(export_bundle)
    if _EXPORT_DIR:
        paths.append(_bundle_path(result.model_name, result.dataset, scale, seed))
    if not paths:
        return
    from ..serve import save_bundle  # local import: serve sits above the runner

    mkg, feats = get_prepared(result.dataset, scale, seed)
    for path in paths:
        save_bundle(path, result.model, result.model_name, mkg.split, feats,
                    dim=scale.model_dim,
                    extra={"scale": scale.name, "seed": seed,
                           "test_metrics": result.test_metrics.as_row()})
        logger.info("exported bundle %s (%s on %s)", path,
                    result.model_name, result.dataset)


def clear_run_cache() -> None:
    """Drop all cached runs and features (frees memory in long sessions)."""
    _FEATURE_CACHE.clear()
    _RUN_CACHE.clear()
