"""Shared experiment runner with in-process caching.

Several tables/figures need the same trained models (Table III provides
the trained CamE that Table IV, Fig. 7 and Fig. 8 reuse), so runs are
cached by ``(dataset, scale, model, seed, ...)``.  Everything is
deterministic given the seed.

All runner state — the feature/run caches plus the export/telemetry
directories — lives in a :class:`RunnerContext`.  Module-level helpers
(:func:`set_export_dir`, :func:`set_telemetry_dir`,
:func:`clear_run_cache`) operate on the shared default context so
existing call sites keep working; tests and long-lived services can pass
their own context to isolate state.
"""

from __future__ import annotations

import logging
import os
import re
from dataclasses import dataclass, field

import numpy as np

from ..baselines import build_model
from ..datasets import ModalityFeatures, MultimodalKG, build_features, get_dataset
from ..eval import RankingMetrics, evaluate_ranking
from ..obs import enable_tracing, trace
from ..train import BundleExport, Callback, EarlyStopping, JsonlTelemetry, TrainReport
from .scale import Scale

__all__ = ["RunResult", "RunnerContext", "get_prepared", "train_model",
           "clear_run_cache", "set_export_dir", "set_telemetry_dir",
           "set_trace_dir", "set_workers"]

logger = logging.getLogger("repro.experiments.runner")


@dataclass
class RunnerContext:
    """Everything the runner keeps between :func:`train_model` calls.

    Replaces the former module globals: the prepared-dataset and
    trained-run caches, the bundle ``export_dir`` (every run also writes
    a servable checkpoint bundle when set) and the ``telemetry_dir``
    (every *fresh* run writes a JSONL telemetry file when set — cache
    hits trained nothing, so they emit nothing).
    """

    feature_cache: dict[tuple, tuple[MultimodalKG, ModalityFeatures]] = \
        field(default_factory=dict)
    run_cache: dict[tuple, "RunResult"] = field(default_factory=dict)
    export_dir: str | None = None
    telemetry_dir: str | None = None
    #: Worker processes per training run (``repro.dist``); 1 trains
    #: in-process, bit-identically to the seed engine.
    workers: int = 1

    def clear(self) -> None:
        """Drop all cached runs and features (frees memory in long sessions)."""
        self.feature_cache.clear()
        self.run_cache.clear()


#: Shared context behind the module-level helper functions.
DEFAULT_CONTEXT = RunnerContext()


def set_export_dir(path: str | None) -> None:
    """Make every subsequent :func:`train_model` emit a serve bundle.

    ``None`` disables exporting.  Bundles land in
    ``<path>/<dataset>_<model>_<scale>_seed<seed>`` and can be loaded
    with ``repro.serve`` (``query`` / ``serve`` subcommands).
    """
    DEFAULT_CONTEXT.export_dir = path


def set_telemetry_dir(path: str | None) -> None:
    """Make every subsequent fresh :func:`train_model` write run telemetry.

    ``None`` disables it.  Each run writes
    ``<path>/<dataset>_<model>_<scale>_seed<seed>.jsonl`` with one JSON
    event per epoch/eval (see :class:`repro.train.JsonlTelemetry`).
    """
    DEFAULT_CONTEXT.telemetry_dir = path


def set_workers(workers: int) -> None:
    """Train every subsequent :func:`train_model` on ``workers`` processes.

    Values above 1 wrap each trainer in
    :class:`repro.dist.DistributedEngine` (data-parallel gradient
    averaging over forked workers) and run evaluation through its
    sharded evaluator; ``1`` restores the in-process engine.  This is
    the ``--workers N`` flag of ``python -m repro.experiments``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    DEFAULT_CONTEXT.workers = workers


def set_trace_dir(path: str | None) -> None:
    """Write ``repro.obs`` spans for everything the process runs next.

    Enables process-global tracing into ``<path>/trace.jsonl`` (training
    epochs, objective forward/backward, evaluator batches, ...);
    ``None`` turns tracing back off.  Summarize afterwards with
    ``python -m repro.obs report <path>/trace.jsonl``.
    """
    from ..obs import disable_tracing

    if path is None:
        disable_tracing()
        return
    os.makedirs(path, exist_ok=True)
    enable_tracing(os.path.join(path, "trace.jsonl"))


@dataclass
class RunResult:
    """A trained model plus its training trace and test metrics."""

    model_name: str
    dataset: str
    model: object
    report: TrainReport
    test_metrics: RankingMetrics


def get_prepared(dataset: str, scale: Scale, seed: int = 0,
                 context: RunnerContext | None = None) -> tuple[MultimodalKG, ModalityFeatures]:
    """Dataset + pre-trained modality features (cached)."""
    ctx = context if context is not None else DEFAULT_CONTEXT
    key = (dataset, scale.name, seed)
    if key not in ctx.feature_cache:
        mkg = get_dataset(dataset, scale=scale.dataset_scale, seed=seed)
        rng = np.random.default_rng(1000 + seed)
        feats = build_features(
            mkg, rng, d_m=scale.feature_dim, d_t=scale.feature_dim,
            d_s=scale.feature_dim, gin_epochs=scale.pretrain_epochs,
            compgcn_epochs=scale.pretrain_epochs,
        )
        ctx.feature_cache[key] = (mkg, feats)
    return ctx.feature_cache[key]


def _epochs_for(model_name: str, scale: Scale) -> int:
    from ..baselines import MODEL_REGISTRY

    if model_name == "CamE":
        return scale.epochs_came
    spec = MODEL_REGISTRY[model_name]
    return scale.epochs_1ton if spec.regime == "1toN" else scale.epochs_neg


def _run_slug(model_name: str, dataset: str, scale: Scale, seed: int) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-",
                  f"{dataset}_{model_name}_{scale.name}_seed{seed}")


def train_model(model_name: str, dataset: str, scale: Scale, seed: int = 0,
                epochs: int | None = None, negatives_1ton: int | None = None,
                eval_batch_size: int = 128,
                export_bundle: str | None = None,
                early_stopping: int | None = None,
                callbacks: tuple[Callback, ...] | list[Callback] = (),
                workers: int | None = None,
                context: RunnerContext | None = None) -> RunResult:
    """Train ``model_name`` on ``dataset`` and evaluate on test (cached).

    ``eval_batch_size`` is threaded through to the trainer's epoch evals
    and the final test pass (the Fig. 9 scalability knob).  The final
    test eval reuses the trainer's ranking evaluator, so the filter is
    built exactly once for the whole run.

    ``early_stopping`` (an eval-patience count) attaches an
    :class:`repro.train.EarlyStopping` callback; ``callbacks`` appends
    arbitrary extra hooks (runs carrying custom callbacks are not
    cached, since the cache key cannot capture them).  When the
    context's ``telemetry_dir`` is set, each fresh run writes a JSONL
    telemetry file there.

    ``export_bundle`` writes a ``repro.serve`` checkpoint bundle of the
    trained model to the given path; independently, the context's
    ``export_dir`` (:func:`set_export_dir` / ``--export-bundle``) makes
    *every* run (cached or fresh) emit one, so any experiment doubles as
    a bundle factory.  Exported bundles embed the training report.

    ``workers`` (default: the context's ``workers``, i.e. ``--workers``)
    trains on that many ``repro.dist`` worker processes and shards the
    epoch/test evals across them; it is part of the cache key because a
    multi-worker negative-sampling run draws different corruption
    streams than the single-process one.
    """
    ctx = context if context is not None else DEFAULT_CONTEXT
    workers = workers if workers is not None else ctx.workers
    key = (model_name, dataset, scale.name, seed, epochs, negatives_1ton,
           eval_batch_size, early_stopping, workers)
    cacheable = not callbacks
    if cacheable and key in ctx.run_cache:
        result = ctx.run_cache[key]
        _maybe_export(result, scale, seed, export_bundle, ctx)
        return result
    mkg, feats = get_prepared(dataset, scale, seed, context=ctx)
    rng = np.random.default_rng(2000 + seed)
    model, trainer = build_model(model_name, mkg, feats, rng,
                                 dim=scale.model_dim,
                                 negatives_1ton=negatives_1ton)
    if workers > 1:
        from ..dist import DistributedEngine

        trainer = DistributedEngine.from_engine(trainer, world_size=workers)
    budget = epochs if epochs is not None else _epochs_for(model_name, scale)
    run_callbacks: list[Callback] = list(callbacks)
    if early_stopping:
        run_callbacks.append(EarlyStopping(patience=early_stopping))
    if ctx.telemetry_dir:
        slug = _run_slug(model_name, dataset, scale, seed)
        run_callbacks.append(JsonlTelemetry(
            os.path.join(ctx.telemetry_dir, f"{slug}.jsonl"), run_id=slug))
    with trace("runner.train_model", model=model_name, dataset=dataset,
               scale=scale.name, seed=seed):
        report = trainer.fit(budget, eval_every=scale.eval_every,
                             eval_max_queries=scale.eval_max_queries,
                             eval_batch_size=eval_batch_size,
                             callbacks=run_callbacks)
    metrics = evaluate_ranking(model, mkg.split, part="test",
                               max_queries=scale.test_max_queries,
                               rng=np.random.default_rng(3000 + seed),
                               batch_size=eval_batch_size,
                               evaluator=trainer.evaluator)
    result = RunResult(model_name=model_name, dataset=dataset, model=model,
                       report=report, test_metrics=metrics)
    if cacheable:
        ctx.run_cache[key] = result
    _maybe_export(result, scale, seed, export_bundle, ctx)
    return result


def _maybe_export(result: RunResult, scale: Scale, seed: int,
                  export_bundle: str | None, ctx: RunnerContext) -> None:
    """Write serve bundles for a finished run (explicit path and/or dir)."""
    paths = []
    if export_bundle:
        paths.append(export_bundle)
    if ctx.export_dir:
        paths.append(os.path.join(
            ctx.export_dir,
            _run_slug(result.model_name, result.dataset, scale, seed)))
    if not paths:
        return
    mkg, feats = get_prepared(result.dataset, scale, seed, context=ctx)
    for path in paths:
        exporter = BundleExport(
            path, result.model_name, mkg.split, feats, dim=scale.model_dim,
            extra={"scale": scale.name, "seed": seed,
                   "test_metrics": result.test_metrics.as_row()})
        exporter.export(result.model, report=result.report)
        logger.info("exported bundle %s (%s on %s)", path,
                    result.model_name, result.dataset)


def clear_run_cache() -> None:
    """Drop the default context's cached runs and features."""
    DEFAULT_CONTEXT.clear()
