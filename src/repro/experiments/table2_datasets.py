"""Table II — dataset statistics (#Ent, #Rel, #Train/#Valid/#Test)."""

from __future__ import annotations

from .reporting import format_table
from .runner import get_prepared
from .scale import Scale

__all__ = ["run_table2", "render_table2"]

#: The paper's reported numbers, for EXPERIMENTS.md comparison.
PAPER_TABLE2 = {
    "drkg-mm": {"#Ent": 97_238, "#Rel": 107, "#Train": 4_699_408,
                "#Valid": 587_424, "#Test": 587_426},
    "omaha-mm": {"#Ent": 74_061, "#Rel": 17, "#Train": 406_773,
                 "#Valid": 50_846, "#Test": 50_846},
}


def run_table2(scale: Scale, seed: int = 0) -> dict[str, dict[str, int]]:
    """Statistics of both synthetic datasets at ``scale``."""
    stats = {}
    for dataset in ("drkg-mm", "omaha-mm"):
        mkg, _ = get_prepared(dataset, scale, seed)
        stats[dataset] = mkg.split.summary()
    return stats


def render_table2(stats: dict[str, dict[str, int]]) -> str:
    """Paper-style Table II rows plus the split-ratio check."""
    headers = ["Dataset", "#Ent", "#Rel", "#Train", "#Valid", "#Test", "split"]
    rows = []
    for dataset, row in stats.items():
        total = row["#Train"] + row["#Valid"] + row["#Test"]
        ratio = "/".join(f"{row[k] / total:.2f}" for k in ("#Train", "#Valid", "#Test"))
        rows.append([dataset, row["#Ent"], row["#Rel"], row["#Train"],
                     row["#Valid"], row["#Test"], ratio])
    return format_table(headers, rows, title="Table II: dataset statistics (synthetic, scaled)")
