"""Fig. 1 — the diamond experiment.

The paper's motivating measurement: take "diamonds"
``<e0, e1, e2, e3>`` where ``e0, e1, e2`` are drugs, ``e3`` is a gene,
``e0`` is connected to both ``e1`` and ``e2``, and ``e1 -r1-> e3``,
``e2 -r2-> e3``.  A diamond is *Same* when ``r1 == r2``.  Sampling
diamonds 50/50 Same/Not-Same, then re-sampling only pairs ``(e1, e2)``
whose *molecular embeddings* are highly similar (top-100 inner product)
shifts the Same rate from 50% to ~67% — proof the molecular modality
carries relation signal.  The protocol repeats the top-100 selection
100 times with different random seeds and averages (Section V-H1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .runner import get_prepared
from .scale import Scale

__all__ = ["DiamondResult", "mine_diamonds", "run_fig1", "render_fig1"]

#: Paper-reported accuracy after similarity filtering.
PAPER_FIG1_ACCURACY = 66.98


@dataclass
class DiamondResult:
    """Outcome of the diamond experiment."""

    baseline_same_rate: float       # balanced sample, by construction ~50
    filtered_same_rate: float       # after molecule-similarity filtering
    repeats: int
    num_diamonds: int

    @property
    def lift(self) -> float:
        return self.filtered_same_rate - self.baseline_same_rate


def mine_diamonds(mkg, max_diamonds: int = 20000,
                  rng: np.random.Generator | None = None) -> list[tuple[int, int, int, int, bool]]:
    """Enumerate diamonds ``(e0, e1, e2, e3, same)`` from the KG.

    ``e1``/``e2`` are drugs connected to gene ``e3`` by relations
    ``r1``/``r2``; ``e0`` is a drug adjacent to both ``e1`` and ``e2``.
    """
    graph = mkg.graph
    types = np.asarray(graph.entity_types)
    gen = rng if rng is not None else np.random.default_rng(0)

    # Classify all triples at once with entity-type masks instead of two
    # string lookups per triple; the surviving rows keep their original
    # order, so dict/set insertion order (which `next(iter(shared))`
    # below observes) is identical to the per-triple loop.
    triples = np.asarray(graph.triples, dtype=np.int64).reshape(-1, 3)
    head_is_drug = types[triples[:, 0]] == "Compound"
    tail_type = types[triples[:, 2]]
    drug_drug = triples[head_is_drug & (tail_type == "Compound")]
    drug_gene = triples[head_is_drug & (tail_type == "Gene")]

    # drug -> drugs adjacent through compound-compound edges.
    drug_neighbors: dict[int, set[int]] = defaultdict(set)
    # gene -> list of (drug, relation).
    gene_links: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for h, t in drug_drug[:, [0, 2]].tolist():
        drug_neighbors[h].add(t)
        drug_neighbors[t].add(h)
    for h, r, t in drug_gene.tolist():
        gene_links[t].append((h, r))

    diamonds: list[tuple[int, int, int, int, bool]] = []
    genes = list(gene_links)
    gen.shuffle(genes)
    for gene in genes:
        links = gene_links[gene]
        if len(links) < 2:
            continue
        for i in range(len(links)):
            for j in range(i + 1, len(links)):
                (e1, r1), (e2, r2) = links[i], links[j]
                if e1 == e2:
                    continue
                shared = drug_neighbors[e1] & drug_neighbors[e2] - {e1, e2}
                if not shared:
                    continue
                e0 = next(iter(shared))
                diamonds.append((e0, e1, e2, gene, r1 == r2))
                if len(diamonds) >= max_diamonds:
                    return diamonds
    return diamonds


def run_fig1(scale: Scale, seed: int = 0, repeats: int = 100,
             top_k: int = 100, balanced_per_class: int = 5000) -> DiamondResult:
    """Run the full Fig. 1 protocol on synthetic DRKG-MM."""
    mkg, feats = get_prepared("drkg-mm", scale, seed)
    rng = np.random.default_rng(400 + seed)
    diamonds = mine_diamonds(mkg, rng=rng)
    same = [d for d in diamonds if d[4]]
    diff = [d for d in diamonds if not d[4]]
    per_class = min(balanced_per_class, len(same), len(diff))
    if per_class == 0:
        raise RuntimeError("no diamonds mined; increase dataset scale")
    balanced = ([same[i] for i in rng.choice(len(same), per_class, replace=False)]
                + [diff[i] for i in rng.choice(len(diff), per_class, replace=False)])

    # Molecule-embedding similarity of each diamond's (e1, e2) pair —
    # the inner product of pre-trained GIN features, as in the paper.
    mol = feats.molecular
    pairs = np.array([(e1, e2) for _, e1, e2, _, _ in balanced], dtype=np.int64)
    sims = np.einsum("ij,ij->i", mol[pairs[:, 0]], mol[pairs[:, 1]])
    labels = np.array([is_same for *_, is_same in balanced])

    k = min(top_k, len(balanced))
    accuracies = []
    for rep in range(repeats):
        rep_rng = np.random.default_rng(10_000 + seed * 100 + rep)
        subset = rep_rng.choice(len(balanced), size=min(len(balanced), 10 * k),
                                replace=False)
        top = subset[np.argsort(-sims[subset])[:k]]
        accuracies.append(float(labels[top].mean() * 100.0))
    return DiamondResult(
        baseline_same_rate=float(labels.mean() * 100.0),
        filtered_same_rate=float(np.mean(accuracies)),
        repeats=repeats,
        num_diamonds=len(balanced),
    )


def render_fig1(result: DiamondResult) -> str:
    return (
        "Fig. 1: diamond experiment (molecular similarity vs relation agreement)\n"
        f"  balanced sample Same-rate : {result.baseline_same_rate:6.2f}%  (construction: ~50%)\n"
        f"  top-similar Same-rate     : {result.filtered_same_rate:6.2f}%  (paper: {PAPER_FIG1_ACCURACY}%)\n"
        f"  lift                      : {result.lift:+6.2f} points over {result.repeats} repeats "
        f"({result.num_diamonds} diamonds)"
    )
