"""Fig. 6 — ablation study (RQ3).

Retrains CamE with each component removed:

* ``w/o EX``      — no information exchanging in MMF;
* ``w/o TCA``     — no triple co-attention anywhere;
* ``w/o MMF``     — fusion replaced by simple multiplication;
* ``w/o RIC``     — no multimodal entity-relation interaction;
* ``w/o M and R`` — both modules removed (plain stacking);
* ``w/o TD``      — textual descriptions zeroed;
* ``w/o MS``      — molecular structures zeroed.

Expected shape (paper): every removal hurts; removing both modules is
worst; molecule matters more than text on DRKG-MM.
"""

from __future__ import annotations

import numpy as np

from ..core import CamE, CamEConfig
from ..eval import RankingMetrics, evaluate_ranking
from ..train import OneToNObjective, TrainingEngine
from .reporting import format_table
from .runner import get_prepared
from .scale import Scale

__all__ = ["ABLATIONS", "run_fig6", "render_fig6"]

ABLATIONS = ("full", "w/o EX", "w/o TCA", "w/o MMF", "w/o RIC",
             "w/o M and R", "w/o TD", "w/o MS")


def run_fig6(scale: Scale, dataset: str = "drkg-mm", seed: int = 0,
             ablations: tuple[str, ...] = ABLATIONS) -> dict[str, RankingMetrics]:
    """Train each ablation variant and report test metrics."""
    mkg, feats = get_prepared(dataset, scale, seed)
    results: dict[str, RankingMetrics] = {}
    base = CamEConfig(entity_dim=scale.model_dim, relation_dim=scale.model_dim)
    for name in ablations:
        cfg = CamEConfig.ablation(name, base)
        rng = np.random.default_rng(800 + seed)
        model = CamE(mkg.num_entities, mkg.num_relations, feats, cfg, rng=rng)
        engine = TrainingEngine(model, mkg.split, rng,
                                OneToNObjective(batch_size=128),
                                lr=cfg.learning_rate)
        engine.fit(scale.epochs_came, eval_every=scale.eval_every,
                   eval_max_queries=scale.eval_max_queries)
        results[name] = evaluate_ranking(
            model, mkg.split, part="test", max_queries=scale.test_max_queries,
            rng=np.random.default_rng(900 + seed),
        )
    return results


def render_fig6(results: dict[str, RankingMetrics], dataset: str = "drkg-mm") -> str:
    headers = ["Variant", "MRR", "Hits@1", "Hits@10", "delta MRR vs full"]
    full_mrr = results.get("full").mrr if "full" in results else float("nan")
    rows = []
    for name, metrics in results.items():
        delta = metrics.mrr - full_mrr
        rows.append([name, f"{metrics.mrr:.1f}", f"{metrics.hits[1]:.1f}",
                     f"{metrics.hits[10]:.1f}", f"{delta:+.1f}"])
    return format_table(headers, rows, title=f"Fig. 6 ({dataset}): ablation study")
