"""Fig. 4 — long-tail entity/relation frequency histograms.

The paper shows that both BKGs are heavily long-tailed: most entities
participate in few triples while a handful are hubs.  We report the
degree histogram, the relation-frequency histogram, and tail-heaviness
summary statistics (Gini coefficient and the share of entities in the
bottom-degree bins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .reporting import format_histogram
from .runner import get_prepared
from .scale import Scale

__all__ = ["LongTailStats", "run_fig4", "render_fig4"]


@dataclass
class LongTailStats:
    """Degree/frequency distribution summary of one dataset."""

    dataset: str
    degree_counts: np.ndarray
    degree_edges: np.ndarray
    relation_counts: np.ndarray
    relation_edges: np.ndarray
    gini: float
    low_degree_share: float   # fraction of entities with degree <= 5
    top1pct_share: float      # triple share captured by top-1% entities


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.sum() == 0:
        return 0.0
    n = len(v)
    index = np.arange(1, n + 1)
    return float((2 * index - n - 1) @ v / (n * v.sum()))


def run_fig4(scale: Scale, seed: int = 0, bins: int = 12) -> dict[str, LongTailStats]:
    """Compute long-tail statistics for both datasets."""
    out: dict[str, LongTailStats] = {}
    for dataset in ("drkg-mm", "omaha-mm"):
        mkg, _ = get_prepared(dataset, scale, seed)
        graph = mkg.graph
        degrees = graph.entity_degrees()
        rel_freq = graph.relation_frequencies()
        deg_counts, deg_edges = np.histogram(degrees, bins=bins)
        rel_counts, rel_edges = np.histogram(rel_freq, bins=min(bins, graph.num_relations))
        sorted_deg = np.sort(degrees)[::-1]
        top = max(1, len(degrees) // 100)
        out[dataset] = LongTailStats(
            dataset=dataset,
            degree_counts=deg_counts,
            degree_edges=deg_edges,
            relation_counts=rel_counts,
            relation_edges=rel_edges,
            gini=_gini(degrees),
            low_degree_share=float((degrees <= 5).mean()),
            top1pct_share=float(sorted_deg[:top].sum() / max(degrees.sum(), 1)),
        )
    return out


def render_fig4(stats: dict[str, LongTailStats]) -> str:
    blocks = []
    for dataset, s in stats.items():
        blocks.append(format_histogram(
            s.degree_counts.tolist(), s.degree_edges.tolist(),
            title=f"Fig. 4 ({dataset}): entity degree histogram",
        ))
        blocks.append(format_histogram(
            s.relation_counts.tolist(), s.relation_edges.tolist(),
            title=f"Fig. 4 ({dataset}): relation frequency histogram",
        ))
        blocks.append(
            f"  gini={s.gini:.3f}  P(degree<=5)={s.low_degree_share:.2f}"
            f"  top-1% entities hold {s.top1pct_share * 100:.1f}% of triple slots"
        )
    return "\n".join(blocks)
