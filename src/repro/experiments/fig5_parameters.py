"""Fig. 5 — parameter evaluation (RQ2).

Sweeps the three CamE-specific hyperparameters:

(a) number of TCA heads ``m`` (paper peaks at 2 on DRKG-MM, 3 on
    OMAHA-MM; too many heads overfit);
(b) exchanging factor ``theta`` (paper best: -0.5 / -2.0);
(c) temperature interval ``lambda`` with ``m = 2`` (paper best: 5).

Each sweep point retrains CamE at a reduced budget and reports test MRR.
"""

from __future__ import annotations

import numpy as np

from ..core import CamE, CamEConfig
from ..eval import evaluate_ranking
from ..train import OneToNObjective, TrainingEngine
from .reporting import format_series
from .runner import get_prepared
from .scale import Scale

__all__ = ["run_fig5", "render_fig5", "SWEEPS"]

SWEEPS = {
    "heads": (1, 2, 3, 4),
    "theta": (-2.0, -1.0, -0.5, 0.0, 0.5),
    "interval": (1.0, 5.0, 10.0, 20.0),
}


def _train_mrr(mkg, feats, cfg: CamEConfig, scale: Scale, seed: int) -> float:
    rng = np.random.default_rng(600 + seed)
    model = CamE(mkg.num_entities, mkg.num_relations, feats, cfg, rng=rng)
    engine = TrainingEngine(model, mkg.split, rng,
                            OneToNObjective(batch_size=128),
                            lr=cfg.learning_rate)
    # Reduced budget: the sweep needs relative ordering, not convergence.
    engine.fit(max(scale.epochs_came // 2, 1))
    metrics = evaluate_ranking(model, mkg.split, part="test",
                               max_queries=scale.test_max_queries // 2,
                               rng=np.random.default_rng(700 + seed))
    return metrics.mrr


def run_fig5(scale: Scale, dataset: str = "drkg-mm", seed: int = 0,
             sweeps: dict[str, tuple] | None = None) -> dict[str, list[tuple[float, float]]]:
    """Run all three sweeps; returns ``{sweep: [(value, MRR), ...]}``."""
    mkg, feats = get_prepared(dataset, scale, seed)
    plan = sweeps or SWEEPS
    base = CamEConfig(entity_dim=scale.model_dim, relation_dim=scale.model_dim)
    out: dict[str, list[tuple[float, float]]] = {}
    if "heads" in plan:
        out["heads"] = [
            (m, _train_mrr(mkg, feats, base.variant(num_heads=int(m)), scale, seed))
            for m in plan["heads"]
        ]
    if "theta" in plan:
        out["theta"] = [
            (th, _train_mrr(mkg, feats, base.variant(exchange_theta=float(th)), scale, seed))
            for th in plan["theta"]
        ]
    if "interval" in plan:
        out["interval"] = [
            (lam, _train_mrr(mkg, feats,
                             base.variant(num_heads=2, interval=float(lam)), scale, seed))
            for lam in plan["interval"]
        ]
    return out


def render_fig5(results: dict[str, list[tuple[float, float]]], dataset: str = "drkg-mm") -> str:
    return format_series(
        results, x_label="value", y_label="test MRR",
        title=f"Fig. 5 ({dataset}): parameter evaluation "
              "(a) #heads m  (b) exchanging factor theta  (c) interval lambda",
    )
