"""Hyperparameter grid search on the validation set (Section V-B).

The paper selects hyperparameters by grid search on valid Hits@10.  This
utility reproduces that protocol for CamE: it trains one model per grid
point at a reduced budget, scores each on the validation split, and
returns the ranked results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..core import CamE, CamEConfig
from ..eval import RankingMetrics, evaluate_ranking
from ..train import OneToNObjective, TrainingEngine
from .runner import get_prepared
from .scale import Scale

__all__ = ["GridPoint", "grid_search_came"]


@dataclass
class GridPoint:
    """One evaluated grid cell."""

    settings: dict
    valid_metrics: RankingMetrics

    @property
    def key(self) -> float:
        """Selection criterion: valid Hits@10 (the paper's choice)."""
        return self.valid_metrics.hits.get(10, self.valid_metrics.mrr)


def grid_search_came(
    scale: Scale,
    grid: dict[str, tuple],
    dataset: str = "drkg-mm",
    seed: int = 0,
    epochs: int | None = None,
) -> list[GridPoint]:
    """Evaluate every combination in ``grid``; best first.

    Parameters
    ----------
    grid:
        Mapping of :class:`~repro.core.CamEConfig` field names to the
        values to sweep, e.g. ``{"num_heads": (1, 2, 3),
        "exchange_theta": (-2.0, -0.5)}``.
    epochs:
        Per-point training budget; defaults to half the scale's CamE
        budget (relative ordering stabilises early).
    """
    mkg, feats = get_prepared(dataset, scale, seed)
    budget = epochs if epochs is not None else max(scale.epochs_came // 2, 1)
    base = CamEConfig(entity_dim=scale.model_dim, relation_dim=scale.model_dim)

    keys = sorted(grid)
    points: list[GridPoint] = []
    for combo in itertools.product(*(grid[k] for k in keys)):
        settings = dict(zip(keys, combo))
        cfg = base.variant(**settings)
        rng = np.random.default_rng(1234 + seed)
        model = CamE(mkg.num_entities, mkg.num_relations, feats, cfg, rng=rng)
        engine = TrainingEngine(model, mkg.split, rng,
                                OneToNObjective(batch_size=128),
                                lr=cfg.learning_rate)
        engine.fit(budget)
        metrics = evaluate_ranking(model, mkg.split, part="valid",
                                   max_queries=scale.eval_max_queries,
                                   rng=np.random.default_rng(4321 + seed))
        points.append(GridPoint(settings=settings, valid_metrics=metrics))
    points.sort(key=lambda p: p.key, reverse=True)
    return points
