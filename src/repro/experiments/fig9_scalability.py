"""Fig. 9 — scalability: per-epoch train/test time vs KG size (RQ7).

Measures the wall-clock cost of one training epoch and one test pass at
growing fractions of the training triples, for CamE and the module
ablations.  The paper's findings to reproduce:

* training time scales ~linearly with KG size;
* testing time also scales ~linearly but with a steeper slope (ranking
  against all entities);
* variants without TCA (w/o TCA, w/o M and R) are the cheapest — the
  TCA operator dominates training cost;
* different modules have similar *testing* time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core import CamE, CamEConfig
from ..eval import evaluate_ranking
from ..train import OneToNObjective, TrainingEngine
from .reporting import format_series
from .runner import get_prepared
from .scale import Scale

__all__ = ["ScalabilityPoint", "run_fig9", "render_fig9"]

FIG9_VARIANTS = ("full", "w/o TCA", "w/o MMF", "w/o M and R", "w/o TD", "w/o MS")
FRACTIONS = (0.25, 0.5, 0.75, 1.0)


@dataclass
class ScalabilityPoint:
    """Timing at one (variant, fraction) grid cell."""

    variant: str
    fraction: float
    train_seconds: float
    test_seconds: float


def run_fig9(scale: Scale, dataset: str = "drkg-mm", seed: int = 0,
             variants: tuple[str, ...] = FIG9_VARIANTS,
             fractions: tuple[float, ...] = FRACTIONS,
             eval_batch_size: int = 128) -> list[ScalabilityPoint]:
    """Time one epoch + one test pass per (variant, fraction).

    ``eval_batch_size`` tunes the ranking batch so the scalability sweep
    can trade peak memory against throughput.
    """
    mkg, feats = get_prepared(dataset, scale, seed)
    base = CamEConfig(entity_dim=scale.model_dim, relation_dim=scale.model_dim)
    rng_master = np.random.default_rng(950 + seed)
    points: list[ScalabilityPoint] = []
    for variant in variants:
        cfg = CamEConfig.ablation(variant, base)
        for fraction in fractions:
            keep = max(1, int(len(mkg.split.train) * fraction))
            sub_split = type(mkg.split)(
                graph=mkg.graph,
                train=mkg.split.train[:keep],
                valid=mkg.split.valid,
                test=mkg.split.test,
            )
            rng = np.random.default_rng(rng_master.integers(1 << 31))
            model = CamE(mkg.num_entities, mkg.num_relations, feats, cfg, rng=rng)
            engine = TrainingEngine(model, sub_split, rng,
                                    OneToNObjective(batch_size=128),
                                    lr=cfg.learning_rate)
            tick = time.perf_counter()
            engine.train_epoch()
            train_seconds = time.perf_counter() - tick
            n_test = max(1, int(scale.test_max_queries * fraction / 2))
            tick = time.perf_counter()
            evaluate_ranking(model, sub_split, part="test", max_queries=n_test,
                             rng=np.random.default_rng(1),
                             batch_size=eval_batch_size)
            test_seconds = time.perf_counter() - tick
            points.append(ScalabilityPoint(variant, fraction,
                                           train_seconds, test_seconds))
    return points


def render_fig9(points: list[ScalabilityPoint]) -> str:
    train_series: dict[str, list[tuple[float, float]]] = {}
    test_series: dict[str, list[tuple[float, float]]] = {}
    for p in points:
        train_series.setdefault(p.variant, []).append((p.fraction, p.train_seconds))
        test_series.setdefault(p.variant, []).append((p.fraction, p.test_seconds))
    return "\n\n".join([
        format_series(train_series, x_label="KG fraction", y_label="train s/epoch",
                      title="Fig. 9: training time per epoch vs KG size"),
        format_series(test_series, x_label="KG fraction", y_label="test s",
                      title="Fig. 9: testing time vs KG size"),
    ])
