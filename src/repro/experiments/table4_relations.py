"""Tables IV & V — performance per relation family, and family sizes.

Trains on the whole DRKG-MM KG and evaluates each relation family's
test triples separately (Disease-Gene, Gene-Gene, Compound-Compound,
Compound-Side-Effect, Compound-Gene, Compound-Disease).  The paper's
shape: CamE leads on most families, with the molecule-bearing
compound-related families showing the largest gains.
"""

from __future__ import annotations

from ..eval import RankingMetrics, evaluate_per_relation_family, family_triple_counts
from .reporting import format_table
from .runner import get_prepared, train_model
from .scale import Scale

__all__ = ["run_table4", "run_table5", "render_table4", "render_table5", "TABLE4_MODELS"]

TABLE4_MODELS = ("ConvE", "a-RotatE", "PairRE", "DualE", "CamE")


def run_table5(scale: Scale, dataset: str = "drkg-mm", seed: int = 0) -> dict[str, int]:
    """Triple counts per relation family (Table V)."""
    mkg, _ = get_prepared(dataset, scale, seed)
    return family_triple_counts(mkg.split)


def run_table4(scale: Scale, dataset: str = "drkg-mm",
               models: tuple[str, ...] = TABLE4_MODELS, seed: int = 0,
               ) -> dict[str, dict[str, RankingMetrics]]:
    """Per-family metrics: ``{model: {family: metrics}}``."""
    mkg, _ = get_prepared(dataset, scale, seed)
    results: dict[str, dict[str, RankingMetrics]] = {}
    for name in models:
        run = train_model(name, dataset, scale, seed=seed)
        results[name] = evaluate_per_relation_family(
            run.model, mkg.split,
            max_queries_per_family=scale.test_max_queries // 2,
            rng=None,
        )
    return results


def render_table5(counts: dict[str, int]) -> str:
    rows = sorted(counts.items(), key=lambda kv: -kv[1])
    return format_table(["Relation family", "#Triples"], rows,
                        title="Table V: triples per relation family")


def render_table4(results: dict[str, dict[str, RankingMetrics]]) -> str:
    """Families as rows, (model x metric) as columns, like the paper."""
    models = list(results)
    families = sorted({fam for fams in results.values() for fam in fams})
    headers = ["Relation"] + [f"{m}:{k}" for m in models for k in ("MRR", "H1", "H10")]
    rows = []
    for family in families:
        row = [family]
        for model in models:
            metrics = results[model].get(family)
            if metrics is None or metrics.num_queries == 0:
                row += ["-", "-", "-"]
            else:
                row += [f"{metrics.mrr:.1f}", f"{metrics.hits[1]:.1f}",
                        f"{metrics.hits[10]:.1f}"]
        rows.append(row)
    return format_table(headers, rows,
                        title="Table IV: evaluation per relation family")
