"""Fig. 8 — convergence: test-MRR versus training wall-clock (RQ6).

(a) CamE against baselines: cheap models (DistMult, ConvE) converge
    earlier; CamE starts slower (multimodal machinery costs time per
    epoch) but reaches the best final accuracy.
(b) CamE against its ablations: "w/o TCA" is faster per unit time but
    plateaus lower — the paper's performance/efficiency trade-off.

Both panels reuse the timed eval histories that the runner records
during training.
"""

from __future__ import annotations

import numpy as np

from ..core import CamE, CamEConfig
from ..train import OneToNObjective, TrainingEngine
from .reporting import format_series
from .runner import get_prepared, train_model
from .scale import Scale

__all__ = ["run_fig8a", "run_fig8b", "render_fig8"]

FIG8A_MODELS = ("DistMult", "ConvE", "PairRE", "DualE", "MKGformer", "CamE")
FIG8B_ABLATIONS = ("full", "w/o TCA", "w/o M and R")


def run_fig8a(scale: Scale, dataset: str = "drkg-mm", seed: int = 0,
              models: tuple[str, ...] = FIG8A_MODELS) -> dict[str, list[tuple[float, float]]]:
    """Panel (a): ``{model: [(elapsed_seconds, valid MRR), ...]}``."""
    series: dict[str, list[tuple[float, float]]] = {}
    for name in models:
        run = train_model(name, dataset, scale, seed=seed)
        series[name] = [(elapsed, metrics.mrr)
                        for _, elapsed, metrics in run.report.eval_history]
    return series


def run_fig8b(scale: Scale, dataset: str = "drkg-mm", seed: int = 0,
              ablations: tuple[str, ...] = FIG8B_ABLATIONS) -> dict[str, list[tuple[float, float]]]:
    """Panel (b): convergence of ablation variants."""
    mkg, feats = get_prepared(dataset, scale, seed)
    base = CamEConfig(entity_dim=scale.model_dim, relation_dim=scale.model_dim)
    series: dict[str, list[tuple[float, float]]] = {}
    for name in ablations:
        cfg = CamEConfig.ablation(name, base)
        rng = np.random.default_rng(850 + seed)
        model = CamE(mkg.num_entities, mkg.num_relations, feats, cfg, rng=rng)
        engine = TrainingEngine(model, mkg.split, rng,
                                OneToNObjective(batch_size=128),
                                lr=cfg.learning_rate)
        report = engine.fit(scale.epochs_came, eval_every=scale.eval_every,
                            eval_max_queries=scale.eval_max_queries,
                            keep_best=False)
        series[name] = [(elapsed, metrics.mrr)
                        for _, elapsed, metrics in report.eval_history]
    return series


def render_fig8(series_a: dict[str, list[tuple[float, float]]],
                series_b: dict[str, list[tuple[float, float]]] | None = None) -> str:
    parts = [format_series(series_a, x_label="seconds", y_label="MRR",
                           title="Fig. 8(a): test MRR vs training time (baselines)")]
    if series_b:
        parts.append(format_series(series_b, x_label="seconds", y_label="MRR",
                                   title="Fig. 8(b): test MRR vs training time (ablations)"))
    return "\n\n".join(parts)
