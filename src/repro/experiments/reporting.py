"""Plain-text table/series rendering for experiment outputs.

Every experiment module returns structured data *and* can render it in
the shape the paper prints (rows of a table, series of a figure), so
benchmark runs produce directly comparable output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_histogram"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[tuple[float, float]]],
                  x_label: str, y_label: str, title: str = "") -> str:
    """Render named (x, y) series as aligned text, one block per series."""
    lines = []
    if title:
        lines.append(title)
    for name, points in series.items():
        lines.append(f"[{name}]  ({x_label} -> {y_label})")
        lines.append("  " + "  ".join(f"{x:g}:{y:.2f}" for x, y in points))
    return "\n".join(lines)


def format_histogram(counts: Sequence[int], bin_edges: Sequence[float],
                     title: str = "", max_width: int = 50) -> str:
    """Render histogram counts as a text bar chart."""
    lines = [title] if title else []
    peak = max(counts) if counts else 1
    for count, lo, hi in zip(counts, bin_edges[:-1], bin_edges[1:]):
        bar = "#" * max(1 if count else 0, int(count / max(peak, 1) * max_width))
        lines.append(f"  [{lo:8.1f}, {hi:8.1f})  {count:8d}  {bar}")
    return "\n".join(lines)
