"""``repro.experiments`` — one module per paper table/figure.

See DESIGN.md for the experiment index.  All experiments take a
:class:`~repro.experiments.scale.Scale` preset and are deterministic
given a seed; trained models are cached in-process so figures that
share models (Table III / Table IV / Fig. 7 / Fig. 8a) train once.
"""

from .fig1_diamond import DiamondResult, mine_diamonds, render_fig1, run_fig1
from .grid_search import GridPoint, grid_search_came
from .fig4_longtail import LongTailStats, render_fig4, run_fig4
from .fig5_parameters import render_fig5, run_fig5
from .fig6_ablation import ABLATIONS, render_fig6, run_fig6
from .fig7_case_study import CaseStudy, render_fig7, run_fig7
from .fig8_convergence import render_fig8, run_fig8a, run_fig8b
from .fig9_scalability import ScalabilityPoint, render_fig9, run_fig9
from .reporting import format_histogram, format_series, format_table
from .runner import (
    RunnerContext,
    RunResult,
    clear_run_cache,
    get_prepared,
    set_export_dir,
    set_telemetry_dir,
    set_workers,
    train_model,
)
from .scale import PAPER, SMALL, SMOKE, Scale, get_scale
from .table2_datasets import render_table2, run_table2
from .table3_overall import (
    PAPER_TABLE3,
    improvement_over_best_competitor,
    render_table3,
    run_table3,
)
from .table4_relations import render_table4, render_table5, run_table4, run_table5

__all__ = [
    "Scale", "SMOKE", "SMALL", "PAPER", "get_scale",
    "RunResult", "RunnerContext", "train_model", "get_prepared",
    "clear_run_cache", "set_export_dir", "set_telemetry_dir", "set_workers",
    "format_table", "format_series", "format_histogram",
    "run_table2", "render_table2",
    "run_table3", "render_table3", "PAPER_TABLE3", "improvement_over_best_competitor",
    "run_table4", "run_table5", "render_table4", "render_table5",
    "run_fig1", "render_fig1", "mine_diamonds", "DiamondResult",
    "run_fig4", "render_fig4", "LongTailStats",
    "run_fig5", "render_fig5",
    "run_fig6", "render_fig6", "ABLATIONS",
    "run_fig7", "render_fig7", "CaseStudy",
    "run_fig8a", "run_fig8b", "render_fig8",
    "run_fig9", "render_fig9", "ScalabilityPoint",
    "GridPoint", "grid_search_came",
]
