"""Table III — overall link-prediction comparison.

CamE against nine unimodal and four multimodal baselines on both
datasets, reporting filtered MRR / MR / Hits@{1,3,10}.  The paper's
headline: CamE beats the best competitor by 10.3% MRR / 16.2% Hits@1 on
DRKG-MM and 4.8% / 7.0% on OMAHA-MM; the *shape* expected at CPU scale
is CamE first on MRR/Hits@1, MKGformer the strongest baseline, and
ConvE the strongest unimodal neural baseline.
"""

from __future__ import annotations

from ..baselines import MODEL_REGISTRY, model_names
from ..eval import RankingMetrics
from .reporting import format_table
from .runner import train_model
from .scale import Scale

__all__ = ["run_table3", "render_table3", "PAPER_TABLE3", "improvement_over_best_competitor"]

#: Paper-reported Table III values (MRR, MR, H@1, H@3, H@10).
PAPER_TABLE3 = {
    "drkg-mm": {
        "TransE": (15.6, 822, 4.0, 21.1, 35.3),
        "DistMult": (19.2, 1864, 6.1, 28.3, 38.8),
        "ComplEx": (30.2, 1857, 22.4, 33.3, 43.9),
        "ConvE": (44.1, 499, 33.3, 52.8, 64.3),
        "CompGCN": (42.2, 542, 30.3, 50.0, 61.5),
        "RotatE": (25.3, 699, 9.5, 35.6, 50.3),
        "a-RotatE": (39.2, 653, 19.0, 51.6, 64.2),
        "DualE": (45.7, 602, 34.6, 52.1, 64.9),
        "PairRE": (36.8, 612, 17.9, 51.1, 65.5),
        "IKRL": (12.7, 680, 6.1, 12.5, 24.0),
        "MTAKGR": (14.5, 491, 8.0, 15.3, 27.4),
        "TransAE": (6.8, float("nan"), 1.3, 3.5, 10.9),
        "MKGformer": (45.4, 428, 34.6, 54.7, 64.4),
        "CamE": (50.4, 412, 40.2, 57.1, 67.7),
    },
    "omaha-mm": {
        "TransE": (19.1, 867, 10.5, 22.2, 35.4),
        "DistMult": (13.6, 3637, 7.9, 14.7, 25.2),
        "ComplEx": (25.0, 1122, 17.1, 27.5, 40.5),
        "ConvE": (19.1, 1979, 12.8, 20.9, 31.7),
        "CompGCN": (22.7, 1588, 13.6, 22.4, 39.0),
        "RotatE": (20.0, 858, 11.5, 23.2, 36.5),
        "a-RotatE": (22.2, 811, 13.3, 25.5, 39.7),
        "DualE": (19.9, 1951, 11.5, 22.9, 36.5),
        "PairRE": (24.6, 1581, 16.2, 28.3, 40.8),
        "IKRL": (16.5, 1312, 12.4, 17.2, 29.2),
        "MTAKGR": (19.6, 868, 12.5, 21.4, 33.2),
        "TransAE": (7.2, float("nan"), 3.2, 7.4, 15.2),
        "MKGformer": (24.8, 880, 17.2, 26.8, 38.9),
        "CamE": (26.2, 871, 18.4, 29.3, 42.1),
    },
}


def run_table3(scale: Scale, datasets: tuple[str, ...] = ("drkg-mm", "omaha-mm"),
               models: tuple[str, ...] | None = None, seed: int = 0,
               num_seeds: int = 1) -> dict[str, dict[str, RankingMetrics]]:
    """Train/evaluate every model on every dataset; returns metrics.

    ``num_seeds > 1`` reports the mean over independently seeded runs —
    the usual KGC reporting convention, and necessary at CPU scale where
    the small test sets make single runs noisy.
    """
    names = list(models) if models is not None else model_names()
    results: dict[str, dict[str, RankingMetrics]] = {}
    for dataset in datasets:
        # The paper's OMAHA-MM best setting is 1-to-1000 negatives.
        negatives = 1000 if dataset == "omaha-mm" else None
        results[dataset] = {}
        for name in names:
            runs = [train_model(name, dataset, scale, seed=seed + k,
                                negatives_1ton=negatives)
                    for k in range(num_seeds)]
            results[dataset][name] = RankingMetrics.average(
                [r.test_metrics for r in runs])
    return results


def improvement_over_best_competitor(results: dict[str, RankingMetrics],
                                     metric: str = "mrr") -> float:
    """Relative CamE improvement (%) over its best competitor."""
    came = results["CamE"]
    value = {"mrr": came.mrr, "hits1": came.hits[1]}[metric]
    best = max(
        ({"mrr": m.mrr, "hits1": m.hits[1]}[metric]
         for name, m in results.items() if name != "CamE"),
        default=float("nan"),
    )
    return (value - best) / best * 100.0 if best else float("nan")


def render_table3(results: dict[str, dict[str, RankingMetrics]]) -> str:
    """Paper-style Table III with group separators and improvements."""
    blocks = []
    for dataset, model_results in results.items():
        headers = ["Model", "Group", "MRR", "MR", "Hits@1", "Hits@3", "Hits@10"]
        rows = []
        for name, metrics in model_results.items():
            group = MODEL_REGISTRY[name].group
            rows.append([name, group, f"{metrics.mrr:.1f}", f"{metrics.mr:.0f}",
                         f"{metrics.hits[1]:.1f}", f"{metrics.hits[3]:.1f}",
                         f"{metrics.hits[10]:.1f}"])
        table = format_table(headers, rows,
                             title=f"Table III ({dataset}): link prediction, filtered setting")
        if "CamE" in model_results and len(model_results) > 1:
            imp_mrr = improvement_over_best_competitor(model_results, "mrr")
            imp_h1 = improvement_over_best_competitor(model_results, "hits1")
            table += (f"\nCamE improvement over best competitor: "
                      f"{imp_mrr:+.1f}% MRR, {imp_h1:+.1f}% Hits@1")
        blocks.append(table)
    return "\n\n".join(blocks)
