"""Command-line experiment runner.

Regenerate any paper table/figure from the shell::

    python -m repro.experiments table2 --scale smoke
    python -m repro.experiments fig1
    python -m repro.experiments table3 --scale small --datasets drkg-mm
    python -m repro.experiments all --scale smoke

Output is the same rendered text the benchmarks write to
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse

from . import (
    get_scale,
    render_fig1,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    run_fig1,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8a,
    run_fig8b,
    run_fig9,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


def _table3(scale, datasets):
    return render_table3(run_table3(scale, datasets=tuple(datasets)))


EXPERIMENTS = {
    "table2": lambda scale, datasets: render_table2(run_table2(scale)),
    "table3": _table3,
    "table4": lambda scale, datasets: render_table4(run_table4(scale)),
    "table5": lambda scale, datasets: render_table5(run_table5(scale)),
    "fig1": lambda scale, datasets: render_fig1(run_fig1(scale)),
    "fig4": lambda scale, datasets: render_fig4(run_fig4(scale)),
    "fig5": lambda scale, datasets: render_fig5(run_fig5(scale)),
    "fig6": lambda scale, datasets: render_fig6(run_fig6(scale)),
    "fig7": lambda scale, datasets: render_fig7(run_fig7(scale)),
    "fig8": lambda scale, datasets: render_fig8(run_fig8a(scale), run_fig8b(scale)),
    "fig9": lambda scale, datasets: render_fig9(run_fig9(scale)),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments",
                                     description=__doc__)
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"],
                        help="which paper table/figure to regenerate")
    parser.add_argument("--scale", default="small",
                        help="scale preset: smoke | small (default: small)")
    parser.add_argument("--datasets", nargs="+",
                        default=["drkg-mm", "omaha-mm"],
                        help="datasets for table3 (default: both)")
    parser.add_argument("--export-bundle", metavar="DIR", default=None,
                        help="also write a repro.serve checkpoint bundle for "
                             "every model the experiment trains")
    parser.add_argument("--telemetry-dir", metavar="DIR", default=None,
                        help="write one JSONL training-telemetry file per "
                             "fresh run (one event per epoch/eval)")
    parser.add_argument("--trace-dir", metavar="DIR", default=None,
                        help="record repro.obs spans (epochs, eval batches, "
                             "...) to DIR/trace.jsonl; summarize with "
                             "'python -m repro.obs report'")
    parser.add_argument("--workers", type=int, metavar="N", default=1,
                        help="train every model on N repro.dist worker "
                             "processes with sharded evaluation "
                             "(default: 1 = in-process)")
    args = parser.parse_args(argv)

    if args.export_bundle:
        from .runner import set_export_dir

        set_export_dir(args.export_bundle)
    if args.telemetry_dir:
        from .runner import set_telemetry_dir

        set_telemetry_dir(args.telemetry_dir)
    if args.trace_dir:
        from .runner import set_trace_dir

        set_trace_dir(args.trace_dir)
    if args.workers != 1:
        from .runner import set_workers

        set_workers(args.workers)
    scale = get_scale(args.scale)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(EXPERIMENTS[name](scale, args.datasets))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
