"""Fig. 7 — case study (RQ5): semantic coherence of top-ranked tails.

The paper shows a *Drug-drug Interaction* query whose top-3 predicted
tails share class morphology ("-cillin" suffixes / penicillin-type
substructures).  We reproduce the analysis: take compound-compound test
queries, read CamE's top-k tails, and check (a) that predictions are
printed with their names, scaffolds and description phrases and (b) how
often the top-ranked tails share the head's latent scaffold — the
quantitative version of "the predictions are the same kind of drug".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval import build_filter
from .runner import get_prepared, train_model
from .scale import Scale

__all__ = ["CaseStudy", "run_fig7", "render_fig7"]


@dataclass
class CasePrediction:
    """One predicted tail entity with its modal context."""

    name: str
    scaffold: str
    description: str
    score: float


@dataclass
class CaseStudy:
    """Top-k analysis for one query plus corpus-level statistics."""

    head_name: str
    head_scaffold: str
    relation: str
    true_tail: str
    predictions: list[CasePrediction]
    scaffold_match_rate: float    # over many queries: top-3 scaffold agreement
    chance_match_rate: float      # scaffold agreement expected at random


def run_fig7(scale: Scale, seed: int = 0, top_k: int = 3,
             max_queries: int = 60) -> CaseStudy:
    """Train CamE (cached) and analyse compound-compound predictions."""
    mkg, _ = get_prepared("drkg-mm", scale, seed)
    run = train_model("CamE", "drkg-mm", scale, seed=seed)
    graph = mkg.graph
    types = graph.entity_types
    filters = build_filter(mkg.split)

    cc_tests = [t for t in mkg.split.test
                if types[int(t[0])] == "Compound" and types[int(t[2])] == "Compound"]
    if not cc_tests:
        raise RuntimeError("no compound-compound test triples; increase scale")
    rng = np.random.default_rng(500 + seed)
    order = rng.permutation(len(cc_tests))[:max_queries]

    matches, chances, showcase = [], [], None
    compounds = mkg.entities_of_type("Compound")
    scaffold_ids = {c: mkg.scaffold_of.get(int(c), "") for c in compounds}
    scaffold_freq = {}
    for s in scaffold_ids.values():
        scaffold_freq[s] = scaffold_freq.get(s, 0) + 1
    chance = sum((n / len(compounds)) ** 2 for n in scaffold_freq.values())

    for idx in order:
        h, r, t = (int(v) for v in cc_tests[idx])
        scores = run.model.predict_tails(np.array([h]), np.array([r]))[0]
        known = filters.get((h, r))
        if known is not None:
            masked = scores.copy()
            masked[known] = -np.inf
            masked[t] = scores[t]
        else:
            masked = scores
        top = np.argsort(-masked)[:top_k]
        head_scaffold = mkg.scaffold_of.get(h, "")
        top_scaffolds = [mkg.scaffold_of.get(int(e), None) for e in top]
        valid = [s for s in top_scaffolds if s is not None]
        if valid and head_scaffold:
            matches.append(np.mean([s == head_scaffold for s in valid]))
            chances.append(chance)
        if showcase is None and valid:
            showcase = (h, r, t, top, masked)

    if showcase is None:
        raise RuntimeError("no usable compound-compound queries found")
    h, r, t, top, masked = showcase
    predictions = [
        CasePrediction(
            name=graph.entities.name(int(e)),
            scaffold=mkg.scaffold_of.get(int(e), "(none)"),
            description=mkg.descriptions.get(int(e), ""),
            score=float(masked[int(e)]),
        )
        for e in top
    ]
    return CaseStudy(
        head_name=graph.entities.name(h),
        head_scaffold=mkg.scaffold_of.get(h, "(none)"),
        relation=graph.relations.name(int(r) % graph.num_relations),
        true_tail=graph.entities.name(t),
        predictions=predictions,
        scaffold_match_rate=float(np.mean(matches) * 100) if matches else float("nan"),
        chance_match_rate=float(np.mean(chances) * 100) if chances else float("nan"),
    )


def render_fig7(case: CaseStudy) -> str:
    lines = [
        "Fig. 7: case study — top predictions share class semantics",
        f"  query: ({case.head_name} [{case.head_scaffold}], {case.relation}, ?)"
        f"   true tail: {case.true_tail}",
    ]
    for rank, p in enumerate(case.predictions, 1):
        lines.append(f"  top-{rank}: {p.name:24s} scaffold={p.scaffold:14s} "
                     f"score={p.score:6.2f}")
        if p.description:
            lines.append(f"         \"{p.description}\"")
    lines.append(
        f"  top-3 scaffold agreement with head: {case.scaffold_match_rate:.1f}% "
        f"(chance: {case.chance_match_rate:.1f}%)"
    )
    return "\n".join(lines)
