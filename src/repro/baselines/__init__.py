"""``repro.baselines`` — every comparison model from Table III.

Unimodal: TransE, DistMult, ComplEx, ConvE, CompGCN, RotatE/a-RotatE,
DualE, PairRE.  Multimodal: IKRL, MTAKGR, TransAE, MKGformer
(M-Encoder).  Plus the shared negative-sampling trainer and a registry
that pairs each model with the training regime the paper used.
"""

from .base import EmbeddingModel, NegativeSamplingTrainer, TripleScoringModel
from .complex_ import ComplEx
from .compgcn_lp import CompGCNLinkPredictor
from .conve import ConvE
from .distmult import DistMult
from .duale import DualE
from .ikrl import IKRL
from .mkgformer import MKGformer
from .mtakgr import MTAKGR
from .pairre import PairRE
from .registry import MODEL_REGISTRY, ModelSpec, build_model, get_spec, model_names
from .rotate import RotatE
from .transae import TransAE
from .transe import TransE

__all__ = [
    "EmbeddingModel",
    "NegativeSamplingTrainer",
    "TripleScoringModel",
    "TransE",
    "DistMult",
    "ComplEx",
    "ConvE",
    "CompGCNLinkPredictor",
    "RotatE",
    "PairRE",
    "DualE",
    "IKRL",
    "MTAKGR",
    "TransAE",
    "MKGformer",
    "MODEL_REGISTRY",
    "ModelSpec",
    "build_model",
    "get_spec",
    "model_names",
]
