"""ComplEx (Trouillon et al., 2016).

Extends DistMult to the complex plane so antisymmetric relations are
expressible: ``f(h, r, t) = Re(<h, r, conj(t)>)``.  Embeddings store the
real and imaginary halves in one ``2*dim`` vector.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel, inference_mode

__all__ = ["ComplEx"]


class ComplEx(EmbeddingModel):
    """ComplEx scorer; ``dim`` counts complex components."""

    #: ``Re(<h, r, conj(t)>) = q_re . t_re + q_im . t_im`` — an inner
    #: product of the rotated-query vector against the entity table in
    #: its native ``[re || im]`` layout.
    ann_metric = "ip"

    def __init__(self, num_entities: int, num_relations: int, dim: int = 32,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng,
                         relation_factor=2, entity_factor=2)

    def ann_queries(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        ent = self.entity_embedding.weight.data
        rel = self.relation_embedding.weight.data
        d = self.dim
        heads = np.asarray(heads, dtype=np.int64)
        rels = np.asarray(rels, dtype=np.int64)
        h_re, h_im = ent[heads, :d], ent[heads, d:]
        r_re, r_im = rel[rels, :d], rel[rels, d:]
        return np.concatenate(
            [h_re * r_re - h_im * r_im, h_re * r_im + h_im * r_re], axis=-1)

    def score_cells(self, heads: np.ndarray, rels: np.ndarray,
                    tails: np.ndarray) -> np.ndarray:
        """Exact per-cell scores (per-row dot instead of a GEMM column)."""
        with inference_mode(self):
            ent = self.entity_embedding.weight.data
            query = self.ann_queries(heads, rels)
            scores = np.einsum("bd,bd->b", query, ent[np.asarray(tails, np.int64)])
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores

    @staticmethod
    def _split(x: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        d = x.shape[-1] // 2
        return x[:, :d], x[:, d:]

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        h, r, t = self._gather(triples)
        h_re, h_im = self._split(h)
        r_re, r_im = self._split(r)
        t_re, t_im = self._split(t)
        # Re(<h, r, conj(t)>) expanded into four trilinear terms.
        term = F.add(
            F.add(F.mul(F.mul(h_re, r_re), t_re), F.mul(F.mul(h_im, r_re), t_im)),
            F.sub(F.mul(F.mul(h_re, r_im), t_im), F.mul(F.mul(h_im, r_im), t_re)),
        )
        return F.sum(term, axis=-1)

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            ent = self.entity_embedding.weight.data
            rel = self.relation_embedding.weight.data
            d = self.dim
            h_re, h_im = ent[heads, :d], ent[heads, d:]
            r_re, r_im = rel[rels, :d], rel[rels, d:]
            e_re, e_im = ent[:, :d], ent[:, d:]
            q_re = h_re * r_re - h_im * r_im
            q_im = h_re * r_im + h_im * r_re
            scores = q_re @ e_re.T + q_im @ e_im.T
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores
