"""PairRE (Chao et al., 2021).

Each relation owns a *pair* of vectors ``(r_H, r_T)``; entities are
L2-normalised and the score is ``gamma - ||h o r_H - t o r_T||_1``.
The paired representation encodes complex relations and multiple
relation patterns simultaneously.  Trained with self-adversarial
negatives, as in the original.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel, chunked_entity_scores, inference_mode

__all__ = ["PairRE"]


class PairRE(EmbeddingModel):
    """PairRE with L2-normalised entities and paired relation vectors."""

    def __init__(self, num_entities: int, num_relations: int, dim: int = 64,
                 gamma: float = 12.0, rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng, relation_factor=2)
        self.gamma = gamma

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        h, r, t = self._gather(triples)
        h = F.l2_normalize(h)
        t = F.l2_normalize(t)
        d = self.dim
        r_head, r_tail = r[:, :d], r[:, d:]
        distance = F.sum(F.abs(F.sub(F.mul(h, r_head), F.mul(t, r_tail))), axis=-1)
        return F.sub(self.gamma, distance)

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            ent = self.entity_embedding.weight.data
            ent = ent / (np.linalg.norm(ent, axis=1, keepdims=True) + 1e-12)
            rel = self.relation_embedding.weight.data[rels]
            d = self.dim
            query = ent[heads] * rel[:, :d]        # (B, d)

            def block(start: int, stop: int) -> np.ndarray:
                tails = ent[start:stop][None, :, :] * rel[:, None, d:]
                return self.gamma - np.abs(query[:, None, :] - tails).sum(axis=-1)

            return chunked_entity_scores(len(heads), self.num_entities, d, block,
                                         dtype=self.inference_dtype)
