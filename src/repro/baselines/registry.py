"""Model registry: build any paper model + its training regime by name.

Mirrors the paper's experimental setup (Section V-C): TransE, DistMult
and ComplEx run on the RotatE codebase's negative-sampling regime;
ConvE, CompGCN, MKGformer and CamE train 1-to-N; a-RotatE and PairRE add
self-adversarial negative weighting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core import CamE, CamEConfig
from ..datasets import ModalityFeatures, MultimodalKG
from ..train import NegativeSamplingObjective, OneToNObjective, TrainingEngine
from .complex_ import ComplEx
from .compgcn_lp import CompGCNLinkPredictor
from .conve import ConvE
from .distmult import DistMult
from .duale import DualE
from .ikrl import IKRL
from .mkgformer import MKGformer
from .mtakgr import MTAKGR
from .pairre import PairRE
from .rotate import RotatE
from .transae import TransAE
from .transe import TransE

__all__ = ["ModelSpec", "MODEL_REGISTRY", "model_names", "get_spec", "build_model"]


@dataclass
class ModelSpec:
    """How to construct one named model and its trainer."""

    name: str
    group: str  # "unimodal" | "multimodal" | "ours"
    builder: Callable  # (mkg, features, dim, rng) -> model
    regime: str  # "neg" | "1toN"
    self_adversarial: bool = False


def _came_builder(config_overrides: dict | None = None):
    def build(mkg: MultimodalKG, features: ModalityFeatures, dim: int,
              rng: np.random.Generator):
        cfg = CamEConfig(entity_dim=dim, relation_dim=dim)
        if config_overrides:
            cfg = cfg.variant(**config_overrides)
        return CamE(mkg.num_entities, mkg.num_relations, features, cfg, rng=rng)
    return build


MODEL_REGISTRY: dict[str, ModelSpec] = {
    "TransE": ModelSpec(
        "TransE", "unimodal",
        lambda mkg, feats, dim, rng: TransE(mkg.num_entities, mkg.num_relations, dim, rng=rng),
        "neg"),
    "DistMult": ModelSpec(
        "DistMult", "unimodal",
        lambda mkg, feats, dim, rng: DistMult(mkg.num_entities, mkg.num_relations, dim, rng=rng),
        "neg"),
    "ComplEx": ModelSpec(
        "ComplEx", "unimodal",
        lambda mkg, feats, dim, rng: ComplEx(mkg.num_entities, mkg.num_relations, dim // 2, rng=rng),
        "neg"),
    "ConvE": ModelSpec(
        "ConvE", "unimodal",
        lambda mkg, feats, dim, rng: ConvE(mkg.num_entities, mkg.num_relations, dim, rng=rng),
        "1toN"),
    "CompGCN": ModelSpec(
        "CompGCN", "unimodal",
        lambda mkg, feats, dim, rng: CompGCNLinkPredictor(
            mkg.num_entities, mkg.num_relations, mkg.split.train, dim=min(dim, 32), rng=rng),
        "1toN"),
    "RotatE": ModelSpec(
        "RotatE", "unimodal",
        lambda mkg, feats, dim, rng: RotatE(mkg.num_entities, mkg.num_relations, dim // 2, rng=rng),
        "neg"),
    "a-RotatE": ModelSpec(
        "a-RotatE", "unimodal",
        lambda mkg, feats, dim, rng: RotatE(mkg.num_entities, mkg.num_relations, dim // 2, rng=rng),
        "neg", self_adversarial=True),
    "DualE": ModelSpec(
        "DualE", "unimodal",
        lambda mkg, feats, dim, rng: DualE(mkg.num_entities, mkg.num_relations, max(dim // 8, 4), rng=rng),
        "neg"),
    "PairRE": ModelSpec(
        "PairRE", "unimodal",
        lambda mkg, feats, dim, rng: PairRE(mkg.num_entities, mkg.num_relations, dim, rng=rng),
        "neg", self_adversarial=True),
    "IKRL": ModelSpec(
        "IKRL", "multimodal",
        lambda mkg, feats, dim, rng: IKRL(mkg.num_entities, mkg.num_relations,
                                          feats.molecular, dim, rng=rng),
        "neg"),
    "MTAKGR": ModelSpec(
        "MTAKGR", "multimodal",
        lambda mkg, feats, dim, rng: MTAKGR(mkg.num_entities, mkg.num_relations,
                                            feats.textual, feats.molecular, dim, rng=rng),
        "neg"),
    "TransAE": ModelSpec(
        "TransAE", "multimodal",
        lambda mkg, feats, dim, rng: TransAE(mkg.num_entities, mkg.num_relations,
                                             feats.textual, feats.molecular, dim, rng=rng),
        "neg"),
    "MKGformer": ModelSpec(
        "MKGformer", "multimodal",
        lambda mkg, feats, dim, rng: MKGformer(mkg.num_entities, mkg.num_relations,
                                               feats.textual, feats.molecular,
                                               feats.structural, dim, rng=rng),
        "1toN"),
    "CamE": ModelSpec("CamE", "ours", _came_builder(), "1toN"),
}


def model_names(groups: tuple[str, ...] = ("unimodal", "multimodal", "ours")) -> list[str]:
    """Names in registry order, filtered by group."""
    return [name for name, spec in MODEL_REGISTRY.items() if spec.group in groups]


def get_spec(name: str) -> ModelSpec:
    """Look up a :class:`ModelSpec` by name.

    Raises a ``ValueError`` that lists every valid name on a miss, so
    callers taking model names from the command line (``serve export``)
    or config files surface a actionable message instead of a bare
    ``KeyError``.
    """
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; valid names: {', '.join(sorted(MODEL_REGISTRY))}"
        ) from None


def build_model(name: str, mkg: MultimodalKG, features: ModalityFeatures,
                rng: np.random.Generator, dim: int = 64,
                lr: float | None = None, batch_size: int = 128,
                negatives_1ton: int | None = None):
    """Construct ``(model, trainer)`` for a registered model name.

    The trainer is a :class:`repro.train.TrainingEngine` carrying the
    objective the spec's regime selects, so callers can attach
    callbacks (early stopping, telemetry, bundle export) to ``fit``.
    ``negatives_1ton`` switches 1-to-N models to 1-to-K candidate
    sampling (the paper's OMAHA-MM setting).
    """
    spec = get_spec(name)
    model = spec.builder(mkg, features, dim, rng)
    if spec.regime == "neg":
        trainer = TrainingEngine(
            model, mkg.split, rng,
            NegativeSamplingObjective(batch_size=max(batch_size, 128),
                                      num_negatives=8,
                                      self_adversarial=spec.self_adversarial),
            lr=lr if lr is not None else 0.01,
        )
    else:
        trainer = TrainingEngine(
            model, mkg.split, rng,
            OneToNObjective(batch_size=batch_size, negatives=negatives_1ton),
            lr=lr if lr is not None else 0.003,
        )
    return model, trainer
