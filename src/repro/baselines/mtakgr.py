"""MTAKGR (Mousselly-Sergieh et al., 2018).

A multimodal translation-based approach: the energy of a triple is the
sum of sub-energies over the structural embedding and the (projected)
multimodal feature vector, including crossed head/tail combinations.
Here the multimodal vector concatenates the textual and molecular
features, mirroring the original's concatenated visual+linguistic
feature.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel, chunked_entity_scores, inference_mode

__all__ = ["MTAKGR"]


class MTAKGR(EmbeddingModel):
    """Multimodal translation with crossed sub-energy functions."""

    def __init__(self, num_entities: int, num_relations: int,
                 text_features: np.ndarray, modal_features: np.ndarray,
                 dim: int = 64, gamma: float = 12.0,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng)
        gen = rng if rng is not None else np.random.default_rng(0)
        self.gamma = gamma
        self.multimodal = np.concatenate([text_features, modal_features], axis=1)
        self.modal_proj = nn.Linear(self.multimodal.shape[1], dim, rng=gen)

    def _modal(self, ids: np.ndarray) -> nn.Tensor:
        return self.modal_proj(nn.Tensor(self.multimodal[ids]))

    @staticmethod
    def _energy(h: nn.Tensor, r: nn.Tensor, t: nn.Tensor) -> nn.Tensor:
        return F.sum(F.abs(F.sub(F.add(h, r), t)), axis=-1)

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        h_s, r, t_s = self._gather(triples)
        h_m = self._modal(triples[:, 0])
        t_m = self._modal(triples[:, 2])
        energy = F.add(
            F.add(self._energy(h_s, r, t_s), self._energy(h_m, r, t_m)),
            F.add(self._energy(h_m, r, t_s), self._energy(h_s, r, t_m)),
        )
        return F.sub(self.gamma, F.mul(energy, 0.25))

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            ent = self.entity_embedding.weight.data
            rel = self.relation_embedding.weight.data[rels]
            modal_all = self.modal_proj(nn.Tensor(self.multimodal)).data
            q_s = ent[heads] + rel
            q_m = modal_all[heads] + rel

            def block(start: int, stop: int) -> np.ndarray:
                t_s = ent[start:stop][None]
                t_m = modal_all[start:stop][None]
                energy = (
                    np.abs(q_s[:, None] - t_s).sum(-1) + np.abs(q_m[:, None] - t_m).sum(-1)
                    + np.abs(q_m[:, None] - t_s).sum(-1) + np.abs(q_s[:, None] - t_m).sum(-1)
                )
                return self.gamma - energy / 4.0

            return chunked_entity_scores(len(heads), self.num_entities,
                                         self.dim, block,
                                         dtype=self.inference_dtype,
                                         budget=2_000_000)
