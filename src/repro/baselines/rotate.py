"""RotatE and a-RotatE (Sun et al., 2019).

Relations are rotations in the complex plane: ``t ~ h o r`` with
``|r_i| = 1``, scored as ``gamma - ||h o r - t||_2``.  Relation
embeddings store phases; ``a-RotatE`` is the same model trained with
self-adversarial negative sampling (a trainer flag, per the paper).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel, chunked_entity_scores, inference_mode

__all__ = ["RotatE"]


class RotatE(EmbeddingModel):
    """RotatE with phase-parameterised relations.

    ``dim`` counts complex components; entities use ``2*dim`` reals and
    relations ``dim`` phases.
    """

    #: The true score sums per-component complex moduli (an L2,1 norm);
    #: flat L2 distance between the rotated head and the entity table is
    #: a tightly correlated surrogate, good enough for *candidate*
    #: generation — the serving layer reranks candidates exactly.
    ann_metric = "l2"

    def __init__(self, num_entities: int, num_relations: int, dim: int = 32,
                 gamma: float = 12.0, rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng,
                         entity_factor=2, relation_factor=2)
        self.gamma = gamma

    def _rotated_heads(self, heads: np.ndarray, rels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Numpy rotation of head embeddings (inference path)."""
        d = self.dim
        ent = self.entity_embedding.weight.data
        raw = self.relation_embedding.weight.data[np.asarray(rels, np.int64)]
        c, s = raw[:, :d], raw[:, d:]
        norm = np.sqrt(c * c + s * s + 1e-9)
        cos, sin = c / norm, s / norm
        heads = np.asarray(heads, dtype=np.int64)
        h_re, h_im = ent[heads, :d], ent[heads, d:]
        return h_re * cos - h_im * sin, h_re * sin + h_im * cos

    def ann_queries(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        rot_re, rot_im = self._rotated_heads(heads, rels)
        return np.concatenate([rot_re, rot_im], axis=-1)

    def score_cells(self, heads: np.ndarray, rels: np.ndarray,
                    tails: np.ndarray) -> np.ndarray:
        """Exact per-cell scores, same float64 ops as :meth:`predict_tails`."""
        with inference_mode(self):
            d = self.dim
            ent = self.entity_embedding.weight.data
            rot_re, rot_im = self._rotated_heads(heads, rels)
            tails = np.asarray(tails, dtype=np.int64)
            dr = rot_re - ent[tails, :d]
            di = rot_im - ent[tails, d:]
            scores = self.gamma - np.sqrt(dr * dr + di * di + 1e-9).sum(axis=-1)
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores

    def _unit_rotation(self, rels: np.ndarray) -> tuple[nn.Tensor, nn.Tensor]:
        """Unit-modulus rotation components for a relation id batch.

        Instead of a trigonometric parameterisation (our op zoo has no
        cos), each relation stores two free components per dimension and
        is normalised onto the unit circle — the same unit-modulus
        constraint RotatE's phase parameterisation guarantees.
        """
        raw = self.relation_embedding(rels)
        d = self.dim
        c, s = raw[:, :d], raw[:, d:]
        norm = F.sqrt(F.add(F.add(F.mul(c, c), F.mul(s, s)), 1e-9))
        return F.div(c, norm), F.div(s, norm)

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        d = self.dim
        h = self.entity_embedding(triples[:, 0])
        t = self.entity_embedding(triples[:, 2])
        cos, sin = self._unit_rotation(triples[:, 1])
        h_re, h_im = h[:, :d], h[:, d:]
        t_re, t_im = t[:, :d], t[:, d:]
        rot_re = F.sub(F.mul(h_re, cos), F.mul(h_im, sin))
        rot_im = F.add(F.mul(h_re, sin), F.mul(h_im, cos))
        diff_re = F.sub(rot_re, t_re)
        diff_im = F.sub(rot_im, t_im)
        modulus = F.sqrt(F.add(F.add(F.mul(diff_re, diff_re), F.mul(diff_im, diff_im)), 1e-9))
        return F.sub(self.gamma, F.sum(modulus, axis=-1))

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            d = self.dim
            ent = self.entity_embedding.weight.data
            rot_re, rot_im = self._rotated_heads(heads, rels)
            e_re, e_im = ent[:, :d], ent[:, d:]

            def block(start: int, stop: int) -> np.ndarray:
                dr = rot_re[:, None, :] - e_re[None, start:stop]
                di = rot_im[:, None, :] - e_im[None, start:stop]
                return self.gamma - np.sqrt(dr * dr + di * di + 1e-9).sum(axis=-1)

            return chunked_entity_scores(len(heads), self.num_entities, d, block,
                                         dtype=self.inference_dtype,
                                         budget=2_000_000)
