"""Shared infrastructure for the baseline KG-completion models.

Two training regimes cover all baselines, matching the original codes
the paper used:

* :class:`NegativeSamplingTrainer` — the RotatE-codebase regime
  (TransE / DistMult / ComplEx / RotatE / a-RotatE / PairRE / DualE and
  the multimodal translational models): positive triples vs sampled
  corruptions under the log-sigmoid loss, optionally with
  self-adversarial negative weighting (Sun et al., 2019).
* :class:`repro.core.trainer.OneToNTrainer` — the ConvE regime (ConvE,
  CompGCN, MKGformer and CamE itself): 1-to-N scoring with BCE.

Every model exposes ``predict_tails(heads, rels) -> (B, num_entities)``
so the evaluation protocol treats all of them identically.  All models
allocate ``2x`` relation embeddings for inverse relations and are
trained on inverse-augmented triples, so head-side queries rank through
``r + num_relations``.
"""

from __future__ import annotations

import time
from typing import Callable, Protocol

import numpy as np

from .. import nn
from ..nn import functional as F
# ``inference_mode`` lives in repro.nn (so repro.core can use it too) and
# is re-exported here: every baseline ``predict_tails`` must run inside it
# — autograd off, dropout/batch-norm in eval mode — so the pattern
# ``CamE.predict_tails`` established cannot drift.
from ..nn import inference_mode
from ..kg import KGSplit, NegativeSampler, add_inverse_relations, self_adversarial_weights
from ..core.trainer import TrainReport
from ..eval import RankingEvaluator

__all__ = [
    "TripleScoringModel",
    "EmbeddingModel",
    "NegativeSamplingTrainer",
    "inference_mode",
    "chunked_entity_scores",
]


def chunked_entity_scores(
    num_queries: int,
    num_entities: int,
    dim: int,
    block_fn: Callable[[int, int], np.ndarray],
    dtype: np.dtype | type | None = None,
    budget: int = 4_000_000,
) -> np.ndarray:
    """Fill a ``(num_queries, num_entities)`` score matrix chunk by chunk.

    Translational models materialise a ``(B, C, dim)`` difference tensor
    per candidate chunk; ``budget`` caps that intermediate's element
    count so memory stays bounded at DRKG-MM scale (~100k entities).
    ``block_fn(start, stop)`` returns the scores for candidate columns
    ``[start, stop)``; ``dtype`` selects the inference precision
    (``float32`` halves score-matrix memory on large evals).
    """
    out = np.empty((num_queries, num_entities),
                   dtype=np.float64 if dtype is None else dtype)
    chunk = max(1, budget // max(1, num_queries * dim))
    for start in range(0, num_entities, chunk):
        stop = min(num_entities, start + chunk)
        out[:, start:stop] = block_fn(start, stop)
    return out


class TripleScoringModel(Protocol):
    """Structural type for negative-sampling trainable models."""

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor: ...  # pragma: no cover

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray: ...  # pragma: no cover

    def parameters(self): ...  # pragma: no cover


class EmbeddingModel(nn.Module):
    """Base class holding entity/relation embedding tables.

    Subclasses implement :meth:`triple_scores` (autograd, for training)
    and :meth:`predict_tails` (numpy, inference).  ``relation_factor``
    lets models that need several vectors per relation (PairRE, DualE)
    widen the relation table.
    """

    #: Dtype ``predict_tails`` allocates score matrices in.  ``None``
    #: keeps float64 (exact parity with training math); set to
    #: ``np.float32`` for the inference fast path on large entity sets.
    inference_dtype: np.dtype | type | None = None

    def __init__(self, num_entities: int, num_relations: int, dim: int,
                 rng: np.random.Generator | None = None,
                 relation_factor: int = 1, entity_factor: int = 1) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entity_embedding = nn.Embedding(num_entities, dim * entity_factor, rng=gen)
        self.relation_embedding = nn.Embedding(2 * num_relations,
                                               dim * relation_factor, rng=gen)

    # Subclass hooks ----------------------------------------------------
    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:  # pragma: no cover
        raise NotImplementedError

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def predict_heads(self, tails: np.ndarray, rels: np.ndarray) -> np.ndarray:
        """Score all head candidates for ``(?, r, t)`` queries.

        Uses the inverse-relation convention shared with the evaluator:
        head-side queries rank through ``r + num_relations``.  ``rels``
        must hold *original* relation ids.
        """
        rels = np.asarray(rels)
        if rels.size and rels.max() >= self.num_relations:
            raise ValueError(
                "predict_heads expects original relation ids "
                f"(< {self.num_relations}); got max {int(rels.max())}"
            )
        return self.predict_tails(np.asarray(tails), rels + self.num_relations)

    # Helpers -----------------------------------------------------------
    def _gather(self, triples: np.ndarray) -> tuple[nn.Tensor, nn.Tensor, nn.Tensor]:
        """Embed the head/relation/tail columns of a triple batch."""
        return (
            self.entity_embedding(triples[:, 0]),
            self.relation_embedding(triples[:, 1]),
            self.entity_embedding(triples[:, 2]),
        )


class NegativeSamplingTrainer:
    """Log-sigmoid loss over positive triples and sampled corruptions.

    ``loss = -logsig(f(pos)) - sum_i w_i * logsig(-f(neg_i))`` where
    ``w`` is uniform, or the softmax of negative scores when
    ``self_adversarial`` is on (the a-RotatE / PairRE setting).
    """

    def __init__(self, model, split: KGSplit, rng: np.random.Generator,
                 lr: float = 0.01, batch_size: int = 256,
                 num_negatives: int = 8, self_adversarial: bool = False,
                 adversarial_temperature: float = 1.0,
                 bernoulli: bool = False, grad_clip: float = 5.0) -> None:
        self.model = model
        self.split = split
        self.rng = rng
        self.batch_size = batch_size
        self.num_negatives = num_negatives
        self.self_adversarial = self_adversarial
        self.adversarial_temperature = adversarial_temperature
        self.grad_clip = grad_clip
        self.optimizer = nn.Adam(list(model.parameters()), lr=lr)
        self._evaluator: RankingEvaluator | None = None
        self.train_triples = add_inverse_relations(split.train, split.num_relations)
        inverse_true = {(int(t), int(r) + split.num_relations, int(h))
                        for h, r, t in split.train}
        self.sampler = NegativeSampler(split.graph, self.train_triples, rng,
                                       bernoulli=bernoulli, filtered=True,
                                       extra_true=inverse_true)

    def train_epoch(self) -> float:
        """One pass over the (inverse-augmented) training triples."""
        order = self.rng.permutation(len(self.train_triples))
        losses = []
        for start in range(0, len(order), self.batch_size):
            positives = self.train_triples[order[start:start + self.batch_size]]
            negatives = self.sampler.corrupt(positives, self.num_negatives)
            self.optimizer.zero_grad()
            pos_scores = self.model.triple_scores(positives)
            neg_scores = self.model.triple_scores(negatives)
            neg_matrix = F.reshape(neg_scores, (self.num_negatives, len(positives)))
            pos_loss = F.neg(F.mean(F.logsigmoid(pos_scores)))
            if self.self_adversarial:
                weights = self_adversarial_weights(
                    neg_matrix.data.T, temperature=self.adversarial_temperature
                ).T  # (k, B), detached
                weighted = F.mul(F.neg(F.logsigmoid(F.neg(neg_matrix))), weights)
                neg_loss = F.mean(F.sum(weighted, axis=0))
            else:
                neg_loss = F.neg(F.mean(F.logsigmoid(F.neg(neg_matrix))))
            loss = F.add(pos_loss, neg_loss)
            loss.backward()
            if self.grad_clip:
                nn.clip_grad_norm(self.optimizer.parameters, self.grad_clip)
            self.optimizer.step()
            losses.append(float(loss.data))
        return float(np.mean(losses)) if losses else float("nan")

    @property
    def evaluator(self) -> RankingEvaluator:
        """Shared filtered-ranking evaluator (filter built on first use)."""
        if self._evaluator is None:
            self._evaluator = RankingEvaluator(self.split)
        return self._evaluator

    def fit(self, epochs: int, eval_every: int | None = None,
            eval_part: str = "valid", eval_max_queries: int | None = 200,
            eval_batch_size: int = 128,
            keep_best: bool = True, verbose: bool = False) -> TrainReport:
        """Train for ``epochs`` with the same reporting as OneToNTrainer.

        As there, the ranking filter is built once per ``fit`` and every
        epoch eval shares it; ``eval_batch_size`` bounds the per-call
        score blocks.
        """
        report = TrainReport()
        start = time.perf_counter()
        best_key = -np.inf
        for epoch in range(1, epochs + 1):
            tick = time.perf_counter()
            loss = self.train_epoch()
            report.epoch_seconds.append(time.perf_counter() - tick)
            report.epoch_losses.append(loss)
            if eval_every and (epoch % eval_every == 0 or epoch == epochs):
                metrics = self.evaluator.evaluate(self.model, part=eval_part,
                                                  max_queries=eval_max_queries,
                                                  rng=self.rng,
                                                  batch_size=eval_batch_size)
                report.eval_history.append((epoch, time.perf_counter() - start, metrics))
                key = metrics.hits.get(10, metrics.mrr)
                if keep_best and key > best_key:
                    best_key = key
                    report.best_metrics = metrics
                    if hasattr(self.model, "state_dict"):
                        report.best_state = self.model.state_dict()
                if verbose:  # pragma: no cover
                    print(f"epoch {epoch:3d} loss {loss:.4f} {metrics}")
        if keep_best and report.best_state is not None and hasattr(self.model, "load_state_dict"):
            self.model.load_state_dict(report.best_state)
        return report
