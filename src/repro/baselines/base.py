"""Shared infrastructure for the baseline KG-completion models.

Two training regimes cover all baselines, matching the original codes
the paper used; both run on the unified
:class:`repro.train.TrainingEngine` with a pluggable objective:

* :class:`NegativeSamplingTrainer` (shim over
  :class:`repro.train.NegativeSamplingObjective`) — the RotatE-codebase
  regime (TransE / DistMult / ComplEx / RotatE / a-RotatE / PairRE /
  DualE and the multimodal translational models): positive triples vs
  sampled corruptions under the log-sigmoid loss, optionally with
  self-adversarial negative weighting (Sun et al., 2019).
* :class:`repro.core.trainer.OneToNTrainer` (shim over
  :class:`repro.train.OneToNObjective`) — the ConvE regime (ConvE,
  CompGCN, MKGformer and CamE itself): 1-to-N scoring with BCE.

Every model exposes ``predict_tails(heads, rels) -> (B, num_entities)``
so the evaluation protocol treats all of them identically.  All models
allocate ``2x`` relation embeddings for inverse relations and are
trained on inverse-augmented triples, so head-side queries rank through
``r + num_relations``.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from .. import nn
# ``inference_mode`` lives in repro.nn (so repro.core can use it too) and
# is re-exported here: every baseline ``predict_tails`` must run inside it
# — autograd off, dropout/batch-norm in eval mode — so the pattern
# ``CamE.predict_tails`` established cannot drift.
from ..nn import inference_mode
from ..kg import KGSplit, NegativeSampler
from ..eval import RankingEvaluator
from ..train import NegativeSamplingObjective, TrainingEngine
from ..train.report import TrainReport

__all__ = [
    "TripleScoringModel",
    "EmbeddingModel",
    "NegativeSamplingTrainer",
    "inference_mode",
    "chunked_entity_scores",
]


def chunked_entity_scores(
    num_queries: int,
    num_entities: int,
    dim: int,
    block_fn: Callable[[int, int], np.ndarray],
    dtype: np.dtype | type | None = None,
    budget: int = 4_000_000,
) -> np.ndarray:
    """Fill a ``(num_queries, num_entities)`` score matrix chunk by chunk.

    Translational models materialise a ``(B, C, dim)`` difference tensor
    per candidate chunk; ``budget`` caps that intermediate's element
    count so memory stays bounded at DRKG-MM scale (~100k entities).
    ``block_fn(start, stop)`` returns the scores for candidate columns
    ``[start, stop)``; ``dtype`` selects the inference precision
    (``float32`` halves score-matrix memory on large evals).
    """
    out = np.empty((num_queries, num_entities),
                   dtype=np.float64 if dtype is None else dtype)
    chunk = max(1, budget // max(1, num_queries * dim))
    for start in range(0, num_entities, chunk):
        stop = min(num_entities, start + chunk)
        out[:, start:stop] = block_fn(start, stop)
    return out


class TripleScoringModel(Protocol):
    """Structural type for negative-sampling trainable models."""

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor: ...  # pragma: no cover

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray: ...  # pragma: no cover

    def parameters(self): ...  # pragma: no cover


class EmbeddingModel(nn.Module):
    """Base class holding entity/relation embedding tables.

    Subclasses implement :meth:`triple_scores` (autograd, for training)
    and :meth:`predict_tails` (numpy, inference).  ``relation_factor``
    lets models that need several vectors per relation (PairRE, DualE)
    widen the relation table.

    **Approximate-serving hooks.**  Models whose candidate ranking is a
    fixed metric between a per-``(h, r)`` query vector and the entity
    table opt into ANN candidate generation (:mod:`repro.ann`) by
    setting :attr:`ann_metric` and implementing :meth:`ann_queries`;
    :meth:`ann_vectors` supplies the indexed table (the raw entity
    embedding by default).  Models with a cheap exact per-triple path
    additionally implement ``score_cells(heads, rels, tails)`` — the
    serving layer uses it both to rerank probed candidates exactly and
    to score explicit triples without materialising ``(B, E)`` rows.
    Models that set neither are served through the exact full-row path.
    """

    #: Dtype ``predict_tails`` allocates score matrices in.  ``None``
    #: keeps float64 (exact parity with training math); set to
    #: ``np.float32`` for the inference fast path on large entity sets.
    inference_dtype: np.dtype | type | None = None

    #: ANN index metric this model ranks under (``"l1"`` / ``"l2"`` /
    #: ``"ip"``), or ``None`` when approximate candidate generation is
    #: unsupported and serving must use the exact path.
    ann_metric: str | None = None

    def __init__(self, num_entities: int, num_relations: int, dim: int,
                 rng: np.random.Generator | None = None,
                 relation_factor: int = 1, entity_factor: int = 1) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entity_embedding = nn.Embedding(num_entities, dim * entity_factor, rng=gen)
        self.relation_embedding = nn.Embedding(2 * num_relations,
                                               dim * relation_factor, rng=gen)

    # Subclass hooks ----------------------------------------------------
    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:  # pragma: no cover
        raise NotImplementedError

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def predict_heads(self, tails: np.ndarray, rels: np.ndarray) -> np.ndarray:
        """Score all head candidates for ``(?, r, t)`` queries.

        Uses the inverse-relation convention shared with the evaluator:
        head-side queries rank through ``r + num_relations``.  ``rels``
        must hold *original* relation ids.
        """
        rels = np.asarray(rels)
        if rels.size and rels.max() >= self.num_relations:
            raise ValueError(
                "predict_heads expects original relation ids "
                f"(< {self.num_relations}); got max {int(rels.max())}"
            )
        return self.predict_tails(np.asarray(tails), rels + self.num_relations)

    # Approximate-serving hooks ----------------------------------------
    def ann_vectors(self) -> np.ndarray:
        """The entity-side table an ANN index should be built over.

        Rows must be laid out so that :meth:`ann_queries` vectors are
        directly comparable under :attr:`ann_metric`.
        """
        return self.entity_embedding.weight.data

    def ann_queries(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        """Per-query vectors in :meth:`ann_vectors` layout (``(B, d)``).

        Only meaningful when :attr:`ann_metric` is set; the base class
        has no model-generic query transform.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support ANN candidate generation")

    # Helpers -----------------------------------------------------------
    def _gather(self, triples: np.ndarray) -> tuple[nn.Tensor, nn.Tensor, nn.Tensor]:
        """Embed the head/relation/tail columns of a triple batch."""
        return (
            self.entity_embedding(triples[:, 0]),
            self.relation_embedding(triples[:, 1]),
            self.entity_embedding(triples[:, 2]),
        )


class NegativeSamplingTrainer:
    """Log-sigmoid loss over positive triples and sampled corruptions.

    ``loss = -logsig(f(pos)) - sum_i w_i * logsig(-f(neg_i))`` where
    ``w`` is uniform, or the softmax of negative scores when
    ``self_adversarial`` is on (the a-RotatE / PairRE setting).

    A thin shim over :class:`repro.train.TrainingEngine` with a
    :class:`repro.train.NegativeSamplingObjective`, preserving the
    original constructor/``fit`` surface and bit-identical seeded
    behaviour.  New code should construct the engine directly.
    """

    def __init__(self, model, split: KGSplit, rng: np.random.Generator,
                 lr: float = 0.01, batch_size: int = 256,
                 num_negatives: int = 8, self_adversarial: bool = False,
                 adversarial_temperature: float = 1.0,
                 bernoulli: bool = False, grad_clip: float = 5.0) -> None:
        self.engine = TrainingEngine(
            model, split, rng,
            NegativeSamplingObjective(
                batch_size=batch_size, num_negatives=num_negatives,
                self_adversarial=self_adversarial,
                adversarial_temperature=adversarial_temperature,
                bernoulli=bernoulli),
            lr=lr, grad_clip=grad_clip,
        )

    # Everything below delegates; the shim holds no training state.
    @property
    def model(self):
        return self.engine.model

    @property
    def split(self) -> KGSplit:
        return self.engine.split

    @property
    def rng(self) -> np.random.Generator:
        return self.engine.rng

    @property
    def grad_clip(self) -> float:
        return self.engine.grad_clip

    @property
    def optimizer(self):
        return self.engine.optimizer

    @property
    def batch_size(self) -> int:
        return self.engine.objective.batch_size

    @property
    def num_negatives(self) -> int:
        return self.engine.objective.num_negatives

    @property
    def self_adversarial(self) -> bool:
        return self.engine.objective.self_adversarial

    @property
    def adversarial_temperature(self) -> float:
        return self.engine.objective.adversarial_temperature

    @property
    def train_triples(self) -> np.ndarray:
        return self.engine.train_triples

    @property
    def sampler(self) -> NegativeSampler:
        return self.engine.sampler

    @property
    def evaluator(self) -> RankingEvaluator:
        """Shared filtered-ranking evaluator (filter built on first use)."""
        return self.engine.evaluator

    def train_epoch(self) -> float:
        """One pass over the (inverse-augmented) training triples."""
        return self.engine.train_epoch()

    def fit(self, epochs: int, eval_every: int | None = None,
            eval_part: str = "valid", eval_max_queries: int | None = 200,
            eval_batch_size: int = 128,
            keep_best: bool = True, verbose: bool = False) -> TrainReport:
        """Train for ``epochs`` with the same reporting as OneToNTrainer.

        As there, the ranking filter is built once per engine and every
        epoch eval shares it; ``eval_batch_size`` bounds the per-call
        score blocks.
        """
        return self.engine.fit(epochs, eval_every=eval_every,
                               eval_part=eval_part,
                               eval_max_queries=eval_max_queries,
                               eval_batch_size=eval_batch_size,
                               keep_best=keep_best, verbose=verbose)
