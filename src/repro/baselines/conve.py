"""ConvE (Dettmers et al., 2018).

Head and relation embeddings are reshaped to 2-D maps, stacked, passed
through a convolution and a fully-connected layer, and the result is
matched against all entity embeddings (plus a per-entity bias).  This is
the architecture CamE's RIC/score head generalises, and the strongest
unimodal neural baseline in the paper's Table III.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..core.came import reshape_to_2d_shape

__all__ = ["ConvE"]


class ConvE(nn.Module):
    """ConvE 1-to-N scorer."""

    def __init__(self, num_entities: int, num_relations: int, dim: int = 64,
                 conv_channels: int = 16, kernel_size: int = 3,
                 dropout: float = 0.2, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entity_embedding = nn.Embedding(num_entities, dim, rng=gen)
        self.relation_embedding = nn.Embedding(2 * num_relations, dim, rng=gen)
        self.entity_bias = nn.Parameter(np.zeros(num_entities))
        height, width = reshape_to_2d_shape(dim)
        self.map_shape = (height, width)  # each embedding becomes one map
        pad = kernel_size // 2
        self.conv = nn.Conv2d(2, conv_channels, kernel_size, padding=pad, rng=gen)
        self.bn = nn.BatchNorm2d(conv_channels)
        self.drop = nn.Dropout(dropout, rng=gen)
        self.fc = nn.Linear(conv_channels * height * width, dim, rng=gen)

    def _query(self, heads: np.ndarray, rels: np.ndarray) -> nn.Tensor:
        h = self.entity_embedding(heads)
        r = self.relation_embedding(rels)
        ht, wd = self.map_shape
        stacked = F.concat([
            F.reshape(h, (h.shape[0], 1, ht, wd)),
            F.reshape(r, (r.shape[0], 1, ht, wd)),
        ], axis=1)
        x = F.relu(self.bn(self.conv(stacked)))
        x = self.drop(F.reshape(x, (x.shape[0], -1)))
        return F.relu(self.fc(x))

    def score_queries(self, heads: np.ndarray, rels: np.ndarray,
                      candidates: np.ndarray | None = None) -> nn.Tensor:
        query = self._query(heads, rels)
        if candidates is None:
            scores = F.matmul(query, F.transpose(self.entity_embedding.weight))
            return F.add(scores, self.entity_bias)
        cand = F.embedding(self.entity_embedding.weight, candidates)
        b, k = candidates.shape
        scores = F.reshape(F.matmul(cand, F.reshape(query, (b, -1, 1))), (b, k))
        return F.add(scores, F.index(self.entity_bias, candidates))

    #: See :attr:`repro.baselines.base.EmbeddingModel.inference_dtype`.
    inference_dtype: np.dtype | type | None = None

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with nn.inference_mode(self):
            scores = self.score_queries(heads, rels).data
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores
