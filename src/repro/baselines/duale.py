"""DualE (Cao et al., 2021).

Entities and relations are *dual quaternions* ``q = q_r + eps * q_d``
(eight reals per component block).  A relation acts on the head by
dual-quaternion multiplication, which composes a 3-D rotation with a
translation — unifying the RotatE and TransE geometries.  The relation
is normalised to a *unit* dual quaternion (``|q_r| = 1`` and
``<q_r, q_d> = 0``) before acting, exactly as in the original; the
score is the inner product of the transformed head with the tail.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel, inference_mode

__all__ = ["DualE"]


def _hamilton(a: tuple, b: tuple) -> tuple:
    """Quaternion Hamilton product on component tuples ``(w, x, y, z)``."""
    aw, ax, ay, az = a
    bw, bx, by, bz = b
    return (
        F.sub(F.sub(F.sub(F.mul(aw, bw), F.mul(ax, bx)), F.mul(ay, by)), F.mul(az, bz)),
        F.sub(F.add(F.add(F.mul(aw, bx), F.mul(ax, bw)), F.mul(ay, bz)), F.mul(az, by)),
        F.add(F.sub(F.add(F.mul(aw, by), F.mul(ay, bw)), F.mul(ax, bz)), F.mul(az, bx)),
        F.sub(F.add(F.add(F.mul(aw, bz), F.mul(az, bw)), F.mul(ax, by)), F.mul(ay, bx)),
    )


def _hamilton_np(a, b):
    aw, ax, ay, az = a
    bw, bx, by, bz = b
    return (
        aw * bw - ax * bx - ay * by - az * bz,
        aw * bx + ax * bw + ay * bz - az * by,
        aw * by + ay * bw - ax * bz + az * bx,
        aw * bz + az * bw + ax * by - ay * bx,
    )


class DualE(EmbeddingModel):
    """DualE dual-quaternion scorer.

    ``dim`` counts dual-quaternion blocks; every embedding stores
    ``8 * dim`` reals laid out as eight contiguous component planes
    ``(rw, rx, ry, rz, dw, dx, dy, dz)``.
    """

    COMPONENTS = 8

    def __init__(self, num_entities: int, num_relations: int, dim: int = 8,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng,
                         relation_factor=self.COMPONENTS, entity_factor=self.COMPONENTS)

    def _components(self, x: nn.Tensor) -> tuple:
        d = self.dim
        return tuple(x[:, i * d:(i + 1) * d] for i in range(self.COMPONENTS))

    def _normalized_relation(self, rels: np.ndarray) -> tuple:
        """Unit dual quaternion: normalise q_r, project q_d orthogonal."""
        raw = self.relation_embedding(rels)
        comps = self._components(raw)
        q_r, q_d = comps[:4], comps[4:]
        norm_sq = None
        for c in q_r:
            term = F.mul(c, c)
            norm_sq = term if norm_sq is None else F.add(norm_sq, term)
        inv_norm = F.div(1.0, F.sqrt(F.add(norm_sq, 1e-9)))
        q_r = tuple(F.mul(c, inv_norm) for c in q_r)
        # <q_r, q_d> projection coefficient after normalisation.
        dot = None
        for cr, cd in zip(q_r, q_d):
            term = F.mul(cr, cd)
            dot = term if dot is None else F.add(dot, term)
        q_d = tuple(F.mul(F.sub(cd, F.mul(dot, cr)), inv_norm)
                    for cr, cd in zip(q_r, q_d))
        return q_r + q_d

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        h = self._components(self.entity_embedding(triples[:, 0]))
        t = self._components(self.entity_embedding(triples[:, 2]))
        r = self._normalized_relation(triples[:, 1])
        h_r, h_d = h[:4], h[4:]
        r_r, r_d = r[:4], r[4:]
        # (h_r + eps h_d)(r_r + eps r_d) = h_r r_r + eps(h_r r_d + h_d r_r).
        out_r = _hamilton(h_r, r_r)
        cross1 = _hamilton(h_r, r_d)
        cross2 = _hamilton(h_d, r_r)
        out_d = tuple(F.add(a, b) for a, b in zip(cross1, cross2))
        score = None
        for part, tail_part in zip(out_r + out_d, t):
            term = F.sum(F.mul(part, tail_part), axis=-1)
            score = term if score is None else F.add(score, term)
        return score

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            d = self.dim
            ent = self.entity_embedding.weight.data
            raw = self.relation_embedding.weight.data[rels]
            comps_h = tuple(ent[heads, i * d:(i + 1) * d] for i in range(8))
            comps_r = list(raw[:, i * d:(i + 1) * d] for i in range(8))
            q_r, q_d = comps_r[:4], comps_r[4:]
            norm = np.sqrt(sum(c * c for c in q_r) + 1e-9)
            q_r = [c / norm for c in q_r]
            dot = sum(cr * cd for cr, cd in zip(q_r, q_d))
            q_d = [(cd - dot * cr) / norm for cr, cd in zip(q_r, q_d)]
            out_r = _hamilton_np(comps_h[:4], q_r)
            c1 = _hamilton_np(comps_h[:4], q_d)
            c2 = _hamilton_np(comps_h[4:], q_r)
            out_d = tuple(a + b for a, b in zip(c1, c2))
            query = np.concatenate(out_r + out_d, axis=1)   # (B, 8d)
            scores = query @ ent.T
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores
