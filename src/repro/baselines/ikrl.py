"""IKRL (Xie et al., 2017) adapted to molecular features.

IKRL learns an image-based entity representation alongside the
structure-based one and scores a triple with four TransE-style energies
(ss, ii, si, is) so the two spaces align.  As in the paper's experiment
setup, the "image" modality here is the pre-trained molecule feature
vector (one instance per entity, so the attention-based instance
aggregation of the original is inert); entities without molecules have
zero features, which the learned projection maps into the joint space.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel, chunked_entity_scores, inference_mode

__all__ = ["IKRL"]


class IKRL(EmbeddingModel):
    """IKRL: TransE energies over structural and projected-modal spaces."""

    def __init__(self, num_entities: int, num_relations: int,
                 modal_features: np.ndarray, dim: int = 64, gamma: float = 12.0,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng)
        gen = rng if rng is not None else np.random.default_rng(0)
        self.gamma = gamma
        self.modal_features = modal_features
        self.modal_proj = nn.Linear(modal_features.shape[1], dim, rng=gen)

    def _modal(self, ids: np.ndarray) -> nn.Tensor:
        return self.modal_proj(nn.Tensor(self.modal_features[ids]))

    @staticmethod
    def _energy(h: nn.Tensor, r: nn.Tensor, t: nn.Tensor) -> nn.Tensor:
        return F.sum(F.abs(F.sub(F.add(h, r), t)), axis=-1)

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        h_s, r, t_s = self._gather(triples)
        h_i = self._modal(triples[:, 0])
        t_i = self._modal(triples[:, 2])
        energy = F.add(
            F.add(self._energy(h_s, r, t_s), self._energy(h_i, r, t_i)),
            F.add(self._energy(h_s, r, t_i), self._energy(h_i, r, t_s)),
        )
        return F.sub(self.gamma, F.mul(energy, 0.25))

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            ent = self.entity_embedding.weight.data
            rel = self.relation_embedding.weight.data[rels]
            modal_all = self.modal_proj(nn.Tensor(self.modal_features)).data
            q_s = ent[heads] + rel
            q_i = modal_all[heads] + rel

            def block(start: int, stop: int) -> np.ndarray:
                t_s = ent[start:stop][None]
                t_i = modal_all[start:stop][None]
                energy = (
                    np.abs(q_s[:, None] - t_s).sum(-1) + np.abs(q_i[:, None] - t_i).sum(-1)
                    + np.abs(q_s[:, None] - t_i).sum(-1) + np.abs(q_i[:, None] - t_s).sum(-1)
                )
                return self.gamma - energy / 4.0

            return chunked_entity_scores(len(heads), self.num_entities,
                                         self.dim, block,
                                         dtype=self.inference_dtype,
                                         budget=2_000_000)
