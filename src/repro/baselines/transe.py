"""TransE (Bordes et al., 2013).

Relations are translations: a true triple satisfies ``h + r ~ t``.  The
score is ``gamma - ||h + r - t||_1`` so higher means more plausible.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel

__all__ = ["TransE"]


class TransE(EmbeddingModel):
    """TransE with L1 distance and a fixed margin ``gamma``."""

    def __init__(self, num_entities: int, num_relations: int, dim: int = 64,
                 gamma: float = 12.0, rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng)
        self.gamma = gamma

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        h, r, t = self._gather(triples)
        distance = F.sum(F.abs(F.sub(F.add(h, r), t)), axis=-1)
        return F.sub(self.gamma, distance)

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        ent = self.entity_embedding.weight.data
        rel = self.relation_embedding.weight.data
        query = ent[heads] + rel[rels]                       # (B, d)
        # Chunk over candidates to bound the (B, E, d) intermediate.
        scores = np.empty((len(heads), self.num_entities))
        chunk = max(1, 4_000_000 // (len(heads) * self.dim))
        for start in range(0, self.num_entities, chunk):
            block = ent[start:start + chunk]                 # (C, d)
            dist = np.abs(query[:, None, :] - block[None, :, :]).sum(axis=-1)
            scores[:, start:start + chunk] = self.gamma - dist
        return scores
