"""TransE (Bordes et al., 2013).

Relations are translations: a true triple satisfies ``h + r ~ t``.  The
score is ``gamma - ||h + r - t||_1`` so higher means more plausible.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel, chunked_entity_scores, inference_mode

__all__ = ["TransE"]


class TransE(EmbeddingModel):
    """TransE with L1 distance and a fixed margin ``gamma``."""

    #: Candidate ranking is the L1 distance between ``h + r`` and the
    #: raw entity table, so an "l1" ANN index serves it directly.
    ann_metric = "l1"

    def __init__(self, num_entities: int, num_relations: int, dim: int = 64,
                 gamma: float = 12.0, rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng)
        self.gamma = gamma

    def ann_queries(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        ent = self.entity_embedding.weight.data
        rel = self.relation_embedding.weight.data
        return ent[np.asarray(heads, dtype=np.int64)] + rel[np.asarray(rels, dtype=np.int64)]

    def score_cells(self, heads: np.ndarray, rels: np.ndarray,
                    tails: np.ndarray) -> np.ndarray:
        """Exact scores for explicit cells, bit-identical to the
        corresponding :meth:`predict_tails` row entries (same float64
        operations in the same reduction order)."""
        with inference_mode(self):
            ent = self.entity_embedding.weight.data
            query = self.ann_queries(heads, rels)
            scores = self.gamma - np.abs(query - ent[np.asarray(tails, np.int64)]).sum(axis=-1)
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        h, r, t = self._gather(triples)
        distance = F.sum(F.abs(F.sub(F.add(h, r), t)), axis=-1)
        return F.sub(self.gamma, distance)

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            ent = self.entity_embedding.weight.data
            rel = self.relation_embedding.weight.data
            query = ent[heads] + rel[rels]                   # (B, d)

            def block(start: int, stop: int) -> np.ndarray:
                diff = np.abs(query[:, None, :] - ent[None, start:stop, :])
                return self.gamma - diff.sum(axis=-1)

            # Chunk over candidates to bound the (B, C, d) intermediate.
            return chunked_entity_scores(len(heads), self.num_entities,
                                         self.dim, block,
                                         dtype=self.inference_dtype)
