"""TransE (Bordes et al., 2013).

Relations are translations: a true triple satisfies ``h + r ~ t``.  The
score is ``gamma - ||h + r - t||_1`` so higher means more plausible.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel, chunked_entity_scores, inference_mode

__all__ = ["TransE"]


class TransE(EmbeddingModel):
    """TransE with L1 distance and a fixed margin ``gamma``."""

    def __init__(self, num_entities: int, num_relations: int, dim: int = 64,
                 gamma: float = 12.0, rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng)
        self.gamma = gamma

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        h, r, t = self._gather(triples)
        distance = F.sum(F.abs(F.sub(F.add(h, r), t)), axis=-1)
        return F.sub(self.gamma, distance)

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            ent = self.entity_embedding.weight.data
            rel = self.relation_embedding.weight.data
            query = ent[heads] + rel[rels]                   # (B, d)

            def block(start: int, stop: int) -> np.ndarray:
                diff = np.abs(query[:, None, :] - ent[None, start:stop, :])
                return self.gamma - diff.sum(axis=-1)

            # Chunk over candidates to bound the (B, C, d) intermediate.
            return chunked_entity_scores(len(heads), self.num_entities,
                                         self.dim, block,
                                         dtype=self.inference_dtype)
