"""DistMult (Yang et al., 2015).

Bilinear scoring with a diagonal relation matrix:
``f(h, r, t) = <h, r, t> = sum_i h_i * r_i * t_i``.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel, inference_mode

__all__ = ["DistMult"]


class DistMult(EmbeddingModel):
    """DistMult trilinear-product scorer."""

    #: Candidate ranking is the inner product of ``h * r`` with the raw
    #: entity table — maximum-inner-product ANN search.
    ann_metric = "ip"

    def __init__(self, num_entities: int, num_relations: int, dim: int = 64,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng)

    def ann_queries(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        ent = self.entity_embedding.weight.data
        rel = self.relation_embedding.weight.data
        return ent[np.asarray(heads, dtype=np.int64)] * rel[np.asarray(rels, dtype=np.int64)]

    def score_cells(self, heads: np.ndarray, rels: np.ndarray,
                    tails: np.ndarray) -> np.ndarray:
        """Exact per-cell trilinear products.

        Mathematically identical to gathering the :meth:`predict_tails`
        row, evaluated as a per-row dot product rather than a GEMM
        column (may differ in the last float64 ulp).
        """
        with inference_mode(self):
            ent = self.entity_embedding.weight.data
            query = self.ann_queries(heads, rels)
            scores = np.einsum("bd,bd->b", query, ent[np.asarray(tails, np.int64)])
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        h, r, t = self._gather(triples)
        return F.sum(F.mul(F.mul(h, r), t), axis=-1)

    def score_queries(self, heads: np.ndarray, rels: np.ndarray,
                      candidates: np.ndarray | None = None) -> nn.Tensor:
        """1-to-N scoring (DistMult also trains well in the ConvE regime)."""
        h = self.entity_embedding(heads)
        r = self.relation_embedding(rels)
        query = F.mul(h, r)
        if candidates is None:
            return F.matmul(query, F.transpose(self.entity_embedding.weight))
        cand = F.embedding(self.entity_embedding.weight, candidates)
        b, k = candidates.shape
        return F.reshape(F.matmul(cand, F.reshape(query, (b, -1, 1))), (b, k))

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            ent = self.entity_embedding.weight.data
            rel = self.relation_embedding.weight.data
            scores = (ent[heads] * rel[rels]) @ ent.T
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores
