"""TransAE (Wang et al., 2019).

A multimodal autoencoder compresses the concatenated modality features
into the entity representation used by a TransE score; the training
objective adds the autoencoder's reconstruction error to the
translation loss.  As the paper notes, TransAE "essentially still adopts
the score function of TransE and is difficult to handle complex
interactions" — it is the weakest multimodal baseline in Table III.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import EmbeddingModel, chunked_entity_scores, inference_mode

__all__ = ["TransAE"]


class TransAE(EmbeddingModel):
    """TransE over autoencoded multimodal entity representations."""

    def __init__(self, num_entities: int, num_relations: int,
                 text_features: np.ndarray, modal_features: np.ndarray,
                 dim: int = 64, gamma: float = 12.0,
                 reconstruction_weight: float = 0.1,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(num_entities, num_relations, dim, rng=rng)
        gen = rng if rng is not None else np.random.default_rng(0)
        self.gamma = gamma
        self.reconstruction_weight = reconstruction_weight
        self.multimodal = np.concatenate([text_features, modal_features], axis=1)
        in_dim = self.multimodal.shape[1]
        self.encoder = nn.Sequential(
            nn.Linear(in_dim, dim * 2, rng=gen), nn.Tanh(),
            nn.Linear(dim * 2, dim, rng=gen),
        )
        self.decoder = nn.Sequential(
            nn.Linear(dim, dim * 2, rng=gen), nn.Tanh(),
            nn.Linear(dim * 2, in_dim, rng=gen),
        )

    def _encode(self, ids: np.ndarray) -> nn.Tensor:
        return self.encoder(nn.Tensor(self.multimodal[ids]))

    def reconstruction_loss(self, ids: np.ndarray) -> nn.Tensor:
        """Mean squared reconstruction error of the autoencoder."""
        inputs = nn.Tensor(self.multimodal[ids])
        recon = self.decoder(self.encoder(inputs))
        diff = F.sub(recon, inputs)
        return F.mean(F.mul(diff, diff))

    def triple_scores(self, triples: np.ndarray) -> nn.Tensor:
        """TransE score on encoded entities, minus weighted recon error.

        Folding the reconstruction term into the score lets the generic
        :class:`~repro.baselines.base.NegativeSamplingTrainer` optimise
        both objectives without a bespoke loop: the subtraction pushes
        the score of *positives* up only when reconstruction is good.
        """
        h = self._encode(triples[:, 0])
        t = self._encode(triples[:, 2])
        r = self.relation_embedding(triples[:, 1])
        distance = F.sum(F.abs(F.sub(F.add(h, r), t)), axis=-1)
        score = F.sub(self.gamma, distance)
        ids = np.unique(triples[:, [0, 2]])
        recon = self.reconstruction_loss(ids)
        return F.sub(score, F.mul(recon, self.reconstruction_weight))

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            encoded = self.encoder(nn.Tensor(self.multimodal)).data
            rel = self.relation_embedding.weight.data[rels]
            query = encoded[heads] + rel

            def block(start: int, stop: int) -> np.ndarray:
                diff = np.abs(query[:, None, :] - encoded[None, start:stop])
                return self.gamma - diff.sum(-1)

            return chunked_entity_scores(len(heads), self.num_entities,
                                         self.dim, block,
                                         dtype=self.inference_dtype)
