"""MKGformer "M-Encoder" approximation (Chen et al., 2022).

The paper cannot run full MKGformer on biological data (its ViT vision
tower is coupled to natural-image pre-training), so it reproduces the
core "M-Encoder" — a Prefix-guided Interaction Module (PGI) plus a
Correlation-aware Fusion module (CAF) — and plugs it into the same
surrounding framework in place of CamE's MMF/RIC.  We do the same:

* **PGI**: the textual representation queries the molecular
  representation; a learned gate mixes the modal "prefix" into the text
  stream (coarse-grained interaction).
* **CAF**: fine-grained correlation between the two streams is
  estimated per dimension (sigmoid of an elementwise bilinear term) and
  used to weight the fused representation.

The fused multimodal entity vector then enters a ConvE-style decoder
with the relation embedding, trained 1-to-N.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..core.came import reshape_to_2d_shape

__all__ = ["MKGformer"]


class MKGformer(nn.Module):
    """M-Encoder fusion + ConvE decoder, 1-to-N trainable."""

    def __init__(self, num_entities: int, num_relations: int,
                 text_features: np.ndarray, modal_features: np.ndarray,
                 structural_features: np.ndarray, dim: int = 64,
                 conv_channels: int = 16, kernel_size: int = 3,
                 dropout: float = 0.2, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.text_features = text_features
        self.modal_features = modal_features
        self.structural_features = structural_features

        self.text_proj = nn.Linear(text_features.shape[1], dim, rng=gen)
        self.modal_proj = nn.Linear(modal_features.shape[1], dim, rng=gen)
        self.struct_proj = nn.Linear(structural_features.shape[1], dim, rng=gen)
        # PGI: gate computed from both streams decides how much modal
        # prefix enters the text stream.
        self.pgi_gate = nn.Linear(2 * dim, dim, rng=gen)
        # CAF: per-dimension correlation weighting of the fused vector.
        self.caf_text = nn.Linear(dim, dim, bias=False, rng=gen)
        self.caf_modal = nn.Linear(dim, dim, bias=False, rng=gen)
        self.fuse_out = nn.Linear(2 * dim, dim, rng=gen)

        self.relation_embedding = nn.Embedding(2 * num_relations, dim, rng=gen)
        self.entity_embedding = nn.Embedding(num_entities, dim, rng=gen)
        self.entity_bias = nn.Parameter(np.zeros(num_entities))

        height, width = reshape_to_2d_shape(dim)
        self.map_shape = (height, width)
        pad = kernel_size // 2
        self.conv = nn.Conv2d(3, conv_channels, kernel_size, padding=pad, rng=gen)
        self.bn = nn.BatchNorm2d(conv_channels)
        self.drop = nn.Dropout(dropout, rng=gen)
        self.fc = nn.Linear(conv_channels * height * width, dim, rng=gen)

    def m_encoder(self, ids: np.ndarray) -> nn.Tensor:
        """Fused multimodal entity representation (PGI + CAF)."""
        text = F.tanh(self.text_proj(nn.Tensor(self.text_features[ids])))
        modal = F.tanh(self.modal_proj(nn.Tensor(self.modal_features[ids])))
        struct = F.tanh(self.struct_proj(nn.Tensor(self.structural_features[ids])))
        # PGI: prefix-guided interaction, text attends to the modal prefix.
        gate = F.sigmoid(self.pgi_gate(F.concat([text, modal], axis=-1)))
        text_guided = F.add(F.mul(gate, modal), F.mul(F.sub(1.0, gate), text))
        # CAF: correlation-aware fusion weighting.
        correlation = F.sigmoid(F.mul(self.caf_text(text_guided), self.caf_modal(modal)))
        fused = F.mul(correlation, F.add(text_guided, modal))
        return self.fuse_out(F.concat([fused, struct], axis=-1))

    def _query(self, heads: np.ndarray, rels: np.ndarray) -> nn.Tensor:
        fused = self.m_encoder(heads)
        ent = self.entity_embedding(heads)
        rel = self.relation_embedding(rels)
        ht, wd = self.map_shape
        stacked = F.concat([
            F.reshape(fused, (fused.shape[0], 1, ht, wd)),
            F.reshape(ent, (ent.shape[0], 1, ht, wd)),
            F.reshape(rel, (rel.shape[0], 1, ht, wd)),
        ], axis=1)
        x = F.relu(self.bn(self.conv(stacked)))
        x = self.drop(F.reshape(x, (x.shape[0], -1)))
        return F.relu(self.fc(x))

    def score_queries(self, heads: np.ndarray, rels: np.ndarray,
                      candidates: np.ndarray | None = None) -> nn.Tensor:
        query = self._query(heads, rels)
        if candidates is None:
            scores = F.matmul(query, F.transpose(self.entity_embedding.weight))
            return F.add(scores, self.entity_bias)
        cand = F.embedding(self.entity_embedding.weight, candidates)
        b, k = candidates.shape
        scores = F.reshape(F.matmul(cand, F.reshape(query, (b, -1, 1))), (b, k))
        return F.add(scores, F.index(self.entity_bias, candidates))

    #: See :attr:`repro.baselines.base.EmbeddingModel.inference_dtype`.
    inference_dtype: np.dtype | type | None = None

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with nn.inference_mode(self):
            scores = self.score_queries(heads, rels).data
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores
