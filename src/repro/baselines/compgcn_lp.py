"""CompGCN as a link-prediction baseline (Vashishth et al., 2020).

Wraps :class:`repro.gnn.CompGCNEncoder` with a DistMult decoder behind
the 1-to-N training interface.  Message passing runs over (a capped
subset of) the training edges each forward pass; inference caches the
propagated embeddings.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..gnn import CompGCNEncoder, as_relational_graph
from ..graph import GraphData
from .base import inference_mode

__all__ = ["CompGCNLinkPredictor"]


class CompGCNLinkPredictor(nn.Module):
    """CompGCN encoder + DistMult decoder, 1-to-N trainable.

    Parameters
    ----------
    train_triples:
        Edges used for message passing (original direction only; the
        layer handles both directions internally).
    max_message_edges:
        Cap on edges sampled per forward pass, bounding CPU cost.
    """

    def __init__(self, num_entities: int, num_relations: int,
                 train_triples: np.ndarray, dim: int = 32,
                 num_layers: int = 1, composition: str = "sub",
                 max_message_edges: int = 4000,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.num_entities = num_entities
        self.num_relations = num_relations
        # The encoder needs embeddings for inverse relations too because
        # the 1-to-N protocol trains on inverse-augmented triples.
        self.encoder = CompGCNEncoder(num_entities, 2 * num_relations, dim=dim,
                                      num_layers=num_layers,
                                      composition=composition, rng=gen)
        self.entity_bias = nn.Parameter(np.zeros(num_entities))
        self._train_triples = train_triples
        self._max_edges = max_message_edges
        self._rng = gen
        self._cached: tuple[np.ndarray, np.ndarray] | None = None
        # Fixed message graphs, converted to the shared CSR GraphData
        # form exactly once.  When the training set fits under the cap
        # the same GraphData serves every forward pass; the inference
        # graph (deterministic first-N cap, so predictions are stable
        # across calls) is likewise built once.
        self._full_graph: GraphData | None = (
            as_relational_graph(train_triples, num_entities)
            if len(train_triples) <= max_message_edges else None
        )
        self._infer_graph: GraphData | None = None

    def _message_edges(self) -> "np.ndarray | GraphData":
        if self._full_graph is not None:
            return self._full_graph
        idx = self._rng.choice(len(self._train_triples), self._max_edges, replace=False)
        return self._train_triples[idx]

    def score_queries(self, heads: np.ndarray, rels: np.ndarray,
                      candidates: np.ndarray | None = None) -> nn.Tensor:
        self._cached = None  # parameters are changing; invalidate cache
        ent, rel = self.encoder(self._message_edges())
        h = F.index(ent, heads)
        r = F.index(rel, rels)
        query = F.mul(h, r)
        if candidates is None:
            scores = F.matmul(query, F.transpose(ent))
            return F.add(scores, self.entity_bias)
        b, k = candidates.shape
        cand = F.index(ent, candidates)
        scores = F.reshape(F.matmul(cand, F.reshape(query, (b, -1, 1))), (b, k))
        return F.add(scores, F.index(self.entity_bias, candidates))

    #: See :attr:`repro.baselines.base.EmbeddingModel.inference_dtype`.
    inference_dtype: np.dtype | type | None = None

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        with inference_mode(self):
            if self._cached is None:
                if self._infer_graph is None:
                    self._infer_graph = (self._full_graph if self._full_graph is not None
                                         else as_relational_graph(
                                             self._train_triples[: self._max_edges],
                                             self.num_entities))
                ent, rel = self.encoder(self._infer_graph)
                self._cached = (ent.data.copy(), rel.data.copy())
            ent, rel = self._cached
            query = ent[heads] * rel[rels]
            scores = query @ ent.T + self.entity_bias.data
            if self.inference_dtype is not None:
                scores = scores.astype(self.inference_dtype, copy=False)
            return scores
