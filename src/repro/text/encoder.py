"""Character-level text encoders.

The paper feeds entity names/descriptions through CharacterBERT (BERT
for OMAHA's Chinese text) and consumes the resulting fixed vectors.  We
provide two stand-ins that operate at the same character granularity:

* :class:`NgramHashEncoder` — a deterministic hashed character-n-gram
  bag projected to the target dimension.  Like CharacterBERT, names that
  share morphemes ("-cillin", "Sulfa-") land close together; it needs no
  training and is the fast default for dataset feature building.
* :class:`CharCNNEncoder` — a trainable character CNN (embedding ->
  multi-width convolutions -> max-over-time pooling -> projection), the
  classic char-level encoder, pre-trainable with masked-character
  modelling (:mod:`repro.text.pretrain`).
"""

from __future__ import annotations

import zlib

import numpy as np

from .. import nn
from ..nn import functional as F
from .vocab import CharVocab

__all__ = ["NgramHashEncoder", "CharCNNEncoder"]


class NgramHashEncoder:
    """Hashed character n-gram featuriser with a fixed random projection.

    Parameters
    ----------
    dim:
        Output embedding dimension.
    n_values:
        N-gram sizes to extract (with boundary markers, so affixes like
        ``"cillin$"`` become dedicated features).
    n_buckets:
        Width of the hashed count vector before projection.
    seed:
        Seed of the (fixed) Gaussian projection matrix.
    """

    def __init__(self, dim: int = 32, n_values: tuple[int, ...] = (3, 4, 5),
                 n_buckets: int = 2048, seed: int = 13) -> None:
        self.dim = dim
        self.n_values = n_values
        self.n_buckets = n_buckets
        rng = np.random.default_rng(seed)
        self._projection = rng.normal(0.0, 1.0 / np.sqrt(n_buckets), size=(n_buckets, dim))

    def _counts(self, text: str) -> np.ndarray:
        marked = f"^{text.lower()}$"
        counts = np.zeros(self.n_buckets)
        for n in self.n_values:
            for i in range(max(0, len(marked) - n + 1)):
                gram = marked[i:i + n]
                # zlib.crc32 is stable across processes (unlike hash()),
                # keeping features reproducible run to run.
                counts[zlib.crc32(gram.encode()) % self.n_buckets] += 1.0
        total = counts.sum()
        if total > 0:
            counts /= np.sqrt(total)
        return counts

    def encode(self, texts: list[str]) -> np.ndarray:
        """Embed ``texts`` to ``(B, dim)``."""
        if not texts:
            return np.zeros((0, self.dim))
        counts = np.stack([self._counts(t) for t in texts])
        return counts @ self._projection


class CharCNNEncoder(nn.Module):
    """Character CNN producing fixed-size text embeddings.

    Architecture: char embedding ``(L, d_char)`` -> parallel width-k
    convolutions (as dense maps over unfolded windows) -> ReLU ->
    max-over-time pooling -> linear projection to ``dim``.
    """

    def __init__(self, vocab: CharVocab, dim: int = 32, char_dim: int = 16,
                 kernel_widths: tuple[int, ...] = (3, 5), channels: int = 16,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.vocab = vocab
        self.dim = dim
        self.char_dim = char_dim
        self.kernel_widths = kernel_widths
        self.channels = channels
        self.char_embedding = nn.Embedding(len(vocab), char_dim, rng=gen)
        self.kernels = nn.ModuleList(
            [nn.Linear(w * char_dim, channels, rng=gen) for w in kernel_widths]
        )
        self.out_proj = nn.Linear(channels * len(kernel_widths), dim, rng=gen)

    def _windows(self, emb: nn.Tensor, width: int) -> nn.Tensor:
        """Unfold ``(B, L, d)`` char embeddings into width-``width`` windows."""
        b, length, d = emb.shape
        num = length - width + 1
        data = emb.data
        strides = (data.strides[0], data.strides[1], data.strides[1], data.strides[2])
        view = np.lib.stride_tricks.as_strided(
            data, shape=(b, num, width, d), strides=strides
        ).reshape(b, num, width * d)

        parent = emb

        def backward(grad: np.ndarray) -> None:
            g = grad.reshape(b, num, width, d)
            buf = np.zeros((b, length, d))
            for k in range(width):
                buf[:, k:k + num] += g[:, :, k]
            parent._accumulate(buf)

        return nn.Tensor.make(view.copy(), (parent,), backward)

    def token_states(self, char_ids: np.ndarray) -> list[nn.Tensor]:
        """Per-kernel pre-pooling feature maps (used by pre-training)."""
        emb = self.char_embedding(char_ids)
        return [F.relu(kernel(self._windows(emb, w)))
                for kernel, w in zip(self.kernels, self.kernel_widths)]

    def forward(self, char_ids: np.ndarray) -> nn.Tensor:
        """Embed ``(B, L)`` char-id batches to ``(B, dim)``."""
        pooled = [F.max(states, axis=1) for states in self.token_states(char_ids)]
        return self.out_proj(F.concat(pooled, axis=1))

    def encode(self, texts: list[str]) -> np.ndarray:
        """Inference-mode embeddings for raw strings."""
        if not texts:
            return np.zeros((0, self.dim))
        ids = self.vocab.encode_batch(texts)
        with nn.no_grad():
            return self.forward(ids).data
