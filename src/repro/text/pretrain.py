"""Masked-character pre-training for the CharCNN encoder.

A lightweight analogue of CharacterBERT's masked-language objective:
random characters in each string are replaced with the MASK id and the
encoder must recover them from a contextual window representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import functional as F
from .encoder import CharCNNEncoder

__all__ = ["MaskedCharPretrainer", "TextPretrainResult"]


@dataclass
class TextPretrainResult:
    """Loss/accuracy trace from masked-character pre-training."""

    losses: list[float]
    accuracies: list[float]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


class MaskedCharPretrainer:
    """Pre-train a :class:`CharCNNEncoder` by masked-character recovery.

    The prediction head reads the first convolutional feature map at the
    masked position's window and classifies the hidden character.
    """

    def __init__(self, encoder: CharCNNEncoder, rng: np.random.Generator,
                 mask_rate: float = 0.15, lr: float = 0.01) -> None:
        if not 0.0 < mask_rate < 1.0:
            raise ValueError("mask_rate must be in (0, 1)")
        self.encoder = encoder
        self.rng = rng
        self.mask_rate = mask_rate
        self.head = nn.Linear(encoder.channels, len(encoder.vocab), rng=rng)
        params = list(encoder.parameters()) + list(self.head.parameters())
        self.optimizer = nn.Adam(params, lr=lr)

    def train(self, texts: list[str], epochs: int = 3, batch_size: int = 32) -> TextPretrainResult:
        """Run pre-training over ``texts``; returns the loss trace."""
        vocab = self.encoder.vocab
        encoded = vocab.encode_batch(texts)
        losses, accuracies = [], []
        for _ in range(epochs):
            order = self.rng.permutation(len(texts))
            epoch_losses, epoch_accs = [], []
            for start in range(0, len(order), batch_size):
                batch = encoded[order[start:start + batch_size]]
                loss, acc = self._step(batch)
                epoch_losses.append(loss)
                epoch_accs.append(acc)
            losses.append(float(np.mean(epoch_losses)))
            accuracies.append(float(np.mean(epoch_accs)))
        return TextPretrainResult(losses=losses, accuracies=accuracies)

    def _step(self, char_ids: np.ndarray) -> tuple[float, float]:
        vocab = self.encoder.vocab
        width = self.encoder.kernel_widths[0]
        batch, length = char_ids.shape
        lengths = (char_ids != vocab.PAD).sum(axis=1)

        corrupted = char_ids.copy()
        rows, cols, targets = [], [], []
        for b in range(batch):
            usable = max(int(lengths[b]) - width, 1)
            n_mask = max(1, int(usable * self.mask_rate))
            positions = self.rng.choice(usable, size=min(n_mask, usable), replace=False)
            for pos in positions:
                rows.append(b)
                cols.append(int(pos))
                targets.append(int(char_ids[b, pos]))
                corrupted[b, pos] = vocab.MASK
        targets_arr = np.asarray(targets, dtype=np.int64)

        self.optimizer.zero_grad()
        states = self.encoder.token_states(corrupted)[0]  # (B, L-w+1, channels)
        picked = F.index(states, (np.asarray(rows), np.asarray(cols)))
        logits = self.head(picked)
        loss = F.cross_entropy(logits, targets_arr)
        loss.backward()
        self.optimizer.step()
        accuracy = float((logits.data.argmax(axis=1) == targets_arr).mean())
        return float(loss.data), accuracy
