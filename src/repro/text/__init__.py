"""``repro.text`` — textual-description substrate.

Biomedical name/description lexicon (:mod:`repro.text.lexicon`),
character vocabulary (:mod:`repro.text.vocab`), two character-level
encoders replacing CharacterBERT (:mod:`repro.text.encoder`), and a
masked-character pre-trainer (:mod:`repro.text.pretrain`).
"""

from .encoder import CharCNNEncoder, NgramHashEncoder
from .lexicon import (
    DISEASE_FAMILIES,
    GENE_FAMILIES,
    SIDE_EFFECTS,
    disease_description,
    disease_name,
    drug_stem,
    gene_description,
    gene_symbol,
    side_effect_description,
)
from .pretrain import MaskedCharPretrainer, TextPretrainResult
from .vocab import CharVocab

__all__ = [
    "CharVocab",
    "NgramHashEncoder",
    "CharCNNEncoder",
    "MaskedCharPretrainer",
    "TextPretrainResult",
    "GENE_FAMILIES",
    "DISEASE_FAMILIES",
    "SIDE_EFFECTS",
    "drug_stem",
    "gene_symbol",
    "disease_name",
    "gene_description",
    "disease_description",
    "side_effect_description",
]
