"""Name/description lexicon for the synthetic biological corpus.

Entity names follow real biomedical morphology so the textual modality
carries the same signal the paper highlights: drug names embed their
class affix ("-cillin", "Sulfa-", "-olol", ...), gene symbols look like
HGNC identifiers, diseases carry Latin/Greek suffixes ("-itis", "-oma"),
and side effects use plain clinical vocabulary.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GENE_FAMILIES",
    "DISEASE_FAMILIES",
    "SIDE_EFFECTS",
    "drug_stem",
    "gene_symbol",
    "disease_name",
    "gene_description",
    "disease_description",
    "side_effect_description",
]

#: Gene family descriptors, indexed by the ids scaffolds point at.
GENE_FAMILIES: tuple[tuple[str, str], ...] = (
    ("PBP", "penicillin binding protein involved in bacterial cell wall synthesis"),
    ("GYR", "DNA gyrase subunit essential for bacterial replication"),
    ("DHF", "dihydrofolate reductase enzyme of the folate pathway"),
    ("ADR", "adrenergic receptor mediating sympathetic signalling"),
    ("GAB", "GABA receptor subunit of inhibitory neurotransmission"),
    ("HMG", "HMG-CoA reductase controlling cholesterol biosynthesis"),
    ("ACE", "angiotensin converting enzyme of the renin-angiotensin system"),
    ("SLC", "solute carrier transporter across the cell membrane"),
    ("AGT", "angiotensin receptor regulating vascular tone"),
    ("CYP", "cytochrome P450 oxidase of hepatic drug metabolism"),
)

#: Disease family descriptors: (suffix pool, descriptive phrase).
DISEASE_FAMILIES: tuple[tuple[tuple[str, ...], str], ...] = (
    (("itis", "osis", "emia"), "a bacterial infection of tissue"),
    (("uria", "itis"), "an inflammatory disorder of the urinary tract"),
    (("cardia", "tension"), "a disorder of heart rhythm and vascular pressure"),
    (("phrenia", "epsy", "algia"), "a chronic disorder of the central nervous system"),
    (("sterolemia", "pathy"), "a metabolic disorder of lipids and circulation"),
)

#: Side-effect vocabulary.
SIDE_EFFECTS: tuple[str, ...] = (
    "nausea", "headache", "dizziness", "rash", "fatigue", "insomnia",
    "hypotension", "bradycardia", "dry mouth", "tremor", "diarrhea",
    "photosensitivity", "cough", "myalgia", "drowsiness", "pruritus",
)

_DRUG_SYLLABLES = (
    "am", "ox", "pen", "flu", "cef", "dor", "val", "lor", "met", "pro",
    "ate", "nor", "tri", "clo", "eri", "gen", "hy", "ket", "lin", "mo",
)

_DISEASE_ROOTS = (
    "nephr", "hepat", "card", "neur", "derm", "arthr", "gastr", "pulmon",
    "encephal", "my", "oste", "vascul", "bronch", "col", "cyst",
)


def drug_stem(rng: np.random.Generator) -> str:
    """Random pronounceable drug-name stem like ``Amoxi`` or ``Cloder``."""
    n = int(rng.integers(2, 4))
    parts = [str(rng.choice(_DRUG_SYLLABLES)) for _ in range(n)]
    stem = "".join(parts)
    return stem.capitalize()


def gene_symbol(family_idx: int, rng: np.random.Generator) -> str:
    """HGNC-style gene symbol, e.g. ``ADR2B``."""
    prefix = GENE_FAMILIES[family_idx % len(GENE_FAMILIES)][0]
    return f"{prefix}{int(rng.integers(1, 30))}{str(rng.choice(list('ABCD')))}"


def disease_name(family_idx: int, rng: np.random.Generator) -> str:
    """Disease name with a family-characteristic suffix, e.g. ``Nephritis``."""
    suffixes, _ = DISEASE_FAMILIES[family_idx % len(DISEASE_FAMILIES)]
    root = str(rng.choice(_DISEASE_ROOTS))
    suffix = str(rng.choice(list(suffixes)))
    return f"{root}{suffix}".capitalize()


def gene_description(family_idx: int, symbol: str) -> str:
    """One-sentence gene description."""
    _, phrase = GENE_FAMILIES[family_idx % len(GENE_FAMILIES)]
    return f"{symbol} encodes a {phrase}."


def disease_description(family_idx: int, name: str) -> str:
    """One-sentence disease description."""
    _, phrase = DISEASE_FAMILIES[family_idx % len(DISEASE_FAMILIES)]
    return f"{name} is {phrase}."


def side_effect_description(name: str) -> str:
    """One-sentence side-effect description."""
    return f"{name.capitalize()} is an adverse reaction reported after drug exposure."
