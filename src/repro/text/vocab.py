"""Character vocabulary for the text encoder."""

from __future__ import annotations

import numpy as np

__all__ = ["CharVocab"]

_DEFAULT_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789 -.,"


class CharVocab:
    """Fixed character vocabulary with PAD=0, UNK=1, MASK=2.

    Text is lower-cased; unknown characters map to UNK.  Encoding pads or
    truncates to ``max_len`` so batches are rectangular.
    """

    PAD = 0
    UNK = 1
    MASK = 2

    def __init__(self, alphabet: str = _DEFAULT_ALPHABET, max_len: int = 96) -> None:
        self.alphabet = alphabet
        self.max_len = max_len
        self._char_to_id = {c: i + 3 for i, c in enumerate(alphabet)}

    def __len__(self) -> int:
        return len(self.alphabet) + 3

    def encode(self, text: str) -> np.ndarray:
        """Encode ``text`` into a fixed-length int array."""
        ids = np.zeros(self.max_len, dtype=np.int64)
        for i, ch in enumerate(text.lower()[: self.max_len]):
            ids[i] = self._char_to_id.get(ch, self.UNK)
        return ids

    def encode_batch(self, texts: list[str]) -> np.ndarray:
        """Encode a list of strings into a ``(B, max_len)`` array."""
        return np.stack([self.encode(t) for t in texts]) if texts else \
            np.zeros((0, self.max_len), dtype=np.int64)

    def decode(self, ids: np.ndarray) -> str:
        """Best-effort inverse of :meth:`encode` (PAD dropped, UNK = '?')."""
        rev = {v: k for k, v in self._char_to_id.items()}
        chars = []
        for idx in ids:
            idx = int(idx)
            if idx == self.PAD:
                break
            chars.append(rev.get(idx, "?" if idx == self.UNK else "#"))
        return "".join(chars)
