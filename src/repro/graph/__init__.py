"""``repro.graph`` — the unified CSR graph substrate.

One :class:`GraphData` structure (typed edges, node/edge feature views,
cached forward/reverse CSR adjacency, disjoint-union batching, sparse
export) shared by the three graph stacks of the paper — the KG triple
store (:meth:`repro.kg.KnowledgeGraph.to_graph`), molecular graphs
(:meth:`repro.mol.Molecule.to_graph`), and CompGCN message passing —
plus the CSR builders (:mod:`repro.graph.csr`) reused by the filtered-
ranking evaluator and the IVF index, and the ``gather -> transform ->
scatter`` kernels (:mod:`repro.graph.kernels`) under GIN and CompGCN.
"""

from .csr import build_csr, counts_to_indptr, pack_csr_rows
from .data import CSRAdjacency, GraphData
from .kernels import gather_scatter, propagate, readout

__all__ = [
    "GraphData",
    "CSRAdjacency",
    "build_csr",
    "counts_to_indptr",
    "pack_csr_rows",
    "gather_scatter",
    "propagate",
    "readout",
]
