"""The unified graph container shared by the KG, molecule, and GNN stacks.

A :class:`GraphData` is a directed multigraph held as flat numpy arrays:
``src``/``dst`` endpoint columns, an optional integer ``edge_type``
column (bond orders for molecules, relation ids for KGs), and named
node/edge feature matrices.  Adjacency is derived on demand as cached
CSR views in either direction (:class:`CSRAdjacency`), and a batch of
graphs is just one :class:`GraphData` whose ``graph_ids`` column says
which member graph each node belongs to — the PyG disjoint-union
convention, which is what lets one ``gather -> transform -> scatter``
kernel pass serve every encoder.

Design notes
------------
* **Edge order is authoritative.**  Message-passing kernels reduce in
  stored edge order (see :mod:`repro.graph.kernels`), so constructing a
  ``GraphData`` from an existing edge list keeps encoder outputs
  bit-identical to the pre-refactor per-stack code.  The CSR views are
  *query* structures (stable within-row order), not a re-ordering of
  the edge list itself.
* **Instances are frozen in practice.**  The arrays are set once at
  construction; the CSR caches assume nobody mutates ``src``/``dst``
  afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .csr import build_csr

__all__ = ["CSRAdjacency", "GraphData"]


@dataclass(frozen=True)
class CSRAdjacency:
    """One direction of adjacency in CSR layout.

    Row ``i`` spans ``indptr[i]:indptr[i + 1]`` of both payload arrays:
    ``neighbors`` holds the opposite endpoints and ``edge_ids`` the
    position of each entry in the owning graph's edge list (so per-edge
    payloads — types, features — can be gathered per row).  Within a
    row, entries keep the original edge-list order.
    """

    indptr: np.ndarray     # (num_nodes + 1,) int64 row offsets
    neighbors: np.ndarray  # (num_edges,) int64 opposite endpoints
    edge_ids: np.ndarray   # (num_edges,) int64 edge-list positions

    def row(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbors, edge_ids)`` of one node."""
        start, end = int(self.indptr[node]), int(self.indptr[node + 1])
        return self.neighbors[start:end], self.edge_ids[start:end]

    def degrees(self) -> np.ndarray:
        """Per-node row size."""
        return np.diff(self.indptr)


@dataclass
class GraphData:
    """CSR-backed attributed multigraph (possibly a batch of graphs).

    Attributes
    ----------
    num_nodes:
        Node count; node ids are ``0..num_nodes - 1``.
    src / dst:
        ``(num_edges,)`` int64 endpoint columns.  Undirected graphs
        store both directions explicitly (molecule convention).
    edge_type:
        Optional ``(num_edges,)`` int64 type column (relation ids,
        bond orders); ``None`` for untyped graphs.
    node_feat / edge_feat:
        Named feature matrices, first axis ``num_nodes`` / ``num_edges``.
    graph_ids:
        ``(num_nodes,)`` int64 member-graph index of every node
        (all zeros for a single graph).
    num_graphs:
        Number of member graphs in this (possibly batched) instance.
    """

    num_nodes: int
    src: np.ndarray
    dst: np.ndarray
    edge_type: np.ndarray | None = None
    node_feat: dict[str, np.ndarray] = field(default_factory=dict)
    edge_feat: dict[str, np.ndarray] = field(default_factory=dict)
    graph_ids: np.ndarray | None = None
    num_graphs: int = 1
    _csr: dict[bool, CSRAdjacency] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64).reshape(-1)
        self.dst = np.asarray(self.dst, dtype=np.int64).reshape(-1)
        if len(self.src) != len(self.dst):
            raise ValueError(f"src/dst length mismatch: {len(self.src)} vs {len(self.dst)}")
        if len(self.src):
            lo = min(int(self.src.min()), int(self.dst.min()))
            hi = max(int(self.src.max()), int(self.dst.max()))
            if lo < 0 or hi >= self.num_nodes:
                raise ValueError("edge endpoint out of node range")
        if self.edge_type is not None:
            self.edge_type = np.asarray(self.edge_type, dtype=np.int64).reshape(-1)
            if len(self.edge_type) != len(self.src):
                raise ValueError("edge_type length does not match edge count")
        if self.graph_ids is None:
            self.graph_ids = np.zeros(self.num_nodes, dtype=np.int64)
        else:
            self.graph_ids = np.asarray(self.graph_ids, dtype=np.int64).reshape(-1)
            if len(self.graph_ids) != self.num_nodes:
                raise ValueError("graph_ids length does not match num_nodes")
        for name, feat in self.node_feat.items():
            if len(feat) != self.num_nodes:
                raise ValueError(f"node feature {name!r} has {len(feat)} rows, "
                                 f"expected {self.num_nodes}")
        for name, feat in self.edge_feat.items():
            if len(feat) != len(self.src):
                raise ValueError(f"edge feature {name!r} has {len(feat)} rows, "
                                 f"expected {len(self.src)}")

    # ------------------------------------------------------------------
    # Sizes and views
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(len(self.src))

    @property
    def edge_index(self) -> np.ndarray:
        """``(2, num_edges)`` stacked ``[src; dst]`` (PyG convention)."""
        return np.stack([self.src, self.dst])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GraphData(nodes={self.num_nodes}, edges={self.num_edges}, "
                f"graphs={self.num_graphs}, "
                f"node_feat={sorted(self.node_feat)}, edge_feat={sorted(self.edge_feat)})")

    # ------------------------------------------------------------------
    # CSR adjacency
    # ------------------------------------------------------------------
    def csr(self, reverse: bool = False) -> CSRAdjacency:
        """Cached CSR adjacency; forward rows key on ``src`` (reverse: ``dst``)."""
        cached = self._csr.get(reverse)
        if cached is None:
            keys, other = (self.dst, self.src) if reverse else (self.src, self.dst)
            indptr, order = build_csr(keys, self.num_nodes)
            cached = CSRAdjacency(indptr=indptr, neighbors=other[order], edge_ids=order)
            self._csr[reverse] = cached
        return cached

    def out_degrees(self) -> np.ndarray:
        return self.csr().degrees()

    def in_degrees(self) -> np.ndarray:
        return self.csr(reverse=True).degrees()

    def to_sparse_adjacency(self, weights: np.ndarray | None = None,
                            reverse: bool = False) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, indices, data)`` CSR matrix export.

        ``data`` is per-edge ``weights`` gathered into row order (ones
        when omitted) — directly consumable as
        ``scipy.sparse.csr_matrix((data, indices, indptr))`` without
        taking the dependency here.
        """
        adj = self.csr(reverse=reverse)
        if weights is None:
            data = np.ones(self.num_edges, dtype=np.float64)
        else:
            weights = np.asarray(weights)
            if len(weights) != self.num_edges:
                raise ValueError("weights length does not match edge count")
            data = weights[adj.edge_ids]
        return adj.indptr, adj.neighbors, data

    def to_dense_adjacency(self, weights: np.ndarray | None = None) -> np.ndarray:
        """``(num_nodes, num_nodes)`` dense matrix (small graphs only)."""
        out = np.zeros((self.num_nodes, self.num_nodes))
        vals = np.ones(self.num_edges) if weights is None else np.asarray(weights, dtype=np.float64)
        np.add.at(out, (self.src, self.dst), vals)
        return out

    # ------------------------------------------------------------------
    # Batching (disjoint union)
    # ------------------------------------------------------------------
    def graph_sizes(self) -> np.ndarray:
        """Node count per member graph."""
        return np.bincount(self.graph_ids, minlength=self.num_graphs)

    @classmethod
    def batch(cls, graphs: list["GraphData"]) -> "GraphData":
        """Disjoint union of ``graphs`` with renumbered nodes.

        Node/edge features are concatenated per name (every member must
        carry the same feature names); ``graph_ids`` indexes the member
        graph of every node.  Member graphs that are themselves batches
        are not supported — batch leaves, not batches.
        """
        if any(g.num_graphs != 1 for g in graphs):
            raise ValueError("cannot batch an already-batched GraphData")
        num_graphs = len(graphs)
        sizes = np.array([g.num_nodes for g in graphs], dtype=np.int64)
        offsets = np.zeros(num_graphs, dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        total_nodes = int(sizes.sum())

        if num_graphs:
            src = np.concatenate([g.src + off for g, off in zip(graphs, offsets)])
            dst = np.concatenate([g.dst + off for g, off in zip(graphs, offsets)])
            graph_ids = np.repeat(np.arange(num_graphs, dtype=np.int64), sizes)
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
            graph_ids = np.empty(0, dtype=np.int64)

        typed = [g.edge_type is not None for g in graphs]
        if any(typed) and not all(typed):
            raise ValueError("cannot batch typed and untyped graphs together")
        edge_type = (np.concatenate([g.edge_type for g in graphs])
                     if graphs and all(typed) else None)

        def merge(name_sets: list[dict[str, np.ndarray]], what: str, width_hint: int) -> dict:
            names = set().union(*(set(f) for f in name_sets)) if name_sets else set()
            merged: dict[str, np.ndarray] = {}
            for name in sorted(names):
                parts = []
                for feats in name_sets:
                    if name not in feats:
                        raise ValueError(f"{what} feature {name!r} missing from a batch member")
                    parts.append(feats[name])
                merged[name] = (np.concatenate(parts) if parts
                                else np.zeros((0, width_hint)))
            return merged

        return cls(
            num_nodes=total_nodes,
            src=src,
            dst=dst,
            edge_type=edge_type,
            node_feat=merge([g.node_feat for g in graphs], "node", 0),
            edge_feat=merge([g.edge_feat for g in graphs], "edge", 0),
            graph_ids=graph_ids,
            num_graphs=num_graphs,
        )
