"""Shared CSR construction utilities.

Every graph-shaped structure in this codebase — the
:class:`~repro.graph.data.GraphData` adjacency, the filtered-ranking
:class:`~repro.eval.evaluator.CSRFilter`, and the
:class:`~repro.ann.ivf.IVFIndex` inverted lists — is the same layout
underneath: rows packed contiguously behind an ``indptr`` offset array.
This module holds the one vectorized builder each of them uses, so the
sort/bincount/cumsum dance is written (and tested) exactly once.

All builders are deterministic and stable: rows keep the original
relative order of their members, which is what makes the refactored
call sites bit-identical to their previous per-item loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["counts_to_indptr", "build_csr", "pack_csr_rows"]


def counts_to_indptr(counts: np.ndarray) -> np.ndarray:
    """Row sizes -> ``(len(counts) + 1,)`` int64 offset array."""
    counts = np.asarray(counts, dtype=np.int64)
    indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr


def build_csr(row_ids: np.ndarray, num_rows: int) -> tuple[np.ndarray, np.ndarray]:
    """Group ``len(row_ids)`` items into ``num_rows`` contiguous rows.

    Returns ``(indptr, order)`` where ``order`` is a **stable**
    permutation: ``order[indptr[i]:indptr[i + 1]]`` are the positions of
    row ``i``'s items in their original relative order.  Gathering any
    per-item payload through ``order`` lays it out row-contiguously.
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    if len(row_ids) and (row_ids.min() < 0 or row_ids.max() >= num_rows):
        raise ValueError("row id out of range for CSR build")
    order = np.argsort(row_ids, kind="stable").astype(np.int64)
    indptr = counts_to_indptr(np.bincount(row_ids, minlength=num_rows))
    return indptr, order


def pack_csr_rows(codes: np.ndarray, values: np.ndarray,
                  value_range: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort + de-duplicate ``(code, value)`` pairs into sparse CSR rows.

    Unlike :func:`build_csr` the row key space may be huge and sparse
    (e.g. fused ``(head, relation)`` query codes), so rows are keyed by
    the sorted **unique** codes rather than dense row ids.  Returns
    ``(keys, indptr, values)``: row ``i`` holds the ascending unique
    values ``values[indptr[i]:indptr[i + 1]]`` of code ``keys[i]``.

    ``value_range`` is an exclusive upper bound on ``values``; when the
    fused key ``code * value_range + value`` fits in int64 a single
    ``np.sort`` replaces the two-array ``np.lexsort`` (considerably
    faster at KG scale).
    """
    codes = np.asarray(codes, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    if len(codes) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.zeros(1, dtype=np.int64), empty.copy()
    if codes.min() >= 0 and int(codes.max()) < (2**62) // max(value_range, 1):
        fused = np.sort(codes * value_range + values)
        fresh = np.empty(len(fused), dtype=bool)
        fresh[0] = True
        np.not_equal(fused[1:], fused[:-1], out=fresh[1:])
        fused = fused[fresh]
        codes, values = fused // value_range, fused % value_range
    else:
        order = np.lexsort((values, codes))
        codes, values = codes[order], values[order]
        fresh = np.empty(len(codes), dtype=bool)
        fresh[0] = True
        np.logical_or(codes[1:] != codes[:-1], values[1:] != values[:-1],
                      out=fresh[1:])
        codes, values = codes[fresh], values[fresh]
    row_starts = np.flatnonzero(np.concatenate([[True], codes[1:] != codes[:-1]]))
    indptr = np.concatenate([row_starts, [len(codes)]]).astype(np.int64)
    return codes[row_starts], indptr, values
