"""Shared message-passing kernels over :class:`~repro.graph.data.GraphData`.

Every encoder in this codebase reduces to the same three-step pass:

    gather source states -> transform per edge -> scatter to targets

This module is that pass written once on top of the autograd ops in
:mod:`repro.nn.functional`.  GIN uses it with no edge transform and a
sum reduction; CompGCN runs it once per direction with a
composition-plus-projection transform and a mean reduction.

**Reduction order:** messages are reduced in *stored edge order* (via
``scatter_sum``/``scatter_mean``'s ``np.add.at``), not CSR row order.
Floating-point addition is order-sensitive, so this is what keeps the
refactored encoders bit-identical to their pre-``GraphData``
formulations — the CSR views on ``GraphData`` serve queries, the edge
list serves kernels.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .. import nn
from ..nn import functional as F
from .data import GraphData

__all__ = ["gather_scatter", "propagate", "readout"]

_REDUCERS = ("sum", "mean")

#: Per-edge transform: ``(gathered_source_states, edge_positions) -> messages``.
EdgeTransform = Callable[[nn.Tensor, np.ndarray], nn.Tensor]


def gather_scatter(h: nn.Tensor, src: np.ndarray, dst: np.ndarray,
                   num_nodes: int, reduce: str = "sum",
                   edge_transform: EdgeTransform | None = None) -> nn.Tensor:
    """One message-passing round over a raw edge list.

    Gathers ``h[src]``, optionally maps it through ``edge_transform``
    (which also receives the edge positions ``0..len(src) - 1`` so
    callers can look up per-edge payloads), and scatter-reduces the
    messages onto ``dst``.  Nodes with no incoming edge get zeros.
    """
    if reduce not in _REDUCERS:
        raise ValueError(f"unknown reduce {reduce!r}; choose from {_REDUCERS}")
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if len(src) == 0 and edge_transform is None:
        # No messages and no transform to infer an output width from:
        # the aggregation is all-zero at the input width.
        return nn.Tensor(np.zeros((num_nodes,) + h.data.shape[1:], dtype=h.data.dtype))
    messages = F.index(h, src)
    if edge_transform is not None:
        messages = edge_transform(messages, np.arange(len(src), dtype=np.int64))
    scatter = F.scatter_sum if reduce == "sum" else F.scatter_mean
    return scatter(messages, dst, num_nodes)


def propagate(h: nn.Tensor, graph: GraphData, reduce: str = "sum",
              edge_transform: EdgeTransform | None = None,
              reverse: bool = False) -> nn.Tensor:
    """:func:`gather_scatter` along a graph's edges.

    Forward sends messages ``src -> dst``; ``reverse=True`` sends them
    ``dst -> src`` (the "in" direction of relational encoders).
    """
    src, dst = (graph.dst, graph.src) if reverse else (graph.src, graph.dst)
    return gather_scatter(h, src, dst, graph.num_nodes, reduce=reduce,
                          edge_transform=edge_transform)


def readout(h: nn.Tensor, graph: GraphData, reduce: str = "sum") -> nn.Tensor:
    """Graph-level pooling of node states for a batched ``GraphData``."""
    if reduce not in _REDUCERS:
        raise ValueError(f"unknown reduce {reduce!r}; choose from {_REDUCERS}")
    scatter = F.scatter_sum if reduce == "sum" else F.scatter_mean
    return scatter(h, graph.graph_ids, graph.num_graphs)
