"""``repro.train`` — the unified training engine.

One :class:`TrainingEngine` owns the epoch loop for every model in the
repo; the regime is a pluggable :class:`Objective`
(:class:`OneToNObjective` for the ConvE/CamE BCE path,
:class:`NegativeSamplingObjective` for the RotatE log-sigmoid path) and
cross-cutting features are :class:`Callback` hooks:

* :class:`BestStateCheckpoint` — best-by-Hits@10 checkpoint + restore;
* :class:`ProgressLogging` — progress under the ``repro.train`` logger;
* :class:`EarlyStopping` — patience-based stop on the eval criterion;
* :class:`LRScheduling` — epoch-indexed learning-rate schedules;
* :class:`JsonlTelemetry` — one JSONL event per epoch/eval per run,
  crash-safe (``fit_error`` event + handle close on failure);
* :class:`MetricsCallback` — progress onto a ``repro.obs`` registry;
* :class:`BundleExport` — ``repro.serve`` checkpoint bundle at fit end.

``repro.core.OneToNTrainer`` and
``repro.baselines.NegativeSamplingTrainer`` are thin shims over this
package preserving their original APIs; see DESIGN.md §8.
"""

from .callbacks import (
    BestStateCheckpoint,
    BundleExport,
    Callback,
    EarlyStopping,
    JsonlTelemetry,
    LRScheduling,
    MetricsCallback,
    ProgressLogging,
    read_telemetry,
)
from .engine import TrainingEngine, TrainState
from .objectives import NegativeSamplingObjective, Objective, OneToNObjective
from .report import TrainReport
from .warmstart import (
    FrozenRowsAdam,
    WarmStartObjective,
    apply_row_delta,
    entity_row_parameters,
    export_row_delta,
    warm_start,
)

__all__ = [
    "TrainingEngine",
    "TrainState",
    "TrainReport",
    "Objective",
    "OneToNObjective",
    "NegativeSamplingObjective",
    "Callback",
    "BestStateCheckpoint",
    "ProgressLogging",
    "EarlyStopping",
    "LRScheduling",
    "JsonlTelemetry",
    "MetricsCallback",
    "BundleExport",
    "read_telemetry",
    "FrozenRowsAdam",
    "WarmStartObjective",
    "entity_row_parameters",
    "warm_start",
    "export_row_delta",
    "apply_row_delta",
]
