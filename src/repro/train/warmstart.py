"""Warm-start fine-tuning for streamed (appended) entities.

After ``repro.stream`` appends entities, their embedding rows come from
the inductive encoder — good enough to rank, but not trained.  This
module fine-tunes *only the appended rows* against the frozen backbone:

* :class:`FrozenRowsAdam` — an Adam variant that zeroes the gradient of
  every row below ``frozen_rows`` before stepping, so pre-existing rows
  stay **bit-identical** (zero grads keep the Adam moments at exactly
  zero, hence a literal ``-= 0.0`` update);
* :class:`WarmStartObjective` — trains on the appended triples only,
  dispatching to the model's native regime (1-to-N BCE for
  ``score_queries`` models, negative sampling otherwise);
* :func:`warm_start` — one-call convenience wiring both into a
  :class:`TrainingEngine`;
* :func:`export_row_delta` / :func:`apply_row_delta` — ship just the
  fine-tuned rows to another process (e.g. a pool replica or a saved
  bundle) instead of the whole state dict.

Only parameters whose leading dimension equals ``model.num_entities``
participate (``entity_embedding.weight`` everywhere, plus
``entity_bias`` for CamE); relation tables and dense layers are never
touched, which is what makes the backbone provably frozen.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .. import nn
from ..kg import KGSplit
from .engine import TrainingEngine
from .objectives import NegativeSamplingObjective, Objective, OneToNObjective
from .report import TrainReport

__all__ = [
    "FrozenRowsAdam",
    "WarmStartObjective",
    "entity_row_parameters",
    "warm_start",
    "export_row_delta",
    "apply_row_delta",
]


def entity_row_parameters(model) -> list[tuple[str, nn.Parameter]]:
    """Named parameters with one row per entity (the warm-startable set).

    A parameter qualifies when its leading dimension equals
    ``model.num_entities`` and it is not a relation table (guards the
    corner where ``2 * num_relations == num_entities``).
    """
    n = int(model.num_entities)
    rows = []
    for name, param in model.named_parameters():
        if "relation" in name:
            continue
        if param.data.ndim >= 1 and param.data.shape[0] == n:
            rows.append((name, param))
    if not rows:
        raise ValueError("model has no per-entity parameter rows to warm-start")
    return rows


class FrozenRowsAdam(nn.Adam):
    """Adam that never updates rows below ``frozen_rows``.

    The gradient slice ``[:frozen_rows]`` is zeroed in :meth:`step`
    before the parent update, so the first/second moments of frozen rows
    stay exactly zero and the applied update is exactly ``0.0`` — frozen
    rows remain bit-identical, not merely close.
    """

    def __init__(self, parameters: Iterable[nn.Parameter], frozen_rows: int,
                 lr: float = 1e-2, **kwargs) -> None:
        super().__init__(parameters, lr=lr, **kwargs)
        if frozen_rows < 0:
            raise ValueError(f"frozen_rows must be >= 0, got {frozen_rows}")
        self.frozen_rows = int(frozen_rows)

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is not None:
                p.grad[: self.frozen_rows] = 0.0
        super().step()


class WarmStartObjective(Objective):
    """Fine-tune appended rows on the appended triples only.

    Wraps the model's native regime over a *delta split* whose training
    set is just the appended triples (the graph — hence entity count and
    negative-sampling range — is the full grown graph).  Pair with
    :class:`FrozenRowsAdam` restricted to :func:`entity_row_parameters`
    so the shared backbone cannot drift even though candidate scoring
    touches every entity row.
    """

    name = "warm-start"

    def __init__(self, appended: np.ndarray, *, batch_size: int = 64,
                 label_smoothing: float = 0.1, num_negatives: int = 8) -> None:
        self.appended = np.asarray(appended, dtype=np.int64).reshape(-1, 3)
        self.batch_size = batch_size
        self.label_smoothing = label_smoothing
        self.num_negatives = num_negatives
        self.inner: Objective | None = None

    def prepare(self, model, split: KGSplit, rng: np.random.Generator) -> None:
        if not len(self.appended):
            raise ValueError("warm start requires at least one appended triple")
        if int(self.appended[:, [0, 2]].max()) >= split.num_entities:
            raise ValueError("appended triples reference entities beyond the "
                             "graph; apply the stream delta first")
        delta_split = KGSplit(graph=split.graph, train=self.appended,
                              valid=self.appended, test=self.appended)
        if hasattr(model, "score_queries"):
            self.inner = OneToNObjective(batch_size=self.batch_size,
                                         label_smoothing=self.label_smoothing)
        else:
            self.inner = NegativeSamplingObjective(
                batch_size=self.batch_size, num_negatives=self.num_negatives)
        self.inner.prepare(model, delta_split, rng)

    def batches(self):
        return self.inner.batches()

    def loss(self, model, batch):
        return self.inner.loss(model, batch)


def warm_start(model, split: KGSplit, appended: np.ndarray, *,
               old_num_entities: int, epochs: int = 5, lr: float = 1e-2,
               rng: np.random.Generator | None = None, grad_clip: float = 5.0,
               batch_size: int = 64, num_negatives: int = 8) -> TrainReport:
    """Fine-tune the rows of entities >= ``old_num_entities`` in place.

    Returns the :class:`TrainReport` from the underlying engine.  All
    parameters outside :func:`entity_row_parameters` — and all rows
    below ``old_num_entities`` — are bit-identical afterwards.
    """
    gen = rng if rng is not None else np.random.default_rng(0)
    params = [p for _, p in entity_row_parameters(model)]
    optimizer = FrozenRowsAdam(params, frozen_rows=old_num_entities, lr=lr)
    objective = WarmStartObjective(appended, batch_size=batch_size,
                                   num_negatives=num_negatives)
    engine = TrainingEngine(model, split, gen, objective,
                            optimizer=optimizer, grad_clip=grad_clip)
    # Eval-mode forward (autograd stays on): batch-norm reads its frozen
    # running statistics instead of updating them, and dropout is off —
    # otherwise BN buffers would drift and the backbone would not be
    # bit-identical after fine-tuning.
    training = getattr(model, "training", False)
    if hasattr(model, "eval"):
        model.eval()
    try:
        return engine.fit(epochs, eval_every=None, keep_best=False)
    finally:
        if hasattr(model, "train"):
            model.train(training)


def export_row_delta(model, old_num_entities: int) -> dict:
    """Extract the appended rows of every warm-startable parameter.

    The result is a small JSON-shaped dict (arrays stay ndarrays) that
    :func:`apply_row_delta` can replay onto any same-shaped model — the
    streamed-update analogue of shipping a full state dict.
    """
    n = int(model.num_entities)
    if not 0 <= old_num_entities <= n:
        raise ValueError(f"old_num_entities {old_num_entities} outside [0, {n}]")
    state = {name: param.data[old_num_entities:].copy()
             for name, param in entity_row_parameters(model)}
    return {"old_num_entities": int(old_num_entities), "num_entities": n,
            "state": state}


def apply_row_delta(model, delta: dict) -> list[str]:
    """Write a :func:`export_row_delta` payload onto ``model`` in place.

    The model must already be grown to ``delta["num_entities"]`` (i.e.
    the stream append must have been applied); only the rows above
    ``old_num_entities`` are assigned.  Returns the parameter names
    updated.
    """
    start = int(delta["old_num_entities"])
    total = int(delta["num_entities"])
    if int(model.num_entities) != total:
        raise ValueError(
            f"model has {model.num_entities} entities but the delta targets "
            f"{total}; apply the matching stream append first")
    params = dict(entity_row_parameters(model))
    updated = []
    for name, rows in delta["state"].items():
        if name not in params:
            raise KeyError(f"row delta names unknown parameter {name!r}")
        target = params[name].data
        if target[start:].shape != rows.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: model rows "
                f"{target[start:].shape}, delta {rows.shape}")
        target[start:] = rows
        updated.append(name)
    return updated
