"""The unified training engine behind every trainer in the repo.

One :class:`TrainingEngine` owns the epoch loop, optimiser step,
gradient clipping and the lazy shared
:class:`~repro.eval.RankingEvaluator`; the training *regime* is a
pluggable :class:`~repro.train.objectives.Objective` and every
cross-cutting feature (timing, eval history, best-state checkpointing,
early stopping, LR schedules, JSONL telemetry, bundle export) is a
:class:`~repro.train.callbacks.Callback`.

``repro.core.OneToNTrainer`` and
``repro.baselines.NegativeSamplingTrainer`` are thin shims over this
engine that preserve their original constructor/``fit`` signatures and
bit-identical seeded behaviour (golden parity test in ``tests/train``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..eval import RankingEvaluator, RankingMetrics
from ..kg import KGSplit
from ..obs import trace
from .callbacks import BestStateCheckpoint, Callback, ProgressLogging
from .objectives import Objective
from .report import TrainReport

__all__ = ["TrainState", "TrainingEngine"]


@dataclass
class TrainState:
    """Mutable per-``fit`` state shared between the loop and callbacks.

    Callbacks read progress from here and signal back by setting
    ``stop`` (ends training after the current epoch).  ``metrics`` and
    ``elapsed`` refer to the most recent eval; ``loss`` to the most
    recent epoch.
    """

    engine: "TrainingEngine"
    report: TrainReport
    epochs: int
    epoch: int = 0
    loss: float = float("nan")
    metrics: RankingMetrics | None = None
    elapsed: float = 0.0
    stop: bool = False

    @property
    def model(self):
        return self.engine.model

    @property
    def optimizer(self):
        return self.engine.optimizer


class TrainingEngine:
    """Objective-agnostic training loop with callback hooks.

    Parameters
    ----------
    model:
        Anything the objective can score; for checkpointing it should
        also expose ``state_dict``/``load_state_dict``.
    split:
        Dataset partition (the objective handles inverse augmentation).
    rng:
        Batching/negative-sampling/eval-subsampling randomness.  The
        engine consumes it in exactly the order the seed trainers did.
    objective:
        The training regime; :meth:`Objective.prepare` is called here.
    lr, grad_clip:
        Adam learning rate and global-norm gradient clip (0 disables).
    optimizer:
        Optional pre-built optimiser (replaces the default Adam).
    callbacks:
        Engine-level callbacks, run on every ``fit`` before any
        fit-level callbacks.
    """

    def __init__(self, model, split: KGSplit, rng: np.random.Generator,
                 objective: Objective, *, lr: float = 1e-3,
                 grad_clip: float = 5.0, optimizer: nn.Optimizer | None = None,
                 callbacks: tuple[Callback, ...] | list[Callback] = ()) -> None:
        self.model = model
        self.split = split
        self.rng = rng
        self.objective = objective
        self.grad_clip = grad_clip
        self.optimizer = (optimizer if optimizer is not None
                          else nn.Adam(list(model.parameters()), lr=lr))
        self.callbacks = list(callbacks)
        self._evaluator: RankingEvaluator | None = None
        self._active_state: TrainState | None = None
        self._active_callbacks: tuple[Callback, ...] = ()
        objective.prepare(model, split, rng)

    # ------------------------------------------------------------------
    # Objective internals, exposed for callers that tune or inspect them
    # ------------------------------------------------------------------
    def _from_objective(self, attr: str):
        value = getattr(self.objective, attr, None)
        if value is None:
            raise AttributeError(
                f"objective {self.objective.name!r} has no {attr!r}")
        return value

    @property
    def batcher(self):
        """The 1-to-N query batcher (1-to-N objectives only)."""
        return self._from_objective("batcher")

    @property
    def sampler(self):
        """The negative sampler (negative-sampling objectives only)."""
        return self._from_objective("sampler")

    @property
    def train_triples(self):
        """Inverse-augmented training triples (negative-sampling only)."""
        return self._from_objective("train_triples")

    @property
    def evaluator(self) -> RankingEvaluator:
        """Shared filtered-ranking evaluator (filter built on first use).

        Constructed at most once per engine, so every epoch eval inside
        :meth:`fit` — and any post-training evaluation that reuses it —
        shares a single CSR filter construction.
        """
        if self._evaluator is None:
            self._evaluator = RankingEvaluator(self.split)
        return self._evaluator

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_epoch(self) -> float:
        """One pass over the objective's batches; returns mean batch loss."""
        losses = []
        for batch in self.objective.batches():
            self.optimizer.zero_grad()
            with trace("train.forward", objective=self.objective.name):
                loss = self.objective.loss(self.model, batch)
            with trace("train.backward"):
                loss.backward()
            with trace("train.step"):
                if self.grad_clip:
                    nn.clip_grad_norm(self.optimizer.parameters, self.grad_clip)
                self.optimizer.step()
            losses.append(float(loss.data))
        return float(np.mean(losses)) if losses else float("nan")

    def fit(self, epochs: int, eval_every: int | None = None,
            eval_part: str = "valid", eval_max_queries: int | None = 200,
            eval_batch_size: int = 128, keep_best: bool = True,
            verbose: bool = False,
            callbacks: tuple[Callback, ...] | list[Callback] = ()) -> TrainReport:
        """Train for up to ``epochs``; returns the accumulated report.

        Epochs whose index is a multiple of ``eval_every`` — plus the
        final epoch — are evaluated on ``eval_part`` (filtered ranking,
        one shared CSR filter per engine); ``eval_batch_size`` bounds the
        ``(B, num_entities)`` score blocks the evaluator requests — the
        knob Fig. 9 scalability runs tune.  ``keep_best`` checkpoints and
        finally restores the best state by valid Hits@10 (as the paper
        does); a callback setting ``state.stop`` ends training early.
        Hooks fire in order: internal (best-state, logging), then
        engine-level, then fit-level ``callbacks``.
        """
        report = TrainReport()
        state = TrainState(engine=self, report=report, epochs=epochs)
        stack: list[Callback] = []
        if keep_best:
            stack.append(BestStateCheckpoint())
        stack.append(ProgressLogging(verbose=verbose))
        stack.extend(self.callbacks)
        stack.extend(callbacks)
        # Expose the live fit context so hooks that fire from *inside*
        # train_epoch — e.g. repro.dist dispatching on_worker_error when
        # a worker process dies mid-epoch — reach the same state and
        # callback stack the loop uses.
        self._active_state = state
        self._active_callbacks = tuple(stack)

        for callback in stack:
            callback.on_fit_start(state)
        start = time.perf_counter()
        try:
            for epoch in range(1, epochs + 1):
                tick = time.perf_counter()
                with trace("train.epoch", epoch=epoch):
                    loss = self.train_epoch()
                report.epoch_seconds.append(time.perf_counter() - tick)
                report.epoch_losses.append(loss)
                state.epoch = epoch
                state.loss = loss
                if eval_every and (epoch % eval_every == 0 or epoch == epochs):
                    metrics = self.evaluator.evaluate(
                        self.model, part=eval_part,
                        max_queries=eval_max_queries, rng=self.rng,
                        batch_size=eval_batch_size,
                    )
                    state.metrics = metrics
                    state.elapsed = time.perf_counter() - start
                    report.eval_history.append((epoch, state.elapsed, metrics))
                    for callback in stack:
                        callback.on_eval(state)
                for callback in stack:
                    callback.on_epoch_end(state)
                if state.stop:
                    break
        except BaseException as exc:
            # A crashed fit must still leave usable artifacts (flushed
            # telemetry, metric snapshots): give every callback a chance
            # to finalize, then re-raise the original failure.  Hook
            # errors are swallowed so they cannot mask it.
            for callback in stack:
                try:
                    callback.on_fit_error(state, exc)
                except Exception:  # noqa: BLE001 - never shadow the crash
                    pass
            raise
        for callback in stack:
            callback.on_fit_end(state)
        return report
