"""Training-run reports: losses, timings, eval history, best state.

:class:`TrainReport` is the single artefact every training run produces,
shared by the 1-to-N and negative-sampling regimes.  ``eval_history``
rows are ``(epoch, elapsed_seconds, metrics)`` — the series Fig. 8
plots; ``epoch_seconds`` feeds Fig. 9.  The JSON round-trip
(:meth:`TrainReport.to_dict` / :meth:`TrainReport.from_dict`) lets serve
bundles and telemetry files embed the full training history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..eval import RankingMetrics

__all__ = ["TrainReport"]


@dataclass
class TrainReport:
    """Everything a training run produced.

    ``eval_history`` rows are ``(epoch, elapsed_seconds, metrics)`` —
    the series Fig. 8 plots.  ``epoch_seconds`` feeds Fig. 9.
    """

    epoch_losses: list[float] = field(default_factory=list)
    eval_history: list[tuple[int, float, RankingMetrics]] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    best_metrics: RankingMetrics | None = None
    best_state: dict[str, np.ndarray] | None = None

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def mean_epoch_seconds(self) -> float:
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else float("nan")

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self, include_state: bool = False) -> dict[str, Any]:
        """JSON-serialisable view of the report (metrics included).

        ``include_state=True`` additionally inlines ``best_state`` as
        nested lists — exact but bulky, so bundles (which already carry
        the weights as arrays) leave it off.
        """
        payload: dict[str, Any] = {
            "epoch_losses": [float(x) for x in self.epoch_losses],
            "epoch_seconds": [float(x) for x in self.epoch_seconds],
            "eval_history": [[int(epoch), float(elapsed), metrics.to_dict()]
                             for epoch, elapsed, metrics in self.eval_history],
            "best_metrics": (self.best_metrics.to_dict()
                             if self.best_metrics is not None else None),
        }
        if include_state and self.best_state is not None:
            payload["best_state"] = {
                name: {"dtype": str(np.asarray(arr).dtype),
                       "shape": list(np.shape(arr)),
                       "data": np.asarray(arr).ravel().tolist()}
                for name, arr in self.best_state.items()
            }
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TrainReport":
        """Rebuild a report from :meth:`to_dict` output."""
        best_metrics = payload.get("best_metrics")
        best_state = payload.get("best_state")
        return cls(
            epoch_losses=[float(x) for x in payload.get("epoch_losses", [])],
            epoch_seconds=[float(x) for x in payload.get("epoch_seconds", [])],
            eval_history=[(int(epoch), float(elapsed), RankingMetrics.from_dict(m))
                          for epoch, elapsed, m in payload.get("eval_history", [])],
            best_metrics=(RankingMetrics.from_dict(best_metrics)
                          if best_metrics is not None else None),
            best_state=({name: np.asarray(rec["data"], dtype=rec["dtype"])
                         .reshape(rec["shape"])
                         for name, rec in best_state.items()}
                        if best_state is not None else None),
        )
