"""Callback hooks for :class:`repro.train.TrainingEngine`.

Every cross-cutting training feature — progress logging, best-state
checkpointing, early stopping, LR scheduling, JSONL run telemetry,
serve-bundle export — is a :class:`Callback`.  Hooks fire in list
order at four points of a ``fit`` call::

    on_fit_start -> [epoch: (on_eval?) on_epoch_end]* -> on_fit_end

``on_eval`` fires only on epochs the engine evaluates (``eval_every``),
*before* that epoch's ``on_epoch_end``.  If an epoch raises, the engine
calls ``on_fit_error(state, exc)`` on every callback (instead of
``on_fit_end``) and re-raises, so run artifacts — telemetry files,
metric snapshots — survive a crash.  Callbacks communicate with the
loop through the shared :class:`~repro.train.engine.TrainState`; setting
``state.stop = True`` ends training after the current epoch (the best
state is still restored by :class:`BestStateCheckpoint`).
"""

from __future__ import annotations

import json
import logging
import os
import time
from typing import Any, Callable

import numpy as np

from ..eval import RankingMetrics
from ..obs import MetricsRegistry

__all__ = [
    "Callback",
    "BestStateCheckpoint",
    "ProgressLogging",
    "EarlyStopping",
    "LRScheduling",
    "JsonlTelemetry",
    "MetricsCallback",
    "BundleExport",
    "read_telemetry",
]

logger = logging.getLogger("repro.train")


def _selection_key(metrics: RankingMetrics) -> float:
    """Model-selection criterion: valid Hits@10 (the paper's choice)."""
    return metrics.hits.get(10, metrics.mrr)


class Callback:
    """Hook interface; subclasses override any subset of the hooks."""

    def on_fit_start(self, state) -> None: ...

    def on_epoch_end(self, state) -> None: ...

    def on_eval(self, state) -> None: ...

    def on_fit_end(self, state) -> None: ...

    def on_fit_error(self, state, exc: BaseException) -> None:
        """Called instead of ``on_fit_end`` when the epoch loop raises."""

    def on_worker_error(self, state, rank: int, exc: BaseException) -> None:
        """A ``repro.dist`` worker died or hung; training continues.

        Dispatched by :class:`repro.dist.DistributedEngine` when a
        worker process fails mid-epoch, before the epoch is retried on
        the surviving world.  Like ``on_fit_error``, hook exceptions are
        swallowed by the dispatcher so telemetry cannot break recovery.
        """


class BestStateCheckpoint(Callback):
    """Track the best eval by Hits@10 and restore it when training ends.

    Exactly the ``keep_best`` behaviour of the seed trainers: strictly
    better Hits@10 (falling back to MRR when Hits@10 is absent) snapshots
    ``state_dict()`` into the report; ``on_fit_end`` loads it back.
    """

    def __init__(self) -> None:
        self.best_key = -np.inf

    def on_eval(self, state) -> None:
        key = _selection_key(state.metrics)
        if key > self.best_key:
            self.best_key = key
            state.report.best_metrics = state.metrics
            if hasattr(state.model, "state_dict"):
                state.report.best_state = state.model.state_dict()

    def on_fit_end(self, state) -> None:
        if state.report.best_state is not None and hasattr(state.model, "load_state_dict"):
            state.model.load_state_dict(state.report.best_state)


class ProgressLogging(Callback):
    """Per-eval progress lines under the ``repro.train`` logger.

    Replaces the seed trainers' ``verbose`` ``print``: with
    ``verbose=True`` lines go out at INFO, otherwise at DEBUG, so the
    ``repro.train`` hierarchy is configured exactly like ``repro.serve``.
    """

    def __init__(self, verbose: bool = False) -> None:
        self.level = logging.INFO if verbose else logging.DEBUG

    def on_eval(self, state) -> None:
        logger.log(self.level, "epoch %3d loss %.4f %s",
                   state.epoch, state.loss, state.metrics)

    def on_fit_end(self, state) -> None:
        logger.log(self.level, "fit done: %d epochs, final loss %.4f%s",
                   len(state.report.epoch_losses), state.report.final_loss,
                   " (stopped early)" if state.stop else "")


class EarlyStopping(Callback):
    """Stop when the eval criterion has not improved for ``patience`` evals.

    The criterion is the same Hits@10-or-MRR key model selection uses.
    Improvement means exceeding the best seen by more than ``min_delta``.
    The best weights are still restored at fit end (checkpointing is
    :class:`BestStateCheckpoint`'s job and runs regardless).
    """

    def __init__(self, patience: int = 3, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = min_delta
        self.best = -np.inf
        self.wait = 0
        self.stopped_epoch: int | None = None

    def on_eval(self, state) -> None:
        key = _selection_key(state.metrics)
        if key > self.best + self.min_delta:
            self.best = key
            self.wait = 0
            return
        self.wait += 1
        if self.wait >= self.patience:
            state.stop = True
            self.stopped_epoch = state.epoch
            logger.info("early stopping at epoch %d (no improvement in %d evals)",
                        state.epoch, self.patience)


class LRScheduling(Callback):
    """Epoch-indexed learning-rate schedule applied to the engine optimiser.

    ``schedule(epoch, base_lr)`` returns the LR to use *for* ``epoch``
    (1-based); it is applied at fit start for epoch 1 and after each
    ``on_epoch_end`` for the next epoch.  The base LR is whatever the
    optimiser held when training started.
    """

    def __init__(self, schedule: Callable[[int, float], float]) -> None:
        self.schedule = schedule
        self.base_lr: float | None = None

    @classmethod
    def step(cls, step_size: int, gamma: float = 0.5) -> "LRScheduling":
        """Multiply the LR by ``gamma`` every ``step_size`` epochs."""
        return cls(lambda epoch, base: base * gamma ** ((epoch - 1) // step_size))

    @classmethod
    def exponential(cls, gamma: float = 0.99) -> "LRScheduling":
        """Multiply the LR by ``gamma`` every epoch."""
        return cls(lambda epoch, base: base * gamma ** (epoch - 1))

    def on_fit_start(self, state) -> None:
        self.base_lr = state.engine.optimizer.lr
        state.engine.optimizer.lr = self.schedule(1, self.base_lr)

    def on_epoch_end(self, state) -> None:
        if state.epoch < state.epochs and not state.stop:
            state.engine.optimizer.lr = self.schedule(state.epoch + 1, self.base_lr)


class JsonlTelemetry(Callback):
    """Structured JSONL run telemetry: one event per epoch and per eval.

    Writes a per-run file (the Fig. 8/9 raw series, and an ops trail)
    with one JSON object per line::

        {"event": "fit_start", "run": ..., "epochs": N, "model": ..., ...}
        {"event": "epoch", "epoch": 1, "loss": ..., "seconds": ..., "lr": ...}
        {"event": "eval",  "epoch": 2, "elapsed": ..., "metrics": {...}}
        {"event": "fit_end", "epochs_run": N, "stopped_early": false, ...}

    Every event carries a ``time`` wall-clock stamp and is flushed as it
    is written, so a crashed or interrupted run leaves a readable,
    resumable trail; if the fit raises, a final ``fit_error`` event
    records the failing epoch and exception before the file handle is
    closed.  ``append=True`` continues an existing file (the new
    ``fit_start`` event is marked ``"resumed": true``).  The callback is
    also a context manager: ``with JsonlTelemetry(path) as t:``
    guarantees the handle is released even if ``fit`` is never reached.
    """

    def __init__(self, path: str, run_id: str | None = None,
                 append: bool = False) -> None:
        self.path = str(path)
        self.run_id = run_id
        self.append = append
        self._fh = None

    def _emit(self, event: dict[str, Any]) -> None:
        if self._fh is None:  # pragma: no cover - defensive
            return
        event["time"] = round(time.time(), 3)
        self._fh.write(json.dumps(event) + "\n")
        self._fh.flush()

    def on_fit_start(self, state) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "a" if self.append else "w", encoding="utf-8")
        self._emit({
            "event": "fit_start",
            "run": self.run_id,
            "epochs": state.epochs,
            "model": type(state.model).__name__,
            "objective": state.engine.objective.name,
            "lr": state.engine.optimizer.lr,
            "resumed": self.append,
        })

    def on_epoch_end(self, state) -> None:
        self._emit({
            "event": "epoch",
            "epoch": state.epoch,
            "loss": state.loss,
            "seconds": state.report.epoch_seconds[-1],
            "lr": state.engine.optimizer.lr,
        })

    def on_eval(self, state) -> None:
        self._emit({
            "event": "eval",
            "epoch": state.epoch,
            "elapsed": state.elapsed,
            "metrics": state.metrics.to_dict(),
        })

    def on_fit_end(self, state) -> None:
        best = state.report.best_metrics
        self._emit({
            "event": "fit_end",
            "run": self.run_id,
            "epochs_run": len(state.report.epoch_losses),
            "stopped_early": state.stop,
            "final_loss": state.report.final_loss,
            "best_metrics": best.to_dict() if best is not None else None,
        })
        self.close()

    def on_worker_error(self, state, rank: int, exc: BaseException) -> None:
        self._emit({
            "event": "worker_error",
            "run": self.run_id,
            "epoch": state.epoch,
            "rank": rank,
            "error": f"{type(exc).__name__}: {exc}",
        })

    def on_fit_error(self, state, exc: BaseException) -> None:
        self._emit({
            "event": "fit_error",
            "run": self.run_id,
            "epoch": state.epoch,
            "epochs_run": len(state.report.epoch_losses),
            "error": f"{type(exc).__name__}: {exc}",
        })
        self.close()

    def close(self) -> None:
        """Release the file handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTelemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MetricsCallback(Callback):
    """Publish training progress onto a :class:`repro.obs.MetricsRegistry`.

    Registers ``train_epochs_total``, the ``train_epoch_seconds``
    histogram and ``train_loss`` / ``train_lr`` / ``train_eval_mrr`` /
    ``train_eval_hits{k}`` gauges, updated as the fit progresses.  Pass
    a shared registry to co-expose training metrics with serve metrics,
    or let the callback own one and read ``callback.registry`` after.

    With ``snapshot_path`` set, a final ``{"type": "metrics", ...}``
    JSONL snapshot is appended at fit end — **and** on a crash — so
    ``python -m repro.obs report`` can always summarize the run.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 snapshot_path: str | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.snapshot_path = snapshot_path
        self._c_epochs = self.registry.counter(
            "train_epochs_total", "training epochs completed")
        self._h_epoch_seconds = self.registry.histogram(
            "train_epoch_seconds", "wall time per training epoch")
        self._g_loss = self.registry.gauge(
            "train_loss", "most recent mean epoch loss")
        self._g_lr = self.registry.gauge(
            "train_lr", "current optimiser learning rate")
        self._g_mrr = self.registry.gauge(
            "train_eval_mrr", "most recent eval MRR")
        self._g_hits = self.registry.gauge(
            "train_eval_hits", "most recent eval Hits@k", labels=("k",))

    def on_epoch_end(self, state) -> None:
        self._c_epochs.inc()
        self._h_epoch_seconds.observe(state.report.epoch_seconds[-1])
        if state.loss == state.loss:  # skip NaN (empty epoch)
            self._g_loss.set(state.loss)
        self._g_lr.set(state.engine.optimizer.lr)

    def on_eval(self, state) -> None:
        self._g_mrr.set(state.metrics.mrr)
        for k, value in state.metrics.hits.items():
            self._g_hits.labels(k=k).set(value)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump of the registry (one ``report`` CLI input line)."""
        return {"type": "metrics", "metrics": self.registry.snapshot()}

    def _dump(self) -> None:
        if self.snapshot_path is None:
            return
        parent = os.path.dirname(os.path.abspath(self.snapshot_path))
        os.makedirs(parent, exist_ok=True)
        with open(self.snapshot_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(self.snapshot()) + "\n")

    def on_fit_end(self, state) -> None:
        self._dump()

    def on_fit_error(self, state, exc: BaseException) -> None:
        self._dump()


def read_telemetry(path: str) -> list[dict[str, Any]]:
    """Parse a :class:`JsonlTelemetry` file back into a list of events."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class BundleExport(Callback):
    """Write a ``repro.serve`` checkpoint bundle when training finishes.

    The engine-level home of the PR-2 export hook: attach it to a fit
    call and the trained (best-restored) model is saved with the full
    :class:`~repro.train.TrainReport` embedded in the bundle manifest.
    :meth:`export` is also callable directly, which is how the
    experiment runner exports after it has test metrics to record.
    """

    def __init__(self, path: str, model_name: str, split, features, dim: int,
                 extra: dict[str, Any] | None = None) -> None:
        self.path = str(path)
        self.model_name = model_name
        self.split = split
        self.features = features
        self.dim = dim
        self.extra = extra

    def export(self, model, report=None) -> str:
        from ..serve import save_bundle  # local import: serve sits above train

        save_bundle(self.path, model, self.model_name, self.split,
                    self.features, dim=self.dim, extra=self.extra,
                    report=report)
        logger.info("exported bundle %s (%s)", self.path, self.model_name)
        return self.path

    def on_fit_end(self, state) -> None:
        self.export(state.model, report=state.report)
