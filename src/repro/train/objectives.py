"""Pluggable training objectives for :class:`repro.train.TrainingEngine`.

An :class:`Objective` encapsulates one training *regime* — how batches
are formed and how a batch loss is computed — while the engine owns the
loop, optimiser step and gradient clipping.  Two objectives cover every
model in the repo, matching the original codebases the paper compared
against:

* :class:`OneToNObjective` — the ConvE regime (ConvE, CompGCN,
  MKGformer, CamE): ``(h, r)`` queries against multi-hot tail labels
  under BCE with label smoothing (Eqn. 16), optionally 1-to-K sampled
  candidates (the paper's OMAHA-MM setting);
* :class:`NegativeSamplingObjective` — the RotatE-codebase regime
  (TransE / DistMult / ComplEx / RotatE / a-RotatE / PairRE / DualE and
  the multimodal translational models): positive triples vs sampled
  corruptions under the log-sigmoid loss, optionally with
  self-adversarial negative weighting (Sun et al., 2019).

Both are verbatim extractions of the pre-refactor trainer loops, so the
engine reproduces the seed trainers bit for bit (see the golden parity
test in ``tests/train``).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..kg import (
    KGSplit,
    NegativeSampler,
    OneToNBatcher,
    add_inverse_relations,
    self_adversarial_weights,
)
from ..nn import functional as F

__all__ = ["Objective", "OneToNObjective", "NegativeSamplingObjective"]


class Objective:
    """One training regime: batch formation plus per-batch loss.

    Lifecycle: the engine calls :meth:`prepare` exactly once at
    construction (this is where inverse augmentation, batchers and
    samplers are built), then per epoch iterates :meth:`batches` and
    calls :meth:`loss` on each yielded batch.
    """

    #: Short regime tag used by telemetry events.
    name = "objective"

    def prepare(self, model, split: KGSplit, rng: np.random.Generator) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def batches(self) -> Iterator:
        """Yield one epoch worth of batches (may consume the rng)."""
        raise NotImplementedError  # pragma: no cover - interface

    def loss(self, model, batch):
        """Autograd loss tensor for one batch."""
        raise NotImplementedError  # pragma: no cover - interface


class OneToNObjective(Objective):
    """1-to-N (or sampled 1-to-K) BCE objective with label smoothing."""

    name = "1toN"

    def __init__(self, batch_size: int = 64, label_smoothing: float = 0.1,
                 negatives: int | None = None) -> None:
        self.batch_size = batch_size
        self.label_smoothing = label_smoothing
        self.negatives = negatives
        self.batcher: OneToNBatcher | None = None

    def prepare(self, model, split: KGSplit, rng: np.random.Generator) -> None:
        train = add_inverse_relations(split.train, split.num_relations)
        self.batcher = OneToNBatcher(
            train, split.num_entities, batch_size=self.batch_size, rng=rng,
            label_smoothing=self.label_smoothing, negatives=self.negatives,
        )

    def batches(self) -> Iterator:
        return self.batcher.epoch()

    def loss(self, model, batch):
        heads, rels, labels, candidates = batch
        logits = model.score_queries(heads, rels, candidates)
        return F.bce_with_logits(logits, labels)


class NegativeSamplingObjective(Objective):
    """Log-sigmoid loss over positives and sampled corruptions.

    ``loss = -logsig(f(pos)) - sum_i w_i * logsig(-f(neg_i))`` where
    ``w`` is uniform, or the softmax of negative scores when
    ``self_adversarial`` is on (the a-RotatE / PairRE setting).
    """

    name = "negative-sampling"

    def __init__(self, batch_size: int = 256, num_negatives: int = 8,
                 self_adversarial: bool = False,
                 adversarial_temperature: float = 1.0,
                 bernoulli: bool = False) -> None:
        self.batch_size = batch_size
        self.num_negatives = num_negatives
        self.self_adversarial = self_adversarial
        self.adversarial_temperature = adversarial_temperature
        self.bernoulli = bernoulli
        self.rng: np.random.Generator | None = None
        self.train_triples: np.ndarray | None = None
        self.sampler: NegativeSampler | None = None

    def prepare(self, model, split: KGSplit, rng: np.random.Generator) -> None:
        self.rng = rng
        self.train_triples = add_inverse_relations(split.train, split.num_relations)
        inverse_true = {(int(t), int(r) + split.num_relations, int(h))
                        for h, r, t in split.train}
        self.sampler = NegativeSampler(split.graph, self.train_triples, rng,
                                       bernoulli=self.bernoulli, filtered=True,
                                       extra_true=inverse_true)

    def batches(self) -> Iterable[tuple[np.ndarray, np.ndarray]]:
        order = self.rng.permutation(len(self.train_triples))
        for start in range(0, len(order), self.batch_size):
            positives = self.train_triples[order[start:start + self.batch_size]]
            negatives = self.sampler.corrupt(positives, self.num_negatives)
            yield positives, negatives

    def loss(self, model, batch):
        positives, negatives = batch
        pos_scores = model.triple_scores(positives)
        neg_scores = model.triple_scores(negatives)
        neg_matrix = F.reshape(neg_scores, (self.num_negatives, len(positives)))
        pos_loss = F.neg(F.mean(F.logsigmoid(pos_scores)))
        if self.self_adversarial:
            weights = self_adversarial_weights(
                neg_matrix.data.T, temperature=self.adversarial_temperature
            ).T  # (k, B), detached
            weighted = F.mul(F.neg(F.logsigmoid(F.neg(neg_matrix))), weights)
            neg_loss = F.mean(F.sum(weighted, axis=0))
        else:
            neg_loss = F.neg(F.mean(F.logsigmoid(F.neg(neg_matrix))))
        return F.add(pos_loss, neg_loss)
