"""CompGCN: composition-based multi-relational graph convolution.

The paper pre-trains structural entity embeddings with CompGCN
(Vashishth et al., 2020) and also evaluates CompGCN as a baseline.  This
implementation supports the three composition operators of the original
paper — subtraction, multiplication, and circular correlation — with
direction-specific weights (in / out / self-loop) and joint relation
embedding updates.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import GraphData
from ..graph.kernels import propagate
from ..nn import functional as F

__all__ = ["CompGCNLayer", "CompGCNEncoder", "as_relational_graph",
           "pretrain_structural_embeddings"]

_COMPOSITIONS = ("sub", "mult", "corr")


def as_relational_graph(edges: "np.ndarray | GraphData",
                        num_entities: int) -> GraphData:
    """``(m, 3)`` triples -> :class:`GraphData` (``edge_type`` = relation).

    The conversion slices the triple array exactly once; layers then
    read the direction-segmented ``src``/``edge_type``/``dst`` columns
    instead of re-slicing the raw array every layer.  Passing an
    existing ``GraphData`` through is free, so callers with a fixed
    message graph convert once and reuse it across epochs.
    """
    if isinstance(edges, GraphData):
        return edges
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 3)
    return GraphData(num_nodes=num_entities, src=edges[:, 0],
                     dst=edges[:, 2], edge_type=edges[:, 1])


def _corr(a: nn.Tensor, b: nn.Tensor) -> nn.Tensor:
    """Circular correlation for batched ``(N, d)`` inputs.

    FFT formulation ``irfft(conj(rfft(a)) * rfft(b))`` — O(d log d)
    versus the former O(d^2) roll-and-sum Python loop, and matches it
    to ~1e-13 at float64 (see ``tests/gnn`` for the parity proof).
    """
    if b.ndim == 1:
        b = F.reshape(b, (1, b.shape[-1]))
    return F.circular_correlation(a, b)


def compose(entity: nn.Tensor, relation: nn.Tensor, op: str) -> nn.Tensor:
    """Entity-relation composition φ(h_u, z_r) of CompGCN."""
    if op == "sub":
        return F.sub(entity, relation)
    if op == "mult":
        return F.mul(entity, relation)
    if op == "corr":
        return _corr(entity, relation)
    raise ValueError(f"unknown composition {op!r}; choose from {_COMPOSITIONS}")


class CompGCNLayer(nn.Module):
    """One CompGCN convolution with direction-specific projections.

    Message for edge ``(u, r, v)``: ``W_dir(φ(h_u, z_r))`` where ``dir``
    is *out* for original edges, *in* for inverse edges, and *loop* for
    the self-loop relation.  Relations update as ``z_r' = W_rel z_r``.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 composition: str = "sub") -> None:
        super().__init__()
        if composition not in _COMPOSITIONS:
            raise ValueError(f"unknown composition {composition!r}")
        self.composition = composition
        self.w_in = nn.Linear(in_dim, out_dim, bias=False, rng=rng)
        self.w_out = nn.Linear(in_dim, out_dim, bias=False, rng=rng)
        self.w_loop = nn.Linear(in_dim, out_dim, bias=False, rng=rng)
        self.w_rel = nn.Linear(in_dim, out_dim, bias=False, rng=rng)
        self.loop_rel = nn.Parameter(nn.init.xavier_normal((in_dim,), rng))
        self.bias = nn.Parameter(np.zeros(out_dim))

    def forward(self, entity_emb: nn.Tensor, relation_emb: nn.Tensor,
                edges: "np.ndarray | GraphData",
                num_entities: int) -> tuple[nn.Tensor, nn.Tensor]:
        """Propagate one round.

        Parameters
        ----------
        entity_emb:
            ``(num_entities, in_dim)`` entity states.
        relation_emb:
            ``(num_relations, in_dim)`` relation states (original
            relations only; inverses are derived by direction weights).
        edges:
            ``(m, 3)`` training triples ``(h, r, t)``, or an equivalent
            :class:`GraphData` with ``edge_type`` holding relation ids
            (preferred: the encoder converts once and every layer
            shares the precomputed direction-segmented columns).
        """
        graph = as_relational_graph(edges, num_entities)
        z_rels = F.index(relation_emb, graph.edge_type)

        def transform(direction_w: nn.Linear):
            def edge_transform(states: nn.Tensor, _edge_ids: np.ndarray) -> nn.Tensor:
                return direction_w(compose(states, z_rels, self.composition))
            return edge_transform

        # Out direction: messages flow h -> t along r; in direction:
        # t -> h along r^{-1}; plus the self loop.  Both directed passes
        # are the shared gather -> compose+project -> scatter kernel.
        agg_out = propagate(entity_emb, graph, reduce="mean",
                            edge_transform=transform(self.w_out))
        agg_in = propagate(entity_emb, graph, reduce="mean",
                           edge_transform=transform(self.w_in), reverse=True)
        loop = self.w_loop(compose(entity_emb, self.loop_rel, self.composition))

        out = F.add(F.add(F.add(agg_out, agg_in), loop), self.bias)
        return F.tanh(out), self.w_rel(relation_emb)


class CompGCNEncoder(nn.Module):
    """Stack of CompGCN layers over learnable base embeddings.

    ``forward`` returns contextualised entity and relation embeddings
    suitable for a link-prediction decoder (DistMult here) or for export
    as the paper's pre-trained structural features ``h_s``.
    """

    def __init__(self, num_entities: int, num_relations: int, dim: int = 32,
                 num_layers: int = 1, composition: str = "sub",
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entity_base = nn.Parameter(nn.init.xavier_normal((num_entities, dim), gen))
        self.relation_base = nn.Parameter(nn.init.xavier_normal((num_relations, dim), gen))
        self.layers = nn.ModuleList(
            [CompGCNLayer(dim, dim, rng=gen, composition=composition) for _ in range(num_layers)]
        )

    def forward(self, edges: "np.ndarray | GraphData") -> tuple[nn.Tensor, nn.Tensor]:
        graph = as_relational_graph(edges, self.num_entities)
        entity_emb: nn.Tensor = self.entity_base
        relation_emb: nn.Tensor = self.relation_base
        for layer in self.layers:
            entity_emb, relation_emb = layer(entity_emb, relation_emb, graph, self.num_entities)
        return entity_emb, relation_emb

    def score_distmult(self, entity_emb: nn.Tensor, relation_emb: nn.Tensor,
                       heads: np.ndarray, rels: np.ndarray) -> nn.Tensor:
        """DistMult decoder scores against all entities: ``(B, num_entities)``."""
        h = F.index(entity_emb, heads)
        r = F.index(relation_emb, rels)
        return F.matmul(F.mul(h, r), F.transpose(entity_emb))


def pretrain_structural_embeddings(
    train_triples: np.ndarray,
    num_entities: int,
    num_relations: int,
    dim: int,
    rng: np.random.Generator,
    epochs: int = 5,
    batch_size: int = 256,
    lr: float = 0.01,
    max_message_edges: int = 4000,
) -> np.ndarray:
    """Train CompGCN + DistMult briefly and export entity embeddings.

    This reproduces the paper's use of "structural embedding learned by
    CompGCN with their official codes" as a fixed input feature ``h_s``.
    Message passing uses a capped random subset of edges per epoch so the
    cost stays bounded on large KGs.
    """
    encoder = CompGCNEncoder(num_entities, num_relations, dim=dim, rng=rng)
    optimizer = nn.Adam(list(encoder.parameters()), lr=lr)

    def message_subset() -> np.ndarray:
        if len(train_triples) <= max_message_edges:
            return train_triples
        return train_triples[rng.choice(len(train_triples), max_message_edges,
                                        replace=False)]

    for _ in range(epochs):
        subset = message_subset()
        # Convert once per epoch: every batch's forward shares the
        # direction-segmented edge columns instead of re-slicing.
        graph = as_relational_graph(subset, num_entities)
        order = rng.permutation(len(subset))
        for start in range(0, len(order), batch_size):
            batch = subset[order[start:start + batch_size]]
            optimizer.zero_grad()
            ent, rel = encoder(graph)
            logits = encoder.score_distmult(ent, rel, batch[:, 0], batch[:, 1])
            labels = np.zeros((len(batch), num_entities))
            labels[np.arange(len(batch)), batch[:, 2]] = 1.0
            loss = F.bce_with_logits(logits, labels)
            loss.backward()
            optimizer.step()
    with nn.no_grad():
        # The export pass samples the message subset the same way the
        # training epochs do (it used to take the *first* N triples —
        # a biased, inconsistent cap; see tests/gnn for the regression).
        ent, _ = encoder(message_subset())
    return ent.data.copy()
