"""``repro.gnn`` — structural-embedding substrate (CompGCN)."""

from .compgcn import (
    CompGCNEncoder,
    CompGCNLayer,
    as_relational_graph,
    compose,
    pretrain_structural_embeddings,
)

__all__ = [
    "CompGCNEncoder",
    "CompGCNLayer",
    "as_relational_graph",
    "compose",
    "pretrain_structural_embeddings",
]
