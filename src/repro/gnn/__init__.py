"""``repro.gnn`` — structural-embedding substrate (CompGCN)."""

from .compgcn import CompGCNEncoder, CompGCNLayer, compose, pretrain_structural_embeddings

__all__ = [
    "CompGCNEncoder",
    "CompGCNLayer",
    "compose",
    "pretrain_structural_embeddings",
]
