"""Thread-safe labeled metrics: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the
temporal half): every subsystem that used to keep ad-hoc ``int``
counters — the serve engine's LRU hit/miss/eviction tallies, the HTTP
front end's request/error counts, the training engine's per-epoch
telemetry — registers named metric families here instead, so one
structure is simultaneously

* the source of truth the JSON ``/stats`` route reads through,
* the Prometheus text document ``GET /metrics`` exposes, and
* the snapshot :class:`repro.train.MetricsCallback` dumps to JSONL.

Three metric types cover everything the repo needs, mirroring the
Prometheus data model:

* :class:`Counter` — monotonically increasing float (``inc``);
* :class:`Gauge` — settable float (``set`` / ``inc`` / ``dec``);
* :class:`Histogram` — fixed upper-bucket-bound counts plus sum/count,
  with quantile *estimation* by linear interpolation inside the target
  bucket (the ``histogram_quantile`` convention).

Every child metric owns its own lock, so concurrent increments from
``MicroBatcher`` workers and HTTP handler threads never contend on a
registry-wide lock, and increments are never lost (see the concurrency
test in ``tests/obs``).
"""

from __future__ import annotations

import bisect
import math
import re
import threading
import time
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "render_prometheus",
]

#: Default histogram bucket upper bounds, tuned for request/epoch
#: latencies in seconds (sub-millisecond through tens of seconds).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric bucket bounds: ``start * factor**i``.

    The Prometheus client-library helper, for size-like histograms
    (batch sizes, candidate counts) where latencies' DEFAULT_BUCKETS
    don't fit.  ``start`` must be positive and ``factor`` > 1.
    """
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(float(start) * float(factor) ** i for i in range(count))


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize_name(name: str) -> str:
    """Coerce ``name`` into a legal Prometheus metric name."""
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing value (one labeled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    def merge_series(self, series: Mapping[str, Any]) -> None:
        """Fold one snapshot series into this counter (values sum)."""
        self.inc(float(series["value"]))

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (one labeled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def merge_series(self, series: Mapping[str, Any]) -> None:
        """Fold one snapshot series into this gauge (incoming value wins)."""
        self.set(float(series["value"]))

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with sum/count and estimated quantiles.

    ``buckets`` are *upper* bounds (inclusive, the Prometheus ``le``
    convention); an implicit ``+Inf`` bucket catches the overflow.
    Observations update one bucket count plus the running sum/count —
    O(log B) per observe, no sample retention.
    """

    __slots__ = ("_lock", "edges", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        edges = sorted(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if any(e != e or e == math.inf for e in edges):
            raise ValueError("bucket bounds must be finite numbers")
        if len(set(edges)) != len(edges):
            raise ValueError(f"duplicate bucket bounds in {edges}")
        self._lock = threading.Lock()
        self.edges = tuple(edges)
        self.counts = [0] * (len(edges) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.edges, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    def time(self) -> "_HistogramTimer":
        """Context manager observing its own wall-clock duration."""
        return _HistogramTimer(self)

    def merge_series(self, series: Mapping[str, Any]) -> None:
        """Fold one snapshot series into this histogram (bucket-wise add).

        ``series`` is the JSON form :meth:`MetricsRegistry.snapshot`
        emits: cumulative ``buckets`` keyed by formatted ``le`` bound
        (``+Inf`` last), plus ``sum`` and ``count``.  The incoming bucket
        bounds must match this histogram's exactly.
        """
        cumulative = list(series["buckets"].items())
        incoming_edges = tuple(float(edge) for edge, _ in cumulative[:-1])
        if incoming_edges != self.edges or cumulative[-1][0] != "+Inf":
            raise ValueError(
                f"histogram bucket mismatch: have {self.edges}, "
                f"snapshot has {incoming_edges}")
        counts = [int(cum) for _, cum in cumulative]
        per_bucket = [counts[0]] + [b - a for a, b in zip(counts, counts[1:])]
        with self._lock:
            for i, c in enumerate(per_bucket):
                self.counts[i] += c
            self.sum += float(series["sum"])
            self.count += int(series["count"])

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> list[int]:
        """Cumulative counts per ``le`` bound, ``+Inf`` last (== count)."""
        with self._lock:
            counts = list(self.counts)
        out, running = [], 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating inside its bucket.

        Follows ``histogram_quantile``: the sample distribution is
        assumed uniform within each bucket; a quantile landing in the
        ``+Inf`` bucket returns the highest finite bound.  Returns
        ``nan`` when nothing has been observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        cumulative = self.cumulative()
        total = cumulative[-1]
        if total == 0:
            return float("nan")
        target = q * total
        for i, cum in enumerate(cumulative):
            if cum >= target:
                if i >= len(self.edges):
                    return self.edges[-1]
                lo = 0.0 if i == 0 else self.edges[i - 1]
                hi = self.edges[i]
                prev = cumulative[i - 1] if i else 0
                in_bucket = cum - prev
                frac = (target - prev) / in_bucket if in_bucket else 1.0
                return lo + (hi - lo) * frac
        return self.edges[-1]  # pragma: no cover - loop always returns


class _HistogramTimer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label schema and per-labelset children.

    A family with no label names proxies the child API (``inc`` /
    ``set`` / ``observe`` / ``value`` ...) straight to its single
    unlabeled child, so ``registry.counter("x").inc()`` just works.
    """

    def __init__(self, name: str, kind: str, help: str = "",
                 label_names: tuple[str, ...] = (), **kwargs: Any) -> None:
        self.name = _sanitize_name(name)
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._kwargs = kwargs
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}
        if not self.label_names:
            self._children[()] = _TYPES[kind](**kwargs)

    def labels(self, **labels: Any) -> Any:
        """Child metric for one label set (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {sorted(self.label_names)}, "
                f"got {sorted(labels)}")
        key = tuple(str(labels[n]) for n in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _TYPES[self.kind](**self._kwargs)
            return child

    def children(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())

    def total(self) -> float:
        """Sum of all children's values (counters/gauges only)."""
        return sum(child.value for _, child in self.children())

    # -- unlabeled proxy ------------------------------------------------
    def _sole(self) -> Any:
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labeled by {self.label_names}; "
                "call .labels(...) first")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._sole().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole().dec(amount)

    def set(self, value: float) -> None:
        self._sole().set(value)

    def observe(self, value: float) -> None:
        self._sole().observe(value)

    def time(self):
        return self._sole().time()

    def quantile(self, q: float) -> float:
        return self._sole().quantile(q)

    def cumulative(self) -> list[int]:
        return self._sole().cumulative()

    @property
    def value(self) -> float:
        return self._sole().value

    @property
    def sum(self) -> float:
        return self._sole().sum

    @property
    def count(self) -> int:
        return self._sole().count

    @property
    def mean(self) -> float:
        return self._sole().mean


class MetricsRegistry:
    """Named metric families, thread-safe, renderable as Prometheus text.

    Registration is idempotent: asking for an existing name returns the
    same family, provided the type and label schema match (a mismatch is
    a programming error and raises).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _register(self, name: str, kind: str, help: str,
                  labels: tuple[str, ...], **kwargs: Any) -> MetricFamily:
        name = _sanitize_name(name)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.label_names}; cannot re-register "
                        f"as {kind} with labels {tuple(labels)}")
                return family
            family = MetricFamily(name, kind, help=help, label_names=labels,
                                  **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._register(name, "counter", help, tuple(labels))

    def gauge(self, name: str, help: str = "",
              labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._register(name, "gauge", help, tuple(labels))

    def histogram(self, name: str, help: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> MetricFamily:
        return self._register(name, "histogram", help, tuple(labels),
                              buckets=tuple(buckets))

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(_sanitize_name(name))

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump of every series (used by MetricsCallback)."""
        out: dict[str, Any] = {}
        for family in self.families():
            series = []
            for key, child in family.children():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    series.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": {_format_value(e): c for e, c in
                                    zip(child.edges + (math.inf,),
                                        child.cumulative())},
                        "p50": child.quantile(0.5),
                        "p95": child.quantile(0.95),
                        "p99": child.quantile(0.99),
                    })
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {"type": family.kind, "help": family.help,
                                "series": series}
        return out

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Aggregate a :meth:`snapshot` dump into this registry.

        The dual of :meth:`snapshot`: per-worker registries serialised to
        JSON (``repro.dist`` workers ship one per epoch) fold into the
        parent so one registry reflects the whole world.  Counters sum,
        histograms add bucket-wise (sum/count included), gauges take the
        incoming value.  Families and labeled children missing here are
        registered on the fly; a family that exists with a different
        type, label schema or histogram buckets raises ``ValueError``
        (the same invariant ``_register`` enforces).
        """
        for name, family_snap in snapshot.items():
            kind = family_snap["type"]
            if kind not in _TYPES:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            help = family_snap.get("help", "")
            for series in family_snap.get("series", ()):
                labels = dict(series.get("labels", {}))
                label_names = tuple(labels)
                if kind == "histogram":
                    edges = tuple(float(e) for e in series["buckets"]
                                  if e != "+Inf")
                    family = self.histogram(name, help, labels=label_names,
                                            buckets=edges)
                elif kind == "counter":
                    family = self.counter(name, help, labels=label_names)
                else:
                    family = self.gauge(name, help, labels=label_names)
                child = family.labels(**labels) if label_names else family._sole()
                child.merge_series(series)

    def render(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4)."""
        return render_prometheus(self)


def _label_str(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family as ``# HELP`` / ``# TYPE`` / sample lines."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in family.children():
            labels = dict(zip(family.label_names, key))
            if family.kind == "histogram":
                cumulative = child.cumulative()
                for edge, cum in zip(child.edges + (math.inf,), cumulative):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(edge)
                    lines.append(
                        f"{family.name}_bucket{_label_str(bucket_labels)} {cum}")
                lines.append(
                    f"{family.name}_sum{_label_str(labels)} "
                    f"{_format_value(child.sum)}")
                lines.append(
                    f"{family.name}_count{_label_str(labels)} {child.count}")
            else:
                lines.append(
                    f"{family.name}{_label_str(labels)} "
                    f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n"
