"""``python -m repro.obs report`` — summarize trace/metrics JSONL files.

Takes any mix of JSONL files produced by the obs subsystem and renders
human-readable tables:

* **span** lines (``{"type": "span", ...}`` from :mod:`repro.obs.trace`)
  become a per-span-name table: count, total seconds, mean / p50 / p95 /
  max milliseconds.  Spans that carry distributed-tracing ids are also
  **stitched into per-trace trees** — records from any number of files
  (front-end, pool replicas, dist workers) are joined on ``trace_id``
  and parented by ``span_id``/``parent_id``, so one slow ``/predict``
  renders as a single indented tree with per-span self/total time.
  ``--trace <id>`` drills into one trace (id prefixes accepted);
* **op** / **layer** lines (from
  :meth:`repro.obs.AutogradProfiler.export`) become the sorted per-op
  forward/backward cost table and the per-layer table;
* **metrics** lines (``{"type": "metrics", "metrics": {...}}`` snapshots
  from :class:`repro.train.MetricsCallback`) become counter/gauge and
  histogram-quantile tables;
* **telemetry** events (``{"event": ...}`` from
  :class:`repro.train.JsonlTelemetry`) become a one-block run summary.

Unknown lines are counted and ignored, so heterogeneous files — e.g. a
single run directory holding a trace, a profile and training telemetry —
can be summarized in one invocation::

    python -m repro.obs report runs/trace.jsonl runs/profile.jsonl

``--format json`` emits the same information machine-readably
(per-trace totals, per-span self-time aggregates) for benchmark
assertions.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Iterable

import numpy as np

__all__ = ["build_trace_trees", "load_events", "main", "render_metrics_table",
           "render_op_table", "render_report", "render_span_table",
           "render_slowest_traces", "render_telemetry_summary",
           "render_trace_tree", "report_json"]


def load_events(paths: Iterable[str]) -> list[dict[str, Any]]:
    """Read JSONL records from every path (bad lines are skipped)."""
    events: list[dict[str, Any]] = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    events.append(record)
    return events


def _fmt_table(headers: list[str], rows: list[list[str]],
               align_left: int = 1) -> str:
    """Monospace table; the first ``align_left`` columns left-align."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for row in [headers] + [["-" * w for w in widths]] + rows:
        cells = [c.ljust(w) if i < align_left else c.rjust(w)
                 for i, (c, w) in enumerate(zip(row, widths))]
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{1e3 * seconds:.3f}"


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

def render_span_table(events: list[dict[str, Any]],
                      top: int | None = None) -> str:
    """Per-span-name timing table from ``type == "span"`` records."""
    groups: dict[str, list[float]] = {}
    for event in events:
        if event.get("type") == "span" and "dur" in event:
            groups.setdefault(str(event.get("name")), []).append(
                float(event["dur"]))
    if not groups:
        return ""
    stats = []
    for name, durations in groups.items():
        arr = np.asarray(durations)
        stats.append((float(arr.sum()), name, arr))
    stats.sort(key=lambda item: -item[0])
    if top is not None:
        stats = stats[:top]
    rows = [
        [name, str(len(arr)), f"{total:.4f}", _ms(float(arr.mean())),
         _ms(float(np.quantile(arr, 0.5))), _ms(float(np.quantile(arr, 0.95))),
         _ms(float(arr.max()))]
        for total, name, arr in stats
    ]
    header = ["span", "count", "total s", "mean ms", "p50 ms", "p95 ms",
              "max ms"]
    return "spans\n" + _fmt_table(header, rows)


# ---------------------------------------------------------------------------
# Trace trees (cross-process stitching)
# ---------------------------------------------------------------------------

#: Record keys that are structural rather than user attributes.
_CORE_SPAN_KEYS = frozenset({
    "type", "name", "ts", "dur", "depth", "parent", "thread", "pid",
    "trace_id", "span_id", "parent_id",
})


def build_trace_trees(events: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Stitch id-carrying span records (any number of files/processes)
    into per-trace trees.

    Returns one dict per trace, slowest first::

        {"trace_id": str, "total": seconds (wall extent over all spans),
         "start": earliest ts, "span_count": int, "pids": [int, ...],
         "roots": [node, ...]}

    where each ``node`` is ``{"record": <span record>, "self": seconds,
    "children": [node, ...]}``.  A span whose ``parent_id`` is absent
    from the trace (parent recorded in a file not supplied, or dropped
    from a ring) becomes an additional root rather than being lost.
    """
    by_trace: dict[str, list[dict[str, Any]]] = {}
    for event in events:
        if (event.get("type") == "span" and "dur" in event
                and event.get("trace_id") and event.get("span_id")):
            by_trace.setdefault(str(event["trace_id"]), []).append(event)
    trees = []
    for trace_id, spans in by_trace.items():
        nodes = {str(s["span_id"]): {"record": s, "self": float(s["dur"]),
                                     "children": []}
                 for s in spans}
        roots = []
        for node in nodes.values():
            parent_id = node["record"].get("parent_id")
            parent = nodes.get(str(parent_id)) if parent_id else None
            if parent is not None and parent is not node:
                parent["children"].append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node["children"].sort(key=lambda n: n["record"].get("ts", 0.0))
            child_time = sum(float(c["record"]["dur"]) for c in node["children"])
            node["self"] = max(0.0, float(node["record"]["dur"]) - child_time)
        roots.sort(key=lambda n: n["record"].get("ts", 0.0))
        starts = [float(s.get("ts", 0.0)) for s in spans]
        ends = [float(s.get("ts", 0.0)) + float(s["dur"]) for s in spans]
        trees.append({
            "trace_id": trace_id,
            "total": max(ends) - min(starts),
            "start": min(starts),
            "span_count": len(spans),
            "pids": sorted({int(s.get("pid", 0)) for s in spans}),
            "roots": roots,
        })
    trees.sort(key=lambda t: -t["total"])
    return trees


def _span_attrs(record: dict[str, Any], limit: int = 4) -> str:
    parts = [f"{k}={record[k]}" for k in record
             if k not in _CORE_SPAN_KEYS][:limit]
    return (" " + " ".join(parts)) if parts else ""


def _render_node(node: dict[str, Any], indent: int, lines: list[str]) -> None:
    record = node["record"]
    label = "  " * indent + str(record.get("name")) + _span_attrs(record)
    lines.append(f"{label:<56} {_ms(float(record['dur'])):>10} total"
                 f" {_ms(node['self']):>10} self"
                 f"  [pid {record.get('pid', '?')}]")
    for child in node["children"]:
        _render_node(child, indent + 1, lines)


def render_trace_tree(tree: dict[str, Any]) -> str:
    """One stitched trace as an indented tree with self/total ms."""
    lines = [f"trace {tree['trace_id']}  ·  {_ms(tree['total'])} ms wall  ·  "
             f"{tree['span_count']} span(s)  ·  "
             f"{len(tree['pids'])} process(es)"]
    for root in tree["roots"]:
        _render_node(root, 1, lines)
    return "\n".join(lines)


def render_slowest_traces(events: list[dict[str, Any]],
                          top: int = 3) -> str:
    """The ``top`` slowest stitched traces as indented trees."""
    trees = build_trace_trees(events)
    if not trees:
        return ""
    shown = trees[:top]
    blocks = [render_trace_tree(tree) for tree in shown]
    header = (f"slowest traces ({len(shown)} of {len(trees)}; "
              f"columns: total ms / self ms)")
    return header + "\n" + "\n\n".join(blocks)


def _find_trace(trees: list[dict[str, Any]],
                trace_id: str) -> dict[str, Any] | None:
    wanted = trace_id.strip().lower()
    exact = [t for t in trees if t["trace_id"] == wanted]
    if exact:
        return exact[0]
    prefixed = [t for t in trees if t["trace_id"].startswith(wanted)]
    return prefixed[0] if len(prefixed) == 1 else None


def _tree_to_json(tree: dict[str, Any]) -> dict[str, Any]:
    def node_json(node):
        record = node["record"]
        return {
            "name": record.get("name"),
            "span_id": record.get("span_id"),
            "parent_id": record.get("parent_id"),
            "dur_s": float(record["dur"]),
            "self_s": node["self"],
            "ts": record.get("ts"),
            "pid": record.get("pid"),
            "attrs": {k: v for k, v in record.items()
                      if k not in _CORE_SPAN_KEYS},
            "children": [node_json(c) for c in node["children"]],
        }

    return {
        "trace_id": tree["trace_id"],
        "total_s": tree["total"],
        "start_ts": tree["start"],
        "span_count": tree["span_count"],
        "pids": tree["pids"],
        "roots": [node_json(r) for r in tree["roots"]],
    }


def report_json(paths: Iterable[str], top: int | None = None,
                trace_id: str | None = None) -> dict[str, Any]:
    """Machine-readable report: per-trace totals + per-span self-time.

    ``span_stats`` aggregates every span record by name (count, total,
    mean/p50/p95/max ms); ``self_total_s`` covers the id-carrying spans
    whose children are known, so regressions in *self* time (a span
    getting slower for its own work, not its callees') can be asserted
    directly in benchmarks.
    """
    events = load_events(paths)
    trees = build_trace_trees(events)
    if trace_id is not None:
        found = _find_trace(trees, trace_id)
        trees = [found] if found is not None else []
    elif top is not None:
        trees = trees[:top]
    self_by_name: dict[str, float] = {}

    def collect_self(node):
        name = str(node["record"].get("name"))
        self_by_name[name] = self_by_name.get(name, 0.0) + node["self"]
        for child in node["children"]:
            collect_self(child)

    for tree in trees:
        for root in tree["roots"]:
            collect_self(root)
    groups: dict[str, list[float]] = {}
    for event in events:
        if event.get("type") == "span" and "dur" in event:
            groups.setdefault(str(event.get("name")), []).append(
                float(event["dur"]))
    span_stats = {}
    for name, durations in sorted(groups.items()):
        arr = np.asarray(durations)
        span_stats[name] = {
            "count": int(arr.size),
            "total_s": float(arr.sum()),
            "self_total_s": self_by_name.get(name),
            "mean_ms": float(1e3 * arr.mean()),
            "p50_ms": float(1e3 * np.quantile(arr, 0.5)),
            "p95_ms": float(1e3 * np.quantile(arr, 0.95)),
            "max_ms": float(1e3 * arr.max()),
        }
    return {
        "traces": [_tree_to_json(tree) for tree in trees],
        "trace_count": len(build_trace_trees(events)),
        "span_stats": span_stats,
    }


# ---------------------------------------------------------------------------
# Profiler ops / layers
# ---------------------------------------------------------------------------

def render_op_table(records: list[dict[str, Any]],
                    top: int | None = None) -> str:
    """Per-op and per-layer cost tables from profiler records."""
    ops = [r for r in records if r.get("type") == "op"]
    layers = [r for r in records if r.get("type") == "layer"]
    blocks = []
    if ops:
        ops.sort(key=lambda r: -(r.get("forward_seconds", 0.0)
                                 + r.get("backward_seconds", 0.0)))
        rows = [
            [r["name"], str(r.get("forward_calls", 0)),
             f"{r.get('forward_seconds', 0.0):.4f}",
             str(r.get("backward_calls", 0)),
             f"{r.get('backward_seconds', 0.0):.4f}",
             f"{r.get('forward_seconds', 0.0) + r.get('backward_seconds', 0.0):.4f}",
             str(r.get("alloc_count", 0)),
             f"{r.get('alloc_bytes', 0) / 1e6:.2f}"]
            for r in (ops[:top] if top else ops)
        ]
        header = ["op", "fwd calls", "fwd s", "bwd calls", "bwd s", "total s",
                  "allocs", "alloc MB"]
        blocks.append("ops (self time)\n" + _fmt_table(header, rows))
    if layers:
        layers.sort(key=lambda r: -(r.get("self_seconds", 0.0)
                                    + r.get("backward_seconds", 0.0)))
        rows = [
            [r["name"], str(r.get("calls", 0)),
             f"{r.get('total_seconds', 0.0):.4f}",
             f"{r.get('self_seconds', 0.0):.4f}",
             f"{r.get('backward_seconds', 0.0):.4f}"]
            for r in (layers[:top] if top else layers)
        ]
        header = ["layer", "calls", "fwd total s", "fwd self s", "bwd s"]
        blocks.append("layers\n" + _fmt_table(header, rows))
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Metrics snapshots
# ---------------------------------------------------------------------------

def _labels_str(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def render_metrics_table(events: list[dict[str, Any]]) -> str:
    """Counter/gauge and histogram tables from ``type == "metrics"`` lines.

    Later snapshots win per metric name (a run usually dumps one final
    snapshot; appended files keep the most recent values).
    """
    merged: dict[str, dict[str, Any]] = {}
    for event in events:
        if event.get("type") == "metrics" and isinstance(
                event.get("metrics"), dict):
            merged.update(event["metrics"])
    if not merged:
        return ""
    scalar_rows, hist_rows = [], []
    for name in sorted(merged):
        family = merged[name]
        for series in family.get("series", []):
            label = name + _labels_str(series.get("labels", {}))
            if family.get("type") == "histogram":
                hist_rows.append([
                    label, str(series.get("count", 0)),
                    f"{series.get('sum', 0.0):.4f}",
                    _ms(float(series.get("p50", 0.0) or 0.0)),
                    _ms(float(series.get("p95", 0.0) or 0.0)),
                ])
            else:
                scalar_rows.append([label, family.get("type", "?"),
                                    f"{series.get('value', 0.0):g}"])
    blocks = []
    if scalar_rows:
        blocks.append("metrics\n" + _fmt_table(["metric", "type", "value"],
                                               scalar_rows))
    if hist_rows:
        blocks.append("histograms\n" + _fmt_table(
            ["metric", "count", "sum s", "p50 ms", "p95 ms"], hist_rows))
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Training telemetry
# ---------------------------------------------------------------------------

def render_telemetry_summary(events: list[dict[str, Any]]) -> str:
    """One-paragraph summary of :class:`JsonlTelemetry` event streams."""
    runs = [e for e in events if e.get("event") == "fit_start"]
    epochs = [e for e in events if e.get("event") == "epoch"]
    ends = [e for e in events if e.get("event") in ("fit_end", "fit_error")]
    if not (runs or epochs or ends):
        return ""
    lines = ["training telemetry"]
    for start in runs:
        lines.append(f"  run {start.get('run')!r}: model={start.get('model')} "
                     f"objective={start.get('objective')} "
                     f"epochs planned={start.get('epochs')}")
    if epochs:
        seconds = np.asarray([float(e.get("seconds", 0.0)) for e in epochs])
        losses = [float(e["loss"]) for e in epochs if e.get("loss") is not None]
        lines.append(f"  epochs recorded: {len(epochs)} "
                     f"(mean {seconds.mean():.3f}s, total {seconds.sum():.2f}s)")
        if losses:
            lines.append(f"  loss: first {losses[0]:.4f} -> last {losses[-1]:.4f}")
    for end in ends:
        if end.get("event") == "fit_error":
            lines.append(f"  run {end.get('run')!r} CRASHED at epoch "
                         f"{end.get('epoch')}: {end.get('error')}")
        else:
            lines.append(f"  run {end.get('run')!r} finished: "
                         f"epochs_run={end.get('epochs_run')} "
                         f"final_loss={end.get('final_loss')}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def render_report(paths: Iterable[str], top: int | None = None) -> str:
    """Full report over every recognized record type in ``paths``."""
    events = load_events(paths)
    known = {"span", "op", "layer", "metrics"}
    other = sum(1 for e in events
                if e.get("type") not in known and "event" not in e)
    blocks = [
        render_span_table(events, top=top),
        render_slowest_traces(events, top=top if top is not None else 3),
        render_op_table(events, top=top),
        render_metrics_table(events),
        render_telemetry_summary(events),
    ]
    blocks = [b for b in blocks if b]
    if not blocks:
        blocks = [f"no span/op/metrics records found in {len(events)} lines"]
    elif other:
        blocks.append(f"({other} unrecognized lines ignored)")
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="summarize trace/profile/metrics JSONL files")
    report.add_argument("paths", nargs="+", metavar="FILE",
                        help="JSONL files (spans, profiler ops, metrics "
                             "snapshots, training telemetry); pass every "
                             "process's export (front-end + worker files) to "
                             "stitch cross-process traces")
    report.add_argument("--top", type=int, default=None,
                        help="show only the N costliest spans/ops/traces "
                             "per table")
    report.add_argument("--trace", metavar="ID", default=None,
                        help="drill into one trace id (unique prefix ok): "
                             "print its full stitched tree and exit")
    report.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (json: per-trace totals and "
                             "per-span self-time)")
    args = parser.parse_args(argv)
    if args.format == "json":
        payload = report_json(args.paths, top=args.top, trace_id=args.trace)
        if args.trace is not None and not payload["traces"]:
            print(f"trace {args.trace!r} not found", flush=True)
            return 1
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.trace is not None:
        trees = build_trace_trees(load_events(args.paths))
        found = _find_trace(trees, args.trace)
        if found is None:
            matches = [t["trace_id"] for t in trees
                       if t["trace_id"].startswith(args.trace.lower())]
            if matches:
                print(f"trace id prefix {args.trace!r} is ambiguous: "
                      + ", ".join(matches[:8]))
            else:
                print(f"trace {args.trace!r} not found "
                      f"({len(trees)} trace(s) in the supplied files)")
            return 1
        print(render_trace_tree(found))
        return 0
    print(render_report(args.paths, top=args.top))
    return 0
