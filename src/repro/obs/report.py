"""``python -m repro.obs report`` — summarize trace/metrics JSONL files.

Takes any mix of JSONL files produced by the obs subsystem and renders
human-readable tables:

* **span** lines (``{"type": "span", ...}`` from :mod:`repro.obs.trace`)
  become a per-span-name table: count, total seconds, mean / p50 / p95 /
  max milliseconds;
* **op** / **layer** lines (from
  :meth:`repro.obs.AutogradProfiler.export`) become the sorted per-op
  forward/backward cost table and the per-layer table;
* **metrics** lines (``{"type": "metrics", "metrics": {...}}`` snapshots
  from :class:`repro.train.MetricsCallback`) become counter/gauge and
  histogram-quantile tables;
* **telemetry** events (``{"event": ...}`` from
  :class:`repro.train.JsonlTelemetry`) become a one-block run summary.

Unknown lines are counted and ignored, so heterogeneous files — e.g. a
single run directory holding a trace, a profile and training telemetry —
can be summarized in one invocation::

    python -m repro.obs report runs/trace.jsonl runs/profile.jsonl
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Iterable

import numpy as np

__all__ = ["load_events", "main", "render_metrics_table", "render_op_table",
           "render_report", "render_span_table", "render_telemetry_summary"]


def load_events(paths: Iterable[str]) -> list[dict[str, Any]]:
    """Read JSONL records from every path (bad lines are skipped)."""
    events: list[dict[str, Any]] = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    events.append(record)
    return events


def _fmt_table(headers: list[str], rows: list[list[str]],
               align_left: int = 1) -> str:
    """Monospace table; the first ``align_left`` columns left-align."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for row in [headers] + [["-" * w for w in widths]] + rows:
        cells = [c.ljust(w) if i < align_left else c.rjust(w)
                 for i, (c, w) in enumerate(zip(row, widths))]
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{1e3 * seconds:.3f}"


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

def render_span_table(events: list[dict[str, Any]],
                      top: int | None = None) -> str:
    """Per-span-name timing table from ``type == "span"`` records."""
    groups: dict[str, list[float]] = {}
    for event in events:
        if event.get("type") == "span" and "dur" in event:
            groups.setdefault(str(event.get("name")), []).append(
                float(event["dur"]))
    if not groups:
        return ""
    stats = []
    for name, durations in groups.items():
        arr = np.asarray(durations)
        stats.append((float(arr.sum()), name, arr))
    stats.sort(key=lambda item: -item[0])
    if top is not None:
        stats = stats[:top]
    rows = [
        [name, str(len(arr)), f"{total:.4f}", _ms(float(arr.mean())),
         _ms(float(np.quantile(arr, 0.5))), _ms(float(np.quantile(arr, 0.95))),
         _ms(float(arr.max()))]
        for total, name, arr in stats
    ]
    header = ["span", "count", "total s", "mean ms", "p50 ms", "p95 ms",
              "max ms"]
    return "spans\n" + _fmt_table(header, rows)


# ---------------------------------------------------------------------------
# Profiler ops / layers
# ---------------------------------------------------------------------------

def render_op_table(records: list[dict[str, Any]],
                    top: int | None = None) -> str:
    """Per-op and per-layer cost tables from profiler records."""
    ops = [r for r in records if r.get("type") == "op"]
    layers = [r for r in records if r.get("type") == "layer"]
    blocks = []
    if ops:
        ops.sort(key=lambda r: -(r.get("forward_seconds", 0.0)
                                 + r.get("backward_seconds", 0.0)))
        rows = [
            [r["name"], str(r.get("forward_calls", 0)),
             f"{r.get('forward_seconds', 0.0):.4f}",
             str(r.get("backward_calls", 0)),
             f"{r.get('backward_seconds', 0.0):.4f}",
             f"{r.get('forward_seconds', 0.0) + r.get('backward_seconds', 0.0):.4f}",
             str(r.get("alloc_count", 0)),
             f"{r.get('alloc_bytes', 0) / 1e6:.2f}"]
            for r in (ops[:top] if top else ops)
        ]
        header = ["op", "fwd calls", "fwd s", "bwd calls", "bwd s", "total s",
                  "allocs", "alloc MB"]
        blocks.append("ops (self time)\n" + _fmt_table(header, rows))
    if layers:
        layers.sort(key=lambda r: -(r.get("self_seconds", 0.0)
                                    + r.get("backward_seconds", 0.0)))
        rows = [
            [r["name"], str(r.get("calls", 0)),
             f"{r.get('total_seconds', 0.0):.4f}",
             f"{r.get('self_seconds', 0.0):.4f}",
             f"{r.get('backward_seconds', 0.0):.4f}"]
            for r in (layers[:top] if top else layers)
        ]
        header = ["layer", "calls", "fwd total s", "fwd self s", "bwd s"]
        blocks.append("layers\n" + _fmt_table(header, rows))
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Metrics snapshots
# ---------------------------------------------------------------------------

def _labels_str(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def render_metrics_table(events: list[dict[str, Any]]) -> str:
    """Counter/gauge and histogram tables from ``type == "metrics"`` lines.

    Later snapshots win per metric name (a run usually dumps one final
    snapshot; appended files keep the most recent values).
    """
    merged: dict[str, dict[str, Any]] = {}
    for event in events:
        if event.get("type") == "metrics" and isinstance(
                event.get("metrics"), dict):
            merged.update(event["metrics"])
    if not merged:
        return ""
    scalar_rows, hist_rows = [], []
    for name in sorted(merged):
        family = merged[name]
        for series in family.get("series", []):
            label = name + _labels_str(series.get("labels", {}))
            if family.get("type") == "histogram":
                hist_rows.append([
                    label, str(series.get("count", 0)),
                    f"{series.get('sum', 0.0):.4f}",
                    _ms(float(series.get("p50", 0.0) or 0.0)),
                    _ms(float(series.get("p95", 0.0) or 0.0)),
                ])
            else:
                scalar_rows.append([label, family.get("type", "?"),
                                    f"{series.get('value', 0.0):g}"])
    blocks = []
    if scalar_rows:
        blocks.append("metrics\n" + _fmt_table(["metric", "type", "value"],
                                               scalar_rows))
    if hist_rows:
        blocks.append("histograms\n" + _fmt_table(
            ["metric", "count", "sum s", "p50 ms", "p95 ms"], hist_rows))
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Training telemetry
# ---------------------------------------------------------------------------

def render_telemetry_summary(events: list[dict[str, Any]]) -> str:
    """One-paragraph summary of :class:`JsonlTelemetry` event streams."""
    runs = [e for e in events if e.get("event") == "fit_start"]
    epochs = [e for e in events if e.get("event") == "epoch"]
    ends = [e for e in events if e.get("event") in ("fit_end", "fit_error")]
    if not (runs or epochs or ends):
        return ""
    lines = ["training telemetry"]
    for start in runs:
        lines.append(f"  run {start.get('run')!r}: model={start.get('model')} "
                     f"objective={start.get('objective')} "
                     f"epochs planned={start.get('epochs')}")
    if epochs:
        seconds = np.asarray([float(e.get("seconds", 0.0)) for e in epochs])
        losses = [float(e["loss"]) for e in epochs if e.get("loss") is not None]
        lines.append(f"  epochs recorded: {len(epochs)} "
                     f"(mean {seconds.mean():.3f}s, total {seconds.sum():.2f}s)")
        if losses:
            lines.append(f"  loss: first {losses[0]:.4f} -> last {losses[-1]:.4f}")
    for end in ends:
        if end.get("event") == "fit_error":
            lines.append(f"  run {end.get('run')!r} CRASHED at epoch "
                         f"{end.get('epoch')}: {end.get('error')}")
        else:
            lines.append(f"  run {end.get('run')!r} finished: "
                         f"epochs_run={end.get('epochs_run')} "
                         f"final_loss={end.get('final_loss')}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def render_report(paths: Iterable[str], top: int | None = None) -> str:
    """Full report over every recognized record type in ``paths``."""
    events = load_events(paths)
    known = {"span", "op", "layer", "metrics"}
    other = sum(1 for e in events
                if e.get("type") not in known and "event" not in e)
    blocks = [
        render_span_table(events, top=top),
        render_op_table(events, top=top),
        render_metrics_table(events),
        render_telemetry_summary(events),
    ]
    blocks = [b for b in blocks if b]
    if not blocks:
        blocks = [f"no span/op/metrics records found in {len(events)} lines"]
    elif other:
        blocks.append(f"({other} unrecognized lines ignored)")
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="summarize trace/profile/metrics JSONL files")
    report.add_argument("paths", nargs="+", metavar="FILE",
                        help="JSONL files (spans, profiler ops, metrics "
                             "snapshots, training telemetry)")
    report.add_argument("--top", type=int, default=None,
                        help="show only the N costliest spans/ops per table")
    args = parser.parse_args(argv)
    print(render_report(args.paths, top=args.top))
    return 0
