"""Trace context: span identity and cross-process propagation.

Every span carries a 128-bit ``trace_id`` (one per request/operation,
shared by all of its spans in every process) and a 64-bit ``span_id``
(unique per span), rendered as lowercase hex.  The *current* span is
tracked in a :mod:`contextvars` variable rather than a thread-local
stack, so nesting is correct both across threads (a new thread starts
with an empty context and therefore a fresh trace) and across asyncio
tasks (each task snapshots the context at creation, so interleaved
requests on one event loop keep their own parent chains).

Process boundaries use the W3C ``traceparent`` wire form::

    00-<32 hex trace_id>-<16 hex span_id>-01

:func:`parse_traceparent` turns the header back into a
:class:`SpanContext` — an immutable stand-in parent whose span lives in
another process — and :class:`activate` installs it so the next span
opened locally becomes its child.  The pool front-end injects the
header into cmd-queue envelopes, the dist engine stamps it onto epoch
commands, and forked children keep the propagated ``trace_id`` (the
tracer's at-fork hook swaps any live span for a detached
:class:`SpanContext` via :func:`detach_context`).
"""

from __future__ import annotations

import contextvars
import os
import re

__all__ = [
    "SpanContext",
    "activate",
    "current_context",
    "current_traceparent",
    "detach_context",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
]

#: The innermost active span: a live ``_SpanContext`` from
#: :mod:`repro.obs.trace`, a propagated :class:`SpanContext`, or None.
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_context", default=None)

_TRACEPARENT_RE = re.compile(
    r"^[0-9a-f]{2}-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$")


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 hex chars (fork-safe: os.urandom)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 hex chars."""
    return os.urandom(8).hex()


class SpanContext:
    """An immutable propagated span context.

    Represents a parent span that lives in another process (adopted from
    a ``traceparent`` header or an inherited-across-fork live span).  It
    can parent local spans but records nothing itself; ``set_attr`` is a
    no-op because there is no local record to attach to.
    """

    __slots__ = ("trace_id", "span_id")

    #: A propagated parent starts a fresh local stack: children get depth 0.
    depth = -1
    #: No local span name to inherit for the legacy name-based parent field.
    name = None

    def __init__(self, trace_id: str, span_id: str) -> None:
        object.__setattr__(self, "trace_id", trace_id)
        object.__setattr__(self, "span_id", span_id)

    def __setattr__(self, key, value):  # pragma: no cover - guard
        raise AttributeError("SpanContext is immutable")

    def set_attr(self, key, value) -> None:
        """No-op: the span behind this context lives in another process."""

    def __repr__(self) -> str:
        return f"SpanContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"


def current_context():
    """The innermost active span (live or propagated), or None."""
    return _CURRENT.get()


def format_traceparent(ctx) -> str:
    """Render a span or :class:`SpanContext` as a W3C traceparent string."""
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def current_traceparent() -> str | None:
    """The active context as a traceparent header value, or None."""
    ctx = _CURRENT.get()
    if ctx is None:
        return None
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def parse_traceparent(header) -> SpanContext | None:
    """Parse a traceparent header; None on absent/malformed/all-zero ids."""
    if not header or not isinstance(header, str):
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id, span_id = match.group(1), match.group(2)
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return SpanContext(trace_id, span_id)


class activate:
    """Install a propagated context as the current parent for a block::

        with activate(parse_traceparent(header)):
            with trace("serve.request"):   # child of the remote span
                ...

    ``activate(None)`` is a no-op, so callers can pass the result of
    :func:`parse_traceparent` straight through.
    """

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self._token = None

    def __enter__(self):
        if self._ctx is not None:
            self._token = _CURRENT.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            try:
                _CURRENT.reset(self._token)
            except ValueError:  # pragma: no cover - exited in a foreign context
                _CURRENT.set(None)
            self._token = None


def detach_context() -> None:
    """Replace any live current span with an immutable :class:`SpanContext`.

    Called in forked children (the parent's span objects came through the
    fork, but their tracer/file plumbing did not): the child keeps the
    propagated ``trace_id``/``span_id`` for parenting its own spans but
    starts a fresh span stack — exiting the inherited spans stays the
    parent's job.
    """
    ctx = _CURRENT.get()
    if ctx is not None and not isinstance(ctx, SpanContext):
        _CURRENT.set(SpanContext(ctx.trace_id, ctx.span_id))
