"""Sliding-window SLO tracking: latency objectives and burn rates.

An :class:`SLOTracker` sits next to a :class:`~repro.obs.metrics.
MetricsRegistry` and turns the raw per-request latencies the serve /
pool tiers already measure into the two numbers an operator pages on:

* **latency attainment** — the fraction of requests in the window that
  met the route's latency objective, against a target like "99 % of
  requests under 100 ms";
* **error-budget burn rate** — how fast the availability budget is
  being spent: ``bad_fraction / (1 - target)``.  Burn rate 1.0 means
  "exactly on budget"; 10 means the monthly budget burns in ~3 days.

State is a per-route ring of per-interval buckets (defaults: 30 slots
covering a 300 s window), so ``observe`` is O(1) and aggregation is
O(slots) — cheap enough to run inline on the request path.  Gauges are
registered on the supplied registry, so they ride the existing
``/metrics`` exposition and pool/dist snapshot fan-in for free; a
``scope`` label keeps front-end ("pool") and replica ("serve") series
distinct after :meth:`MetricsRegistry.merge`.

Requests with status >= 500 count against the availability budget
(504 deadline misses included); 4xx are client/policy outcomes (429
shedding is admission control doing its job) and only count toward
latency attainment.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["SLOTracker", "DEFAULT_OBJECTIVES"]

#: Per-route latency objectives (seconds).  Routes not listed fall back
#: to ``default_objective``.
DEFAULT_OBJECTIVES = {
    "/predict": 0.100,
    "/score": 0.100,
    "/healthz": 0.010,
}


class _RouteWindow:
    """Ring of per-interval (total, slow, error) buckets for one route."""

    __slots__ = ("lock", "epochs", "totals", "slow", "errors")

    def __init__(self, slots: int) -> None:
        self.lock = threading.Lock()
        self.epochs = [-1] * slots
        self.totals = [0] * slots
        self.slow = [0] * slots
        self.errors = [0] * slots


class SLOTracker:
    """Derive per-route SLO gauges from inline latency observations.

    Parameters
    ----------
    registry:
        Gauge families are registered here (``slo_*`` with ``route`` +
        ``scope`` labels) so they appear on ``/metrics`` and in
        snapshots automatically.
    scope:
        Label distinguishing tiers ("serve" replicas vs the "pool"
        front-end) when registries are merged.
    objectives / default_objective:
        Per-route latency objectives in seconds.
    latency_target / availability_target:
        SLO targets, e.g. 0.99 -> "99 % of requests meet the latency
        objective", 0.999 -> "99.9 % of requests succeed".
    window / slots:
        Sliding-window extent in seconds and its bucket count.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(self, registry, *, scope: str = "serve",
                 objectives: dict[str, float] | None = None,
                 default_objective: float = 0.250,
                 latency_target: float = 0.99,
                 availability_target: float = 0.999,
                 window: float = 300.0, slots: int = 30,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not 0.0 < latency_target < 1.0:
            raise ValueError("latency_target must be in (0, 1)")
        if not 0.0 < availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        if slots < 2 or window <= 0:
            raise ValueError("need window > 0 and at least 2 slots")
        self.scope = scope
        self.objectives = dict(DEFAULT_OBJECTIVES if objectives is None
                               else objectives)
        self.default_objective = float(default_objective)
        self.latency_target = float(latency_target)
        self.availability_target = float(availability_target)
        self.window = float(window)
        self.slots = int(slots)
        self._width = self.window / self.slots
        self._clock = clock
        self._routes: dict[str, _RouteWindow] = {}
        self._routes_lock = threading.Lock()
        labels = ("route", "scope")
        self._g_attain = registry.gauge(
            "slo_latency_attainment",
            "Fraction of windowed requests meeting the latency objective",
            labels=labels)
        self._g_lat_burn = registry.gauge(
            "slo_latency_burn_rate",
            "Latency-budget burn rate (1.0 = exactly on target)",
            labels=labels)
        self._g_avail = registry.gauge(
            "slo_availability",
            "Fraction of windowed requests without a 5xx outcome",
            labels=labels)
        self._g_err_burn = registry.gauge(
            "slo_error_burn_rate",
            "Error-budget burn rate (1.0 = exactly on target)",
            labels=labels)
        self._g_requests = registry.gauge(
            "slo_window_requests",
            "Requests observed inside the sliding window",
            labels=labels)

    # ------------------------------------------------------------------
    def objective(self, route: str) -> float:
        """The latency objective (seconds) for ``route``."""
        return self.objectives.get(route, self.default_objective)

    def _window_for(self, route: str) -> _RouteWindow:
        win = self._routes.get(route)
        if win is None:
            with self._routes_lock:
                win = self._routes.setdefault(route, _RouteWindow(self.slots))
        return win

    def observe(self, route: str, seconds: float, status: int) -> None:
        """Record one request outcome and refresh the route's gauges."""
        win = self._window_for(route)
        now_epoch = int(self._clock() // self._width)
        slot = now_epoch % self.slots
        slow = seconds > self.objective(route)
        error = status >= 500
        with win.lock:
            if win.epochs[slot] != now_epoch:
                win.epochs[slot] = now_epoch
                win.totals[slot] = 0
                win.slow[slot] = 0
                win.errors[slot] = 0
            win.totals[slot] += 1
            if slow:
                win.slow[slot] += 1
            if error:
                win.errors[slot] += 1
            total, n_slow, n_err = self._aggregate_locked(win, now_epoch)
        self._publish(route, total, n_slow, n_err)

    def _aggregate_locked(self, win: _RouteWindow, now_epoch: int):
        oldest = now_epoch - self.slots + 1
        total = n_slow = n_err = 0
        for i in range(self.slots):
            if win.epochs[i] >= oldest:
                total += win.totals[i]
                n_slow += win.slow[i]
                n_err += win.errors[i]
        return total, n_slow, n_err

    def _publish(self, route: str, total: int, n_slow: int, n_err: int) -> None:
        labels = {"route": route, "scope": self.scope}
        if total == 0:  # pragma: no cover - observe always adds one
            attain = avail = 1.0
            lat_burn = err_burn = 0.0
        else:
            attain = 1.0 - n_slow / total
            avail = 1.0 - n_err / total
            lat_burn = (n_slow / total) / (1.0 - self.latency_target)
            err_burn = (n_err / total) / (1.0 - self.availability_target)
        self._g_attain.labels(**labels).set(round(attain, 6))
        self._g_lat_burn.labels(**labels).set(round(lat_burn, 4))
        self._g_avail.labels(**labels).set(round(avail, 6))
        self._g_err_burn.labels(**labels).set(round(err_burn, 4))
        self._g_requests.labels(**labels).set(total)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Windowed SLO numbers per route, for ``/stats`` payloads."""
        now_epoch = int(self._clock() // self._width)
        routes = {}
        with self._routes_lock:
            items = list(self._routes.items())
        for route, win in items:
            with win.lock:
                total, n_slow, n_err = self._aggregate_locked(win, now_epoch)
            if total == 0:
                attain = avail = 1.0
                lat_burn = err_burn = 0.0
            else:
                attain = 1.0 - n_slow / total
                avail = 1.0 - n_err / total
                lat_burn = (n_slow / total) / (1.0 - self.latency_target)
                err_burn = (n_err / total) / (1.0 - self.availability_target)
            routes[route] = {
                "objective_ms": round(self.objective(route) * 1e3, 3),
                "requests": total,
                "latency_attainment": round(attain, 6),
                "latency_burn_rate": round(lat_burn, 4),
                "availability": round(avail, 6),
                "error_burn_rate": round(err_burn, 4),
            }
        return {
            "scope": self.scope,
            "window_seconds": self.window,
            "latency_target": self.latency_target,
            "availability_target": self.availability_target,
            "routes": routes,
        }
