"""Span-based tracing: nested wall-time spans with optional JSONL export.

A *span* is one timed region of code, opened with the :func:`trace`
context manager (or the :func:`traced` decorator)::

    from repro.obs import trace

    with trace("train.epoch", epoch=3):
        with trace("train.forward"):
            ...

Spans nest through a per-thread stack, so every record carries its
``depth`` and ``parent`` span name — enough for ``python -m repro.obs
report`` to reconstruct where an epoch or a ``/predict`` call spends
its time.  The hot subsystems (training engine, evaluator, serve
engine/batcher/HTTP, bundle loading) call :func:`trace` unconditionally;
the **disabled fast path** makes that free in practice: when the global
tracer is off, :func:`trace` returns a shared no-op context manager
without allocating anything, so instrumented code pays one function
call and one attribute check per span site (pinned under 5 % of epoch
and request time by ``benchmarks/test_perf_obs.py``).

Each completed span is recorded as a JSON-safe dict::

    {"type": "span", "name": "train.forward", "ts": <wall-clock start>,
     "dur": <seconds>, "depth": 1, "parent": "train.epoch",
     "thread": <thread ident>, ...attrs}

and lands in the tracer's bounded in-memory ring, an optional callable
sink, and an optional JSONL file (line-flushed, so crashed runs leave a
readable trail).
"""

from __future__ import annotations

import functools
import json
import threading
import time
from collections import deque
from typing import Any, Callable

__all__ = [
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "read_trace",
    "trace",
    "traced",
    "tracing",
]


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars and other oddballs into JSON-safe values."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    return str(value)


class Tracer:
    """Collects completed spans; at most one is global (see :func:`trace`).

    Parameters
    ----------
    keep:
        Size of the in-memory ring of recent span records (oldest
        evicted first).  Export to JSONL is unbounded.
    """

    def __init__(self, keep: int = 8192) -> None:
        self.enabled = False
        self.spans: deque[dict[str, Any]] = deque(maxlen=keep)
        self._sink: Callable[[dict[str, Any]], None] | None = None
        self._fh = None
        self._path: str | None = None
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, path: str | None = None,
               sink: Callable[[dict[str, Any]], None] | None = None) -> "Tracer":
        """Start recording spans; optionally stream them to a JSONL file."""
        with self._lock:
            if self._fh is not None and path != self._path:
                self._fh.close()
                self._fh = None
            if path is not None and self._fh is None:
                self._fh = open(path, "a", encoding="utf-8")
            self._path = path
            self._sink = sink
            self.enabled = True
        return self

    def disable(self) -> None:
        """Stop recording and close any export file."""
        with self._lock:
            self.enabled = False
            self._sink = None
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            self._path = None

    def reset(self) -> None:
        """Drop the in-memory span ring (export files are untouched)."""
        with self._lock:
            self.spans.clear()

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> "_SpanContext":
        """Open a span on this tracer regardless of the global one."""
        return _SpanContext(self, name, attrs)

    def _record(self, record: dict[str, Any]) -> None:
        with self._lock:
            self.spans.append(record)
            sink, fh = self._sink, self._fh
            if fh is not None:
                fh.write(json.dumps(record) + "\n")
                fh.flush()
        if sink is not None:
            sink(record)


class _SpanContext:
    """A single open span; records itself on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_wall", "_depth",
                 "_parent", "_entered")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = str(name)
        self._attrs = attrs
        self._entered = False

    def __enter__(self) -> "_SpanContext":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self._name)
        self._entered = True
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self._start
        if self._entered:
            stack = self._tracer._stack()
            # Pop back to this span even if an inner span leaked open.
            while stack and stack.pop() != self._name:
                pass
            self._entered = False
        record: dict[str, Any] = {
            "type": "span",
            "name": self._name,
            "ts": round(self._wall, 6),
            "dur": duration,
            "depth": self._depth,
            "parent": self._parent,
            "thread": threading.get_ident(),
        }
        for key, value in self._attrs.items():
            record.setdefault(key, _json_safe(value))
        self._tracer._record(record)


class _NoopSpan:
    """Shared do-nothing context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP = _NoopSpan()
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer behind :func:`trace`."""
    return _TRACER


def enable_tracing(path: str | None = None,
                   sink: Callable[[dict[str, Any]], None] | None = None) -> Tracer:
    """Turn on the global tracer (optionally exporting spans to ``path``)."""
    return _TRACER.enable(path=path, sink=sink)


def disable_tracing() -> None:
    """Turn the global tracer off and close its export file."""
    _TRACER.disable()


def trace(name: str, **attrs: Any):
    """Open a named span on the global tracer (no-op while disabled).

    Returns a context manager.  Extra keyword arguments become
    attributes on the span record (coerced to JSON-safe values).
    """
    if not _TRACER.enabled:
        return _NOOP
    return _SpanContext(_TRACER, name, attrs)


def traced(name: str | None = None, **attrs: Any):
    """Decorator form of :func:`trace`.

    The enabled check happens per *call*, so functions decorated at
    import time start producing spans as soon as tracing is enabled::

        @traced("serve.rebuild")
        def rebuild(...): ...
    """

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with trace(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


class tracing:
    """Context manager enabling the global tracer for a block (tests)::

        with tracing() as tracer:
            run()
        spans = list(tracer.spans)
    """

    def __init__(self, path: str | None = None,
                 sink: Callable[[dict[str, Any]], None] | None = None) -> None:
        self._path = path
        self._sink = sink

    def __enter__(self) -> Tracer:
        _TRACER.reset()  # a fresh block sees only its own spans
        return enable_tracing(path=self._path, sink=self._sink)

    def __exit__(self, *exc_info) -> None:
        disable_tracing()


def read_trace(path: str) -> list[dict[str, Any]]:
    """Parse a span JSONL file back into a list of records."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
