"""Span-based tracing: nested wall-time spans with distributed ids.

A *span* is one timed region of code, opened with the :func:`trace`
context manager (or the :func:`traced` decorator)::

    from repro.obs import trace

    with trace("train.epoch", epoch=3):
        with trace("train.forward"):
            ...

Spans nest through the :mod:`contextvars`-based current context in
:mod:`repro.obs.context`, so every record carries a 128-bit ``trace_id``
shared by all spans of one request/operation (across threads, asyncio
tasks, and — via ``traceparent`` propagation — processes), a unique
64-bit ``span_id``, and its ``parent_id``.  The legacy name-based
``depth``/``parent`` fields are kept for human-readable reports.  The
hot subsystems (training engine, evaluator, serve engine/batcher/HTTP,
pool front-end) call :func:`trace` unconditionally; the **disabled fast
path** makes that free in practice: when the global tracer is off,
:func:`trace` returns a shared no-op context manager without allocating
anything (pinned under 5 % of epoch and request time by
``benchmarks/test_perf_obs.py``).

Each completed span is recorded as a JSON-safe dict::

    {"type": "span", "name": "train.forward", "ts": <wall-clock start>,
     "dur": <seconds>, "trace_id": <32 hex>, "span_id": <16 hex>,
     "parent_id": <16 hex or None>, "depth": 1, "parent": "train.epoch",
     "thread": <thread ident>, "pid": <os.getpid()>, ...attrs}

and lands in the tracer's bounded in-memory ring, an optional callable
sink, and an optional JSONL file.  File export is batched: whole lines
are buffered in-process and written+flushed every ``flush_every`` spans
(and on :meth:`Tracer.flush`/:meth:`Tracer.disable`), so the serve hot
path does not pay a syscall per span while crashed runs still leave a
readable, whole-line JSONL trail.

Forked children (pool replicas, dist workers) get a clean slate via an
``os.register_at_fork`` hook: fresh lock, empty ring/buffer, tracing
disabled, the parent's file handle dropped without flushing — and any
live span in the current context swapped for a detached
:class:`~repro.obs.context.SpanContext` so the child keeps the
propagated ``trace_id`` but starts a fresh span stack.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from collections import deque
from typing import Any, Callable

from .context import (
    _CURRENT,
    detach_context,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "Tracer",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "read_trace",
    "trace",
    "traced",
    "tracing",
]

#: Spans buffered per export-file write+flush (see satellite: no syscall
#: per span on the serve path).  Override per enable() call.
DEFAULT_FLUSH_EVERY = 32


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars and other oddballs into JSON-safe values."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    return str(value)


class Tracer:
    """Collects completed spans; at most one is global (see :func:`trace`).

    Parameters
    ----------
    keep:
        Size of the in-memory ring of recent span records (oldest
        evicted first).  Export to JSONL is unbounded.
    """

    def __init__(self, keep: int = 8192) -> None:
        self.enabled = False
        self.spans: deque[dict[str, Any]] = deque(maxlen=keep)
        self._sink: Callable[[dict[str, Any]], None] | None = None
        self._fh = None
        self._path: str | None = None
        self._buffer: list[str] = []
        self._flush_every = DEFAULT_FLUSH_EVERY
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def path(self) -> str | None:
        """The JSONL export path, if file export is active."""
        return self._path

    def enable(self, path: str | None = None,
               sink: Callable[[dict[str, Any]], None] | None = None,
               flush_every: int | None = None) -> "Tracer":
        """Start recording spans; optionally stream them to a JSONL file.

        ``flush_every`` bounds how many spans may sit in the in-process
        line buffer before a write+flush (1 restores the old
        line-per-span behaviour for tests that read the file live).
        """
        with self._lock:
            if self._fh is not None and path != self._path:
                self._close_locked()
            if path is not None and self._fh is None:
                self._fh = open(path, "a", encoding="utf-8")
            self._path = path
            self._sink = sink
            if flush_every is not None:
                if flush_every < 1:
                    raise ValueError("flush_every must be >= 1")
                self._flush_every = int(flush_every)
            self.enabled = True
        return self

    def disable(self) -> None:
        """Stop recording, flush buffered lines, close any export file."""
        with self._lock:
            self.enabled = False
            self._sink = None
            self._close_locked()
            self._path = None

    def flush(self) -> None:
        """Write and fsync-flush any buffered span lines to the file."""
        with self._lock:
            self._flush_locked()

    def reset(self) -> None:
        """Drop the in-memory span ring (export files are untouched)."""
        with self._lock:
            self.spans.clear()

    def _flush_locked(self) -> None:
        if self._fh is not None and self._buffer:
            self._fh.write("".join(self._buffer))
            self._buffer.clear()
            self._fh.flush()

    def _close_locked(self) -> None:
        if self._fh is not None:
            self._flush_locked()
            self._fh.close()
            self._fh = None
        self._buffer.clear()

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> "_SpanContext":
        """Open a span on this tracer regardless of the global one."""
        return _SpanContext(self, name, attrs)

    def record(self, record: dict[str, Any]) -> None:
        """Adopt an externally produced span record (dist worker fan-in)."""
        self._record(dict(record))

    def _record(self, record: dict[str, Any]) -> None:
        with self._lock:
            self.spans.append(record)
            sink = self._sink
            if self._fh is not None:
                # Whole lines only: the file-object buffer stays empty
                # between flushes, so a crash never truncates mid-record.
                self._buffer.append(json.dumps(record) + "\n")
                if len(self._buffer) >= self._flush_every:
                    self._flush_locked()
        if sink is not None:
            sink(record)


class _SpanContext:
    """A single open span; records itself on exit.

    On enter it adopts the current context (a live span in this process
    or a propagated :class:`~repro.obs.context.SpanContext`) as its
    parent — inheriting its ``trace_id`` or minting a fresh one at a
    root — and installs itself as the current context for the block.
    """

    __slots__ = ("_tracer", "name", "_attrs", "_start", "_wall", "depth",
                 "trace_id", "span_id", "_parent_id", "_parent_name",
                 "_token", "_entered")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = str(name)
        self._attrs = attrs
        self._entered = False

    def set_attr(self, key: str, value: Any) -> None:
        """Attach a request-scoped attribute to this span's record."""
        self._attrs[key] = value

    def __enter__(self) -> "_SpanContext":
        parent = _CURRENT.get()
        if parent is not None:
            self.trace_id = parent.trace_id
            self._parent_id = parent.span_id
            self.depth = parent.depth + 1  # SpanContext.depth == -1
            self._parent_name = parent.name
        else:
            self.trace_id = new_trace_id()
            self._parent_id = None
            self.depth = 0
            self._parent_name = None
        self.span_id = new_span_id()
        self._token = _CURRENT.set(self)
        self._entered = True
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if self._entered:
            try:
                _CURRENT.reset(self._token)
            except ValueError:  # pragma: no cover - exited in foreign context
                _CURRENT.set(None)
            self._entered = False
        record: dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "ts": round(self._wall, 6),
            "dur": duration,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self._parent_id,
            "depth": self.depth,
            "parent": self._parent_name,
            "thread": threading.get_ident(),
            "pid": os.getpid(),
        }
        if exc_type is not None:
            record["error"] = True
        for key, value in self._attrs.items():
            record.setdefault(key, _json_safe(value))
        self._tracer._record(record)


class _NoopSpan:
    """Shared do-nothing span: the disabled fast path (zero allocation)."""

    __slots__ = ()

    trace_id = None
    span_id = None

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP = _NoopSpan()
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer behind :func:`trace`."""
    return _TRACER


def enable_tracing(path: str | None = None,
                   sink: Callable[[dict[str, Any]], None] | None = None,
                   flush_every: int | None = None) -> Tracer:
    """Turn on the global tracer (optionally exporting spans to ``path``)."""
    return _TRACER.enable(path=path, sink=sink, flush_every=flush_every)


def disable_tracing() -> None:
    """Turn the global tracer off, flush, and close its export file."""
    _TRACER.disable()


def trace(name: str, **attrs: Any):
    """Open a named span on the global tracer (no-op while disabled).

    Returns a context manager.  Extra keyword arguments become
    attributes on the span record (coerced to JSON-safe values).
    """
    if not _TRACER.enabled:
        return _NOOP
    return _SpanContext(_TRACER, name, attrs)


def current_span():
    """The innermost active span, for request-scoped attributes::

        current_span().set_attr("cache_hits", hits)

    Always safe to call: returns the shared no-op span when tracing is
    disabled or no span is open, so call sites allocate nothing.  A
    propagated parent (remote process) also accepts ``set_attr`` as a
    no-op.
    """
    ctx = _CURRENT.get()
    return ctx if ctx is not None else _NOOP


def traced(name: str | None = None, **attrs: Any):
    """Decorator form of :func:`trace`.

    The enabled check happens per *call*, so functions decorated at
    import time start producing spans as soon as tracing is enabled::

        @traced("serve.rebuild")
        def rebuild(...): ...
    """

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with trace(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


class tracing:
    """Context manager enabling the global tracer for a block (tests)::

        with tracing() as tracer:
            run()
        spans = list(tracer.spans)
    """

    def __init__(self, path: str | None = None,
                 sink: Callable[[dict[str, Any]], None] | None = None,
                 flush_every: int | None = None) -> None:
        self._path = path
        self._sink = sink
        self._flush_every = flush_every

    def __enter__(self) -> Tracer:
        _TRACER.reset()  # a fresh block sees only its own spans
        return enable_tracing(path=self._path, sink=self._sink,
                              flush_every=self._flush_every)

    def __exit__(self, *exc_info) -> None:
        disable_tracing()


def read_trace(path: str) -> list[dict[str, Any]]:
    """Parse a span JSONL file back into a list of records."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _reset_after_fork() -> None:
    """Give forked children a clean tracer (see module docstring)."""
    tracer = _TRACER
    inherited_fh = tracer._fh
    tracer._lock = threading.Lock()
    tracer._buffer = []
    tracer._fh = None
    tracer._path = None
    tracer._sink = None
    tracer.enabled = False
    tracer.spans.clear()
    if inherited_fh is not None:
        # Drop the text/binary buffer layers without flushing: anything
        # buffered belongs to the parent, and a GC-time flush from the
        # child would interleave bytes onto the shared file description.
        try:
            inherited_fh.detach().detach()
        except Exception:
            pass
    detach_context()


if hasattr(os, "register_at_fork"):  # POSIX only; fork is how pool/dist spawn
    os.register_at_fork(after_in_child=_reset_after_fork)
