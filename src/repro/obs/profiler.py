"""Opt-in autograd profiler for :mod:`repro.nn`.

Answers "which op / which layer is this model spending its time in"
without touching model code: inside a ``with AutogradProfiler() as
prof:`` block every public :mod:`repro.nn.functional` op and every
:class:`repro.nn.Module.__call__` is wrapped to aggregate

* per-**op** forward self-time (time in the op minus time in ops it
  calls internally, so composites like ``mean = mul(sum(...))`` don't
  double-count their children), backward closure time, call counts, and
  result-tensor allocation counts/bytes;
* per-**layer** (module class) forward call counts, inclusive time and
  self-time (exclusive of nested module calls), plus backward time
  credited from the ops each layer created during its forward.

The hooks are installed by *patching* — ``functional``'s module
attributes and ``Module.__call__`` are swapped for timed wrappers on
``__enter__`` and restored on ``__exit__`` — so code outside a
profiling block runs the original, unwrapped functions: the overhead
when the profiler is off is exactly zero (asserted by
``tests/obs/test_profiler.py`` via identity checks).

Backward time is captured by re-pointing each produced tensor's
``_backward_fn`` at a timing shim, which runs during ``backward()``'s
topological sweep — possibly *after* the profiler block exits; those
late closures still record into the profile they were created under.

Typical use::

    with AutogradProfiler() as prof:
        engine.train_epoch()
    print(prof.table())          # sorted per-op / per-layer breakdown
    prof.export("profile.jsonl")  # feed `python -m repro.obs report`

The profiler is process-global (it patches shared modules): nesting or
concurrent activation raises, and frame stacks are thread-local so a
profiled serve worker does not corrupt another thread's attribution.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..nn import functional as _functional
from ..nn.module import Module
from ..nn.tensor import Tensor

__all__ = ["AutogradProfiler", "LayerStat", "OpStat"]

_ACTIVE_LOCK = threading.Lock()
_ACTIVE: "AutogradProfiler | None" = None


@dataclass
class OpStat:
    """Aggregate cost of one ``repro.nn.functional`` op."""

    forward_calls: int = 0
    forward_seconds: float = 0.0
    backward_calls: int = 0
    backward_seconds: float = 0.0
    alloc_count: int = 0
    alloc_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds


@dataclass
class LayerStat:
    """Aggregate cost of one module class (``Linear``, ``Conv2d``, ...)."""

    calls: int = 0
    total_seconds: float = 0.0      # inclusive of nested modules/ops
    self_seconds: float = 0.0       # exclusive of nested module calls
    backward_seconds: float = 0.0   # credited from ops created inside

    @property
    def combined_seconds(self) -> float:
        return self.self_seconds + self.backward_seconds


@dataclass
class _Frames:
    """Per-thread attribution state."""

    op_stack: list[list[float]] = field(default_factory=list)
    layer_stack: list[list] = field(default_factory=list)


class AutogradProfiler:
    """Aggregate per-op and per-layer forward/backward cost (see module doc).

    Parameters
    ----------
    ops:
        Hook the :mod:`repro.nn.functional` operator zoo.
    modules:
        Hook :meth:`repro.nn.Module.__call__`.
    """

    def __init__(self, ops: bool = True, modules: bool = True) -> None:
        self.hook_ops = ops
        self.hook_modules = modules
        self.op_stats: dict[str, OpStat] = {}
        self.layer_stats: dict[str, LayerStat] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._saved_ops: dict[str, Callable] = {}
        self._saved_call: Callable | None = None

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def __enter__(self) -> "AutogradProfiler":
        global _ACTIVE
        with _ACTIVE_LOCK:
            if _ACTIVE is not None:
                raise RuntimeError(
                    "an AutogradProfiler is already active; profiling hooks "
                    "are process-global and cannot nest")
            _ACTIVE = self
        try:
            if self.hook_ops:
                for name in _functional.__all__:
                    fn = getattr(_functional, name, None)
                    if callable(fn):
                        self._saved_ops[name] = fn
                        setattr(_functional, name, self._wrap_op(name, fn))
            if self.hook_modules:
                self._saved_call = Module.__call__
                Module.__call__ = self._wrap_module_call(Module.__call__)
        except BaseException:  # pragma: no cover - defensive unwind
            self._restore()
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _restore(self) -> None:
        global _ACTIVE
        for name, fn in self._saved_ops.items():
            setattr(_functional, name, fn)
        self._saved_ops.clear()
        if self._saved_call is not None:
            Module.__call__ = self._saved_call
            self._saved_call = None
        with _ACTIVE_LOCK:
            if _ACTIVE is self:
                _ACTIVE = None

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _frames(self) -> _Frames:
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = self._local.frames = _Frames()
        return frames

    def _op_stat(self, name: str) -> OpStat:
        stat = self.op_stats.get(name)
        if stat is None:
            stat = self.op_stats.setdefault(name, OpStat())
        return stat

    def _layer_stat(self, name: str) -> LayerStat:
        stat = self.layer_stats.get(name)
        if stat is None:
            stat = self.layer_stats.setdefault(name, LayerStat())
        return stat

    def _wrap_op(self, name: str, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            frames = self._frames()
            frame = [0.0]  # seconds spent in ops this op calls internally
            frames.op_stack.append(frame)
            start = time.perf_counter()
            try:
                out = fn(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                frames.op_stack.pop()
                if frames.op_stack:
                    frames.op_stack[-1][0] += elapsed
            self_time = elapsed - frame[0]
            layer = frames.layer_stack[-1][0] if frames.layer_stack else None
            is_tensor = isinstance(out, Tensor)
            with self._lock:
                stat = self._op_stat(name)
                stat.forward_calls += 1
                stat.forward_seconds += self_time
                if is_tensor:
                    stat.alloc_count += 1
                    stat.alloc_bytes += out.data.nbytes
            # Identity-return ops (dropout in eval mode) hand back an input
            # whose closure belongs to - and was already wrapped by - the op
            # that produced it; the marker stops re-attribution.
            if (is_tensor and out._backward_fn is not None
                    and not getattr(out._backward_fn, "_obs_profiled", False)):
                out._backward_fn = self._wrap_backward(name, layer,
                                                       out._backward_fn)
            return out

        return wrapped

    def _wrap_backward(self, op_name: str, layer: str | None,
                       inner: Callable) -> Callable:
        def timed_backward(grad):
            start = time.perf_counter()
            try:
                inner(grad)
            finally:
                elapsed = time.perf_counter() - start
                with self._lock:
                    stat = self._op_stat(op_name)
                    stat.backward_calls += 1
                    stat.backward_seconds += elapsed
                    if layer is not None:
                        self._layer_stat(layer).backward_seconds += elapsed

        timed_backward._obs_profiled = True
        return timed_backward

    def _wrap_module_call(self, orig: Callable) -> Callable:
        profiler = self

        @functools.wraps(orig)
        def wrapped(module, *args, **kwargs):
            frames = profiler._frames()
            name = type(module).__name__
            frame = [name, 0.0]  # seconds spent in nested module calls
            frames.layer_stack.append(frame)
            start = time.perf_counter()
            try:
                return orig(module, *args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                frames.layer_stack.pop()
                if frames.layer_stack:
                    frames.layer_stack[-1][1] += elapsed
                with profiler._lock:
                    stat = profiler._layer_stat(name)
                    stat.calls += 1
                    stat.total_seconds += elapsed
                    stat.self_seconds += elapsed - frame[1]

        return wrapped

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def to_records(self) -> list[dict[str, Any]]:
        """JSON-safe rows (``type: "op" | "layer"``) for JSONL export."""
        records: list[dict[str, Any]] = []
        with self._lock:
            for name, s in self.op_stats.items():
                records.append({
                    "type": "op", "name": name,
                    "forward_calls": s.forward_calls,
                    "forward_seconds": s.forward_seconds,
                    "backward_calls": s.backward_calls,
                    "backward_seconds": s.backward_seconds,
                    "alloc_count": s.alloc_count,
                    "alloc_bytes": s.alloc_bytes,
                })
            for name, s in self.layer_stats.items():
                records.append({
                    "type": "layer", "name": name,
                    "calls": s.calls,
                    "total_seconds": s.total_seconds,
                    "self_seconds": s.self_seconds,
                    "backward_seconds": s.backward_seconds,
                })
        records.sort(key=lambda r: (r["type"],
                                    -(r.get("forward_seconds", 0.0)
                                      + r.get("backward_seconds", 0.0)
                                      + r.get("self_seconds", 0.0))))
        return records

    def export(self, path: str) -> str:
        """Append one JSONL line per op/layer (``repro.obs report`` input)."""
        with open(path, "a", encoding="utf-8") as handle:
            for record in self.to_records():
                handle.write(json.dumps(record) + "\n")
        return path

    def table(self, top: int | None = None) -> str:
        """Human-readable per-op and per-layer tables, costliest first."""
        from .report import render_op_table

        return render_op_table(self.to_records(), top=top)
