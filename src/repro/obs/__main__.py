"""Entry point for ``python -m repro.obs report``."""

from .report import main

if __name__ == "__main__":
    raise SystemExit(main())
