"""``repro.obs`` — unified observability: metrics, tracing, profiling.

One dependency-free subsystem gives every layer of the repo the same
three instruments:

* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — thread-safe
  labeled counters / gauges / fixed-bucket histograms with quantile
  estimation and Prometheus text exposition (``GET /metrics`` on the
  serve HTTP server renders one);
* :func:`trace` (:mod:`repro.obs.trace`) — nested wall-time spans with
  optional JSONL export, wrapped around engine epochs, objective
  forward/backward, evaluator ranking batches, bundle loading and serve
  request handling; free (shared no-op context manager) while disabled;
* :class:`AutogradProfiler` (:mod:`repro.obs.profiler`) — opt-in
  per-op / per-layer forward+backward time and allocation aggregation
  over :mod:`repro.nn`, installed by patching and therefore zero-cost
  when inactive.

``python -m repro.obs report`` (:mod:`repro.obs.report`) summarizes any
JSONL the instruments produce into per-span / per-op tables.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    render_prometheus,
)
from .profiler import AutogradProfiler
from .report import load_events, render_report
from .trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    read_trace,
    trace,
    traced,
    tracing,
)

__all__ = [
    "AutogradProfiler",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "exponential_buckets",
    "get_tracer",
    "load_events",
    "read_trace",
    "render_prometheus",
    "render_report",
    "trace",
    "traced",
    "tracing",
]
