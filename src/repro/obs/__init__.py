"""``repro.obs`` — unified observability: metrics, tracing, profiling.

One dependency-free subsystem gives every layer of the repo the same
three instruments:

* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — thread-safe
  labeled counters / gauges / fixed-bucket histograms with quantile
  estimation and Prometheus text exposition (``GET /metrics`` on the
  serve HTTP server renders one);
* :func:`trace` (:mod:`repro.obs.trace`) — nested wall-time spans with
  optional JSONL export, wrapped around engine epochs, objective
  forward/backward, evaluator ranking batches, bundle loading and serve
  request handling; free (shared no-op context manager) while disabled;
* :class:`AutogradProfiler` (:mod:`repro.obs.profiler`) — opt-in
  per-op / per-layer forward+backward time and allocation aggregation
  over :mod:`repro.nn`, installed by patching and therefore zero-cost
  when inactive.

``python -m repro.obs report`` (:mod:`repro.obs.report`) summarizes any
JSONL the instruments produce into per-span / per-op tables.
"""

from .context import (
    SpanContext,
    activate,
    current_context,
    current_traceparent,
    detach_context,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    render_prometheus,
)
from .profiler import AutogradProfiler
from .report import build_trace_trees, load_events, render_report
from .slo import SLOTracker
from .trace import (
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    read_trace,
    trace,
    traced,
    tracing,
)

__all__ = [
    "AutogradProfiler",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLOTracker",
    "SpanContext",
    "Tracer",
    "activate",
    "build_trace_trees",
    "current_context",
    "current_span",
    "current_traceparent",
    "detach_context",
    "disable_tracing",
    "enable_tracing",
    "exponential_buckets",
    "format_traceparent",
    "get_tracer",
    "load_events",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "read_trace",
    "render_prometheus",
    "render_report",
    "trace",
    "traced",
    "tracing",
]
