"""Molecular similarity measures used by the Fig. 1 diamond experiment.

The paper measures molecule similarity as the inner product of
pre-trained GIN feature vectors; we provide that plus the classic
Tanimoto coefficient on hashed fingerprints as a model-free control.
"""

from __future__ import annotations

import numpy as np

from .molecule import Molecule

__all__ = ["tanimoto", "inner_product_similarity", "cosine_similarity", "pairwise_cosine"]


def tanimoto(a: Molecule, b: Molecule, n_bits: int = 256) -> float:
    """Tanimoto coefficient between binarised substructure fingerprints."""
    fa = a.fingerprint(n_bits=n_bits) > 0
    fb = b.fingerprint(n_bits=n_bits) > 0
    union = np.logical_or(fa, fb).sum()
    if union == 0:
        return 0.0
    return float(np.logical_and(fa, fb).sum() / union)


def inner_product_similarity(emb_a: np.ndarray, emb_b: np.ndarray) -> float:
    """Raw inner product of two embedding vectors (the paper's measure)."""
    return float(np.dot(emb_a, emb_b))


def cosine_similarity(emb_a: np.ndarray, emb_b: np.ndarray, eps: float = 1e-12) -> float:
    """Cosine similarity of two embedding vectors."""
    denom = float(np.linalg.norm(emb_a) * np.linalg.norm(emb_b))
    return float(np.dot(emb_a, emb_b) / (denom + eps))


def pairwise_cosine(embeddings: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Dense cosine-similarity matrix for ``(n, d)`` embeddings."""
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True) + eps
    unit = embeddings / norms
    return unit @ unit.T
