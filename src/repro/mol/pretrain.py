"""Self-supervised GIN pre-training by masked attribute prediction.

Reproduces the pre-training strategy the paper takes its molecular
features from (Hu et al., 2020): randomly mask a fraction of atoms'
element attributes, run the GIN, and predict the masked elements from
the contextual node embeddings with a linear head.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import functional as F
from .gin import GINEncoder, batch_molecules
from .molecule import ELEMENTS, Molecule

__all__ = ["MaskedAttributePretrainer", "PretrainResult"]


@dataclass
class PretrainResult:
    """Loss/accuracy trace of a pre-training run."""

    losses: list[float]
    accuracies: list[float]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


class MaskedAttributePretrainer:
    """Train a :class:`GINEncoder` to recover masked atom elements.

    Parameters
    ----------
    encoder:
        The GIN to pre-train (updated in place).
    rng:
        Randomness for masking and batching.
    mask_rate:
        Fraction of atoms whose element one-hot is zeroed per batch.
    lr:
        Adam learning rate.
    """

    def __init__(self, encoder: GINEncoder, rng: np.random.Generator,
                 mask_rate: float = 0.15, lr: float = 0.01) -> None:
        if not 0.0 < mask_rate < 1.0:
            raise ValueError("mask_rate must be in (0, 1)")
        self.encoder = encoder
        self.rng = rng
        self.mask_rate = mask_rate
        self.head = nn.Linear(encoder.hidden_dim, len(ELEMENTS), rng=rng)
        params = list(encoder.parameters()) + list(self.head.parameters())
        self.optimizer = nn.Adam(params, lr=lr)

    def train(self, molecules: list[Molecule], epochs: int = 3,
              batch_size: int = 32) -> PretrainResult:
        """Run masked-attribute pre-training; returns the loss trace."""
        losses: list[float] = []
        accuracies: list[float] = []
        for _ in range(epochs):
            order = self.rng.permutation(len(molecules))
            epoch_losses, epoch_accs = [], []
            for start in range(0, len(order), batch_size):
                batch = [molecules[i] for i in order[start:start + batch_size]]
                loss, acc = self._step(batch)
                epoch_losses.append(loss)
                epoch_accs.append(acc)
            losses.append(float(np.mean(epoch_losses)))
            accuracies.append(float(np.mean(epoch_accs)))
        return PretrainResult(losses=losses, accuracies=accuracies)

    def _step(self, molecules: list[Molecule]) -> tuple[float, float]:
        x, edge_index, _ = batch_molecules(molecules)
        num_nodes = x.shape[0]
        n_mask = max(1, int(num_nodes * self.mask_rate))
        masked = self.rng.choice(num_nodes, size=n_mask, replace=False)
        targets = x[masked, :len(ELEMENTS)].argmax(axis=1)
        corrupted = x.copy()
        corrupted[masked, :len(ELEMENTS)] = 0.0

        self.optimizer.zero_grad()
        h = self.encoder.node_embeddings(corrupted, edge_index)
        logits = self.head(F.index(h, masked))
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        self.optimizer.step()
        accuracy = float((logits.data.argmax(axis=1) == targets).mean())
        return float(loss.data), accuracy
