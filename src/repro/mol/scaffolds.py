"""Pharmacophore scaffold library.

A *scaffold* is the latent variable the synthetic-data generator uses to
couple every modality, mirroring the real-world correlations the paper
exploits (Section I and the Fig. 7 case study):

* the **molecular core**: a characteristic substructure (β-lactam ring,
  sulfonamide group, phenol, ...);
* the **name morphology**: the textual prefix/suffix pharmacology gives
  drugs of that class ("-cillin", "Sulfa-", "-olol", ...);
* the **biological profile**: which gene families the class targets and
  which disease families it treats, which drives relation formation in
  the synthetic BKG.

Because scaffold -> {molecule substructure, name affix, relations} is a
common cause, a model able to align molecule and text modalities gains
real predictive signal — exactly the phenomenon Fig. 1 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .molecule import Atom, Bond

__all__ = ["Scaffold", "SCAFFOLDS", "scaffold_by_name"]


@dataclass(frozen=True)
class Scaffold:
    """One drug-class scaffold coupling molecule, text and biology."""

    name: str
    #: Name affix; ``("suffix", "cillin")`` or ``("prefix", "Sulfa")``.
    affix: tuple[str, str]
    #: Core substructure atoms.
    core_atoms: tuple[str, ...]
    #: Core bonds as ``(i, j, order)`` over ``core_atoms`` indices.
    core_bonds: tuple[tuple[int, int, str], ...]
    #: Gene families this class characteristically targets (indices into
    #: the dataset generator's gene-family list).
    target_gene_families: tuple[int, ...]
    #: Disease families this class characteristically treats.
    treated_disease_families: tuple[int, ...]
    #: Phrase used in textual descriptions.
    description_phrase: str

    def affixed_name(self, stem: str) -> str:
        """Attach this scaffold's affix to a name stem."""
        kind, affix = self.affix
        if kind == "prefix":
            return f"{affix}{stem.lower()}"
        return f"{stem}{affix}"


def _ring(elements: str, aromatic: bool = False) -> tuple[tuple[str, ...], tuple[tuple[int, int, str], ...]]:
    """Build a simple ring from an element string like ``"CCCCCN"``."""
    atoms = tuple(elements)
    order = "aromatic" if aromatic else "single"
    n = len(atoms)
    bonds = tuple((i, (i + 1) % n, order) for i in range(n))
    return atoms, bonds


_BENZENE_ATOMS, _BENZENE_BONDS = _ring("CCCCCC", aromatic=True)

SCAFFOLDS: tuple[Scaffold, ...] = (
    Scaffold(
        name="beta_lactam",
        affix=("suffix", "cillin"),
        # Fused 4-membered β-lactam: N-C(=O)-C-C ring with carbonyl O.
        core_atoms=("N", "C", "C", "C", "O", "S"),
        core_bonds=((0, 1, "single"), (1, 2, "single"), (2, 3, "single"),
                    (3, 0, "single"), (1, 4, "double"), (3, 5, "single")),
        target_gene_families=(0, 1),
        treated_disease_families=(0,),
        description_phrase="a penicillin-type antibiotic effective against many bacterial infections",
    ),
    Scaffold(
        name="sulfonamide",
        affix=("prefix", "Sulfa"),
        # S(=O)(=O)-N group on a ring carbon.
        core_atoms=("S", "O", "O", "N", "C"),
        core_bonds=((0, 1, "double"), (0, 2, "double"), (0, 3, "single"), (0, 4, "single")),
        target_gene_families=(1, 2),
        treated_disease_families=(0, 1),
        description_phrase="a sulfonamide antibacterial that inhibits folate synthesis",
    ),
    Scaffold(
        name="phenol_amine",
        affix=("suffix", "phrine"),
        # Aromatic ring with hydroxyl and amine-bearing side chain.
        core_atoms=_BENZENE_ATOMS + ("O", "C", "N"),
        core_bonds=_BENZENE_BONDS + ((0, 6, "single"), (3, 7, "single"), (7, 8, "single")),
        target_gene_families=(3,),
        treated_disease_families=(2,),
        description_phrase="a phenolic sympathomimetic amine acting on adrenergic receptors",
    ),
    Scaffold(
        name="piperazine",
        affix=("suffix", "azine"),
        core_atoms=("N", "C", "C", "N", "C", "C"),
        core_bonds=((0, 1, "single"), (1, 2, "single"), (2, 3, "single"),
                    (3, 4, "single"), (4, 5, "single"), (5, 0, "single")),
        target_gene_families=(4,),
        treated_disease_families=(3,),
        description_phrase="a piperazine-derived compound with central nervous system activity",
    ),
    Scaffold(
        name="statin",
        affix=("suffix", "statin"),
        # Dihydroxy acid chain: C-C(O)-C-C(O)-C-C(=O)-O.
        core_atoms=("C", "C", "O", "C", "C", "O", "C", "O", "O"),
        core_bonds=((0, 1, "single"), (1, 2, "single"), (1, 3, "single"),
                    (3, 4, "single"), (4, 5, "single"), (4, 6, "single"),
                    (6, 7, "double"), (6, 8, "single")),
        target_gene_families=(5,),
        treated_disease_families=(4,),
        description_phrase="an HMG-CoA reductase inhibitor that lowers cholesterol",
    ),
    Scaffold(
        name="quinolone",
        affix=("suffix", "oxacin"),
        core_atoms=_BENZENE_ATOMS + ("N", "C", "C", "O", "F"),
        core_bonds=_BENZENE_BONDS + ((0, 6, "single"), (6, 7, "single"),
                                     (7, 8, "single"), (8, 9, "double"),
                                     (2, 10, "single")),
        target_gene_families=(0, 2),
        treated_disease_families=(0,),
        description_phrase="a fluoroquinolone antibiotic targeting bacterial gyrase",
    ),
    Scaffold(
        name="beta_blocker",
        affix=("suffix", "olol"),
        core_atoms=_BENZENE_ATOMS + ("O", "C", "C", "O", "C", "N"),
        core_bonds=_BENZENE_BONDS + ((0, 6, "single"), (6, 7, "single"),
                                     (7, 8, "single"), (8, 9, "single"),
                                     (8, 10, "single"), (10, 11, "single")),
        target_gene_families=(3, 6),
        treated_disease_families=(2, 4),
        description_phrase="a beta-adrenergic blocking agent used for hypertension",
    ),
    Scaffold(
        name="ace_inhibitor",
        affix=("suffix", "pril"),
        core_atoms=("N", "C", "C", "O", "O", "C", "C", "O"),
        core_bonds=((0, 1, "single"), (1, 2, "single"), (2, 3, "double"),
                    (2, 4, "single"), (1, 5, "single"), (5, 6, "single"),
                    (6, 7, "double")),
        target_gene_families=(6,),
        treated_disease_families=(4,),
        description_phrase="an angiotensin-converting enzyme inhibitor for cardiovascular disease",
    ),
    Scaffold(
        name="benzodiazepine",
        affix=("suffix", "azepam"),
        core_atoms=_BENZENE_ATOMS + ("N", "C", "O", "N", "C"),
        core_bonds=_BENZENE_BONDS + ((0, 6, "single"), (6, 7, "single"),
                                     (7, 8, "double"), (7, 9, "single"),
                                     (9, 10, "single"), (10, 1, "single")),
        target_gene_families=(4, 7),
        treated_disease_families=(3,),
        description_phrase="a benzodiazepine sedative modulating GABA receptors",
    ),
    Scaffold(
        name="sartan",
        affix=("suffix", "sartan"),
        # Tetrazole ring attached to biphenyl-like carbon.
        core_atoms=("N", "N", "N", "N", "C") + _BENZENE_ATOMS,
        core_bonds=((0, 1, "single"), (1, 2, "double"), (2, 3, "single"),
                    (3, 4, "double"), (4, 0, "single"), (4, 5, "single"))
        + tuple((i + 5, (i + 1) % 6 + 5, "aromatic") for i in range(6)),
        target_gene_families=(6, 8),
        treated_disease_families=(4,),
        description_phrase="an angiotensin II receptor antagonist for blood pressure control",
    ),
)


_BY_NAME = {s.name: s for s in SCAFFOLDS}


def scaffold_by_name(name: str) -> Scaffold:
    """Look up a scaffold by its identifier."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown scaffold {name!r}; known: {sorted(_BY_NAME)}") from None


def core_molecule_parts(scaffold: Scaffold) -> tuple[list[Atom], list[Bond]]:
    """Materialise a scaffold's core substructure as atoms and bonds."""
    atoms = [Atom(e) for e in scaffold.core_atoms]
    bonds = [Bond(i, j, order) for i, j, order in scaffold.core_bonds]
    return atoms, bonds
