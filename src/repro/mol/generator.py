"""Synthetic molecule generation.

Grows a :class:`~repro.mol.molecule.Molecule` from a scaffold core by
attaching random decorations (alkyl chains, small rings, halogens, polar
groups).  Two molecules of the same scaffold share the core substructure
— and hence fingerprint buckets and GIN-embedding neighbourhoods — while
decorations add realistic within-class variation.
"""

from __future__ import annotations

import numpy as np

from .molecule import Atom, Bond, Molecule
from .scaffolds import SCAFFOLDS, Scaffold, core_molecule_parts

__all__ = ["MoleculeGenerator"]

_DECORATION_ELEMENTS = ("C", "C", "C", "N", "O", "F", "Cl", "S")


class MoleculeGenerator:
    """Randomly decorate scaffold cores into full molecules.

    Parameters
    ----------
    rng:
        Randomness source (one generator per dataset build keeps results
        reproducible).
    min_decorations, max_decorations:
        Number of decoration moves applied after placing the core.
    """

    def __init__(self, rng: np.random.Generator,
                 min_decorations: int = 1, max_decorations: int = 4) -> None:
        if min_decorations > max_decorations:
            raise ValueError("min_decorations must be <= max_decorations")
        self.rng = rng
        self.min_decorations = min_decorations
        self.max_decorations = max_decorations

    # ------------------------------------------------------------------
    def generate(self, scaffold: Scaffold) -> Molecule:
        """Generate one molecule built on ``scaffold``."""
        atoms, bonds = core_molecule_parts(scaffold)
        n_moves = int(self.rng.integers(self.min_decorations, self.max_decorations + 1))
        for _ in range(n_moves):
            move = self.rng.random()
            if move < 0.55:
                self._attach_chain(atoms, bonds)
            elif move < 0.8:
                self._attach_ring(atoms, bonds)
            else:
                self._attach_heteroatom(atoms, bonds)
        return Molecule(atoms=atoms, bonds=bonds, scaffold=scaffold.name)

    def generate_random(self) -> Molecule:
        """Generate a molecule from a uniformly random scaffold."""
        scaffold = SCAFFOLDS[int(self.rng.integers(0, len(SCAFFOLDS)))]
        return self.generate(scaffold)

    def generate_batch(self, scaffold: Scaffold, count: int) -> list[Molecule]:
        """Generate ``count`` molecules sharing one scaffold."""
        return [self.generate(scaffold) for _ in range(count)]

    # ------------------------------------------------------------------
    def _random_attachment_point(self, atoms: list[Atom], bonds: list[Bond]) -> int:
        """Pick a carbon (preferred) or any atom with low degree."""
        degree = np.zeros(len(atoms), dtype=np.int64)
        for bond in bonds:
            degree[bond.i] += 1
            degree[bond.j] += 1
        candidates = [i for i, a in enumerate(atoms) if a.element == "C" and degree[i] < 4]
        if not candidates:
            candidates = [i for i in range(len(atoms)) if degree[i] < 4]
        if not candidates:
            candidates = list(range(len(atoms)))
        return int(self.rng.choice(candidates))

    def _attach_chain(self, atoms: list[Atom], bonds: list[Bond]) -> None:
        """Grow a short alkyl/heteroatom chain off a random atom."""
        anchor = self._random_attachment_point(atoms, bonds)
        length = int(self.rng.integers(1, 4))
        prev = anchor
        for _ in range(length):
            element = str(self.rng.choice(_DECORATION_ELEMENTS))
            atoms.append(Atom(element))
            new_idx = len(atoms) - 1
            bonds.append(Bond(prev, new_idx))
            prev = new_idx

    def _attach_ring(self, atoms: list[Atom], bonds: list[Bond]) -> None:
        """Fuse a 5- or 6-membered carbon ring at a random atom."""
        anchor = self._random_attachment_point(atoms, bonds)
        size = int(self.rng.choice([5, 6]))
        aromatic = bool(self.rng.random() < 0.5 and size == 6)
        order = "aromatic" if aromatic else "single"
        start = len(atoms)
        for _ in range(size):
            atoms.append(Atom("C"))
        for k in range(size):
            bonds.append(Bond(start + k, start + (k + 1) % size, order))
        bonds.append(Bond(anchor, start))

    def _attach_heteroatom(self, atoms: list[Atom], bonds: list[Bond]) -> None:
        """Attach a single polar atom (O, N, halogen)."""
        anchor = self._random_attachment_point(atoms, bonds)
        element = str(self.rng.choice(("O", "N", "F", "Cl")))
        atoms.append(Atom(element))
        order = "double" if element == "O" and self.rng.random() < 0.3 else "single"
        bonds.append(Bond(anchor, len(atoms) - 1, order))
