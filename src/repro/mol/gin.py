"""Graph Isomorphism Network (GIN) molecule encoder.

The paper obtains molecular features from a *pre-trained GIN* (Hu et
al., ICLR 2020) whose self-supervised objective predicts randomly masked
node attributes.  This module implements the same architecture on
:mod:`repro.nn`:

    h_v^{(k)} = MLP^{(k)}((1 + eps^{(k)}) * h_v^{(k-1)} + sum_{u in N(v)} h_u^{(k-1)})

with mean-pooling graph readout.  Batched graphs are processed as one
disjoint union with a per-node graph index, PyG-style.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import GraphData
from ..graph.kernels import gather_scatter, readout
from ..nn import functional as F
from .molecule import ELEMENTS, Molecule

__all__ = ["GINLayer", "GINEncoder", "batch_molecules", "batch_graph"]

#: Node feature width: one-hot element + one-hot clipped degree (0..6).
NODE_FEATURE_DIM = len(ELEMENTS) + 7


def batch_graph(molecules: list[Molecule]) -> GraphData:
    """Disjoint union of the molecules' cached :class:`GraphData` views."""
    batched = GraphData.batch([mol.to_graph() for mol in molecules])
    if not molecules:
        batched.node_feat["x"] = np.zeros((0, NODE_FEATURE_DIM))
    return batched


def batch_molecules(molecules: list[Molecule]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge molecules into one disjoint-union graph.

    Returns ``(node_features, edge_index, graph_index)`` where
    ``graph_index[v]`` says which molecule node ``v`` belongs to.
    Thin array view over :func:`batch_graph`, kept for callers that
    want raw arrays rather than a :class:`GraphData`.
    """
    batched = batch_graph(molecules)
    return batched.node_feat["x"], batched.edge_index, batched.graph_ids


class GINLayer(nn.Module):
    """One GIN convolution with a 2-layer MLP and learnable epsilon."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.eps = nn.Parameter(np.zeros(1))
        self.mlp = nn.Sequential(
            nn.Linear(in_dim, out_dim, rng=rng),
            nn.ReLU(),
            nn.Linear(out_dim, out_dim, rng=rng),
        )

    def forward(self, h: nn.Tensor, edge_index: np.ndarray) -> nn.Tensor:
        aggregated = gather_scatter(h, edge_index[0], edge_index[1], h.shape[0])
        combined = F.add(F.mul(F.add(self.eps, 1.0), h), aggregated)
        return self.mlp(combined)


class GINEncoder(nn.Module):
    """Stacked GIN layers with mean readout producing molecule embeddings.

    Parameters
    ----------
    hidden_dim:
        Width of every GIN layer and of the output embedding.
    num_layers:
        Number of message-passing rounds.
    rng:
        Weight-initialisation source.
    """

    def __init__(self, hidden_dim: int = 32, num_layers: int = 3,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.input_proj = nn.Linear(NODE_FEATURE_DIM, hidden_dim, rng=gen)
        self.layers = nn.ModuleList(
            [GINLayer(hidden_dim, hidden_dim, rng=gen) for _ in range(num_layers)]
        )
        # Jumping-knowledge projection: concat of all layer readouts -> hidden.
        self.jk_proj = nn.Linear(hidden_dim * num_layers, hidden_dim, rng=gen)

    def node_embeddings(self, x: np.ndarray, edge_index: np.ndarray) -> nn.Tensor:
        """Per-node embeddings after all message-passing rounds."""
        h = self.input_proj(nn.Tensor(x))
        for layer in self.layers:
            h = F.relu(layer(h, edge_index))
        return h

    def forward(self, molecules: "list[Molecule] | GraphData") -> nn.Tensor:
        """Graph embeddings ``(B, hidden_dim)``.

        Accepts either a molecule list (batched internally) or an
        already-batched :class:`GraphData` carrying node feature ``"x"``.
        Sum-pooling (the provably most expressive GIN readout) is applied
        to every layer's node states; the concatenated per-layer readouts
        are projected back to ``hidden_dim`` (jumping knowledge), so both
        local motif counts and global context survive into the embedding.
        """
        graph = molecules if isinstance(molecules, GraphData) else batch_graph(molecules)
        edge_index = graph.edge_index
        h = self.input_proj(nn.Tensor(graph.node_feat["x"]))
        readouts = []
        for layer in self.layers:
            h = F.relu(layer(h, edge_index))
            readouts.append(readout(h, graph))
        return self.jk_proj(F.concat(readouts, axis=1))

    def encode(self, molecules: "list[Molecule] | GraphData") -> np.ndarray:
        """Inference-mode embeddings as a plain array."""
        with nn.no_grad():
            return self.forward(molecules).data
