"""Molecular graph representation.

A :class:`Molecule` is an undirected labelled graph of atoms and bonds —
the molecular-structure modality of the paper.  It supports conversion to
``networkx`` for analysis, hashed substructure fingerprints (an ECFP-like
scheme used by the Fig. 1 diamond experiment), and featurisation for the
GIN encoder in :mod:`repro.mol.gin`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..graph import GraphData

__all__ = ["Atom", "Bond", "Molecule", "ELEMENTS", "BOND_ORDERS"]

#: Elements the synthetic chemistry uses; index = feature id.
ELEMENTS: tuple[str, ...] = ("C", "N", "O", "S", "P", "F", "Cl", "Br")

#: Bond order codes: single, double, triple, aromatic.
BOND_ORDERS: tuple[str, ...] = ("single", "double", "triple", "aromatic")


@dataclass(frozen=True)
class Atom:
    """One atom: element symbol plus formal charge."""

    element: str
    charge: int = 0

    def __post_init__(self) -> None:
        if self.element not in ELEMENTS:
            raise ValueError(f"unknown element {self.element!r}")

    @property
    def element_id(self) -> int:
        return ELEMENTS.index(self.element)


@dataclass(frozen=True)
class Bond:
    """An undirected bond between atom indices ``i < j``."""

    i: int
    j: int
    order: str = "single"

    def __post_init__(self) -> None:
        if self.order not in BOND_ORDERS:
            raise ValueError(f"unknown bond order {self.order!r}")
        if self.i == self.j:
            raise ValueError("self-bonds are not allowed")

    @property
    def order_id(self) -> int:
        return BOND_ORDERS.index(self.order)

    def normalized(self) -> "Bond":
        """Return the bond with ``i < j``."""
        if self.i <= self.j:
            return self
        return Bond(self.j, self.i, self.order)


@dataclass
class Molecule:
    """An attributed molecular graph.

    Attributes
    ----------
    atoms:
        Atom list; index is the atom id.
    bonds:
        Undirected bonds between atom ids.
    scaffold:
        Name of the pharmacophore scaffold the molecule was grown from
        (generator metadata; ``""`` for unknown).
    """

    atoms: list[Atom]
    bonds: list[Bond]
    scaffold: str = ""
    _adjacency: dict[int, list[tuple[int, int]]] | None = field(
        default=None, repr=False, compare=False
    )
    # Derived-array caches.  A Molecule is immutable in practice (the
    # generator builds it once); every accessor below computes its
    # vectorized form on first call and reuses it afterwards, which is
    # what makes repeated GIN batching / similarity sweeps cheap.
    _bond_cols: tuple[np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _element_ids: np.ndarray | None = field(default=None, init=False, repr=False, compare=False)
    _degrees: np.ndarray | None = field(default=None, init=False, repr=False, compare=False)
    _edge_index: np.ndarray | None = field(default=None, init=False, repr=False, compare=False)
    _node_features: dict[int, np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _fingerprints: dict[tuple[int, int], np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _graphs: dict[int, GraphData] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        n = len(self.atoms)
        seen: set[tuple[int, int]] = set()
        normalized = []
        for bond in self.bonds:
            if bond.i >= n or bond.j >= n or bond.i < 0 or bond.j < 0:
                raise ValueError(f"bond {bond} references an atom out of range")
            bond = bond.normalized()
            key = (bond.i, bond.j)
            if key in seen:
                raise ValueError(f"duplicate bond between atoms {key}")
            seen.add(key)
            normalized.append(bond)
        self.bonds = normalized

    # ------------------------------------------------------------------
    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    @property
    def num_bonds(self) -> int:
        return len(self.bonds)

    def bond_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(i, j, order_id)`` int64 columns of the bond list."""
        if self._bond_cols is None:
            if self.bonds:
                cols = np.array([(b.i, b.j, b.order_id) for b in self.bonds],
                                dtype=np.int64)
            else:
                cols = np.zeros((0, 3), dtype=np.int64)
            self._bond_cols = (cols[:, 0], cols[:, 1], cols[:, 2])
        return self._bond_cols

    def element_ids(self) -> np.ndarray:
        """Cached per-atom element feature ids."""
        if self._element_ids is None:
            self._element_ids = np.fromiter(
                (a.element_id for a in self.atoms), dtype=np.int64, count=self.num_atoms
            )
        return self._element_ids

    def adjacency(self) -> dict[int, list[tuple[int, int]]]:
        """Atom id -> list of ``(neighbor_id, bond_order_id)``."""
        if self._adjacency is None:
            adj: dict[int, list[tuple[int, int]]] = {i: [] for i in range(self.num_atoms)}
            for bond in self.bonds:
                adj[bond.i].append((bond.j, bond.order_id))
                adj[bond.j].append((bond.i, bond.order_id))
            self._adjacency = adj
        return self._adjacency

    def degrees(self) -> np.ndarray:
        """Heavy-atom degree per atom (cached; treat as read-only)."""
        if self._degrees is None:
            bi, bj, _ = self.bond_arrays()
            self._degrees = (np.bincount(bi, minlength=self.num_atoms)
                             + np.bincount(bj, minlength=self.num_atoms))
        return self._degrees

    def element_counts(self) -> dict[str, int]:
        """Histogram of element symbols (a molecular formula, roughly)."""
        return dict(Counter(a.element for a in self.atoms))

    def to_networkx(self) -> nx.Graph:
        """Convert to an attributed ``networkx.Graph``."""
        g = nx.Graph()
        for idx, atom in enumerate(self.atoms):
            g.add_node(idx, element=atom.element, charge=atom.charge)
        for bond in self.bonds:
            g.add_edge(bond.i, bond.j, order=bond.order)
        return g

    def is_connected(self) -> bool:
        """Whether the molecular graph is a single connected component."""
        if self.num_atoms <= 1:
            return True
        return nx.is_connected(self.to_networkx())

    # ------------------------------------------------------------------
    # Fingerprints (ECFP-like hashed circular substructures)
    # ------------------------------------------------------------------
    def fingerprint(self, n_bits: int = 256, radius: int = 2) -> np.ndarray:
        """Hashed circular-substructure count fingerprint.

        Each atom starts from an (element, degree) label; ``radius``
        rounds of Weisfeiler-Lehman-style relabelling hash in sorted
        neighbour labels.  Every intermediate label increments a bucket
        of an ``n_bits``-wide count vector.  Same-scaffold molecules
        share many substructure labels and therefore similar
        fingerprints — the property the Fig. 1 experiment relies on.
        """
        key = (int(n_bits), int(radius))
        cached = self._fingerprints.get(key)
        if cached is not None:
            return cached.copy()
        import zlib

        def stable_hash(obj) -> int:
            # repr + crc32 is stable across processes, unlike hash().
            return zlib.crc32(repr(obj).encode())

        adj = self.adjacency()
        labels = [stable_hash((atom.element, len(adj[i])))
                  for i, atom in enumerate(self.atoms)]
        fp = np.zeros(n_bits)
        np.add.at(fp, np.asarray(labels, dtype=np.int64) % n_bits, 1.0)
        for _ in range(radius):
            new_labels = []
            for i in range(self.num_atoms):
                neighbourhood = tuple(sorted((labels[j], order) for j, order in adj[i]))
                new_labels.append(stable_hash((labels[i], neighbourhood)))
            labels = new_labels
            np.add.at(fp, np.asarray(labels, dtype=np.int64) % n_bits, 1.0)
        self._fingerprints[key] = fp
        return fp.copy()

    # ------------------------------------------------------------------
    # GIN featurisation
    # ------------------------------------------------------------------
    def node_features(self, max_degree: int = 6) -> np.ndarray:
        """Per-atom feature matrix: one-hot element ++ one-hot clipped degree.

        Fully vectorized (two fancy-index scatters) and cached per
        ``max_degree``; the returned array is shared — treat it as
        read-only (batching concatenates, so downstream copies anyway).
        """
        cached = self._node_features.get(max_degree)
        if cached is None:
            rows = np.arange(self.num_atoms)
            deg = np.minimum(self.degrees(), max_degree)
            cached = np.zeros((self.num_atoms, len(ELEMENTS) + max_degree + 1))
            cached[rows, self.element_ids()] = 1.0
            cached[rows, len(ELEMENTS) + deg] = 1.0
            self._node_features[max_degree] = cached
        return cached

    def edge_index(self) -> np.ndarray:
        """Directed edge list ``(2, 2*num_bonds)``, both directions (cached)."""
        if self._edge_index is None:
            bi, bj, _ = self.bond_arrays()
            self._edge_index = np.stack([np.concatenate([bi, bj]),
                                         np.concatenate([bj, bi])])
        return self._edge_index

    def to_graph(self, max_degree: int = 6) -> "GraphData":
        """The molecule as a shared :class:`repro.graph.GraphData` view.

        Both bond directions become typed edges (``edge_type`` = bond
        order id) and ``node_features`` is attached as node feature
        ``"x"``.  Cached — :func:`repro.mol.gin.batch_molecules` builds
        its disjoint union from these views without re-featurizing.
        """
        cached = self._graphs.get(max_degree)
        if cached is None:
            _, _, orders = self.bond_arrays()
            edge_index = self.edge_index()
            cached = GraphData(
                num_nodes=self.num_atoms,
                src=edge_index[0],
                dst=edge_index[1],
                edge_type=np.concatenate([orders, orders]),
                node_feat={"x": self.node_features(max_degree)},
            )
            self._graphs[max_degree] = cached
        return cached
