"""Molecular graph representation.

A :class:`Molecule` is an undirected labelled graph of atoms and bonds —
the molecular-structure modality of the paper.  It supports conversion to
``networkx`` for analysis, hashed substructure fingerprints (an ECFP-like
scheme used by the Fig. 1 diamond experiment), and featurisation for the
GIN encoder in :mod:`repro.mol.gin`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

__all__ = ["Atom", "Bond", "Molecule", "ELEMENTS", "BOND_ORDERS"]

#: Elements the synthetic chemistry uses; index = feature id.
ELEMENTS: tuple[str, ...] = ("C", "N", "O", "S", "P", "F", "Cl", "Br")

#: Bond order codes: single, double, triple, aromatic.
BOND_ORDERS: tuple[str, ...] = ("single", "double", "triple", "aromatic")


@dataclass(frozen=True)
class Atom:
    """One atom: element symbol plus formal charge."""

    element: str
    charge: int = 0

    def __post_init__(self) -> None:
        if self.element not in ELEMENTS:
            raise ValueError(f"unknown element {self.element!r}")

    @property
    def element_id(self) -> int:
        return ELEMENTS.index(self.element)


@dataclass(frozen=True)
class Bond:
    """An undirected bond between atom indices ``i < j``."""

    i: int
    j: int
    order: str = "single"

    def __post_init__(self) -> None:
        if self.order not in BOND_ORDERS:
            raise ValueError(f"unknown bond order {self.order!r}")
        if self.i == self.j:
            raise ValueError("self-bonds are not allowed")

    @property
    def order_id(self) -> int:
        return BOND_ORDERS.index(self.order)

    def normalized(self) -> "Bond":
        """Return the bond with ``i < j``."""
        if self.i <= self.j:
            return self
        return Bond(self.j, self.i, self.order)


@dataclass
class Molecule:
    """An attributed molecular graph.

    Attributes
    ----------
    atoms:
        Atom list; index is the atom id.
    bonds:
        Undirected bonds between atom ids.
    scaffold:
        Name of the pharmacophore scaffold the molecule was grown from
        (generator metadata; ``""`` for unknown).
    """

    atoms: list[Atom]
    bonds: list[Bond]
    scaffold: str = ""
    _adjacency: dict[int, list[tuple[int, int]]] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        n = len(self.atoms)
        seen: set[tuple[int, int]] = set()
        normalized = []
        for bond in self.bonds:
            if bond.i >= n or bond.j >= n or bond.i < 0 or bond.j < 0:
                raise ValueError(f"bond {bond} references an atom out of range")
            bond = bond.normalized()
            key = (bond.i, bond.j)
            if key in seen:
                raise ValueError(f"duplicate bond between atoms {key}")
            seen.add(key)
            normalized.append(bond)
        self.bonds = normalized

    # ------------------------------------------------------------------
    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    @property
    def num_bonds(self) -> int:
        return len(self.bonds)

    def adjacency(self) -> dict[int, list[tuple[int, int]]]:
        """Atom id -> list of ``(neighbor_id, bond_order_id)``."""
        if self._adjacency is None:
            adj: dict[int, list[tuple[int, int]]] = {i: [] for i in range(self.num_atoms)}
            for bond in self.bonds:
                adj[bond.i].append((bond.j, bond.order_id))
                adj[bond.j].append((bond.i, bond.order_id))
            self._adjacency = adj
        return self._adjacency

    def degrees(self) -> np.ndarray:
        """Heavy-atom degree per atom."""
        deg = np.zeros(self.num_atoms, dtype=np.int64)
        for bond in self.bonds:
            deg[bond.i] += 1
            deg[bond.j] += 1
        return deg

    def element_counts(self) -> dict[str, int]:
        """Histogram of element symbols (a molecular formula, roughly)."""
        return dict(Counter(a.element for a in self.atoms))

    def to_networkx(self) -> nx.Graph:
        """Convert to an attributed ``networkx.Graph``."""
        g = nx.Graph()
        for idx, atom in enumerate(self.atoms):
            g.add_node(idx, element=atom.element, charge=atom.charge)
        for bond in self.bonds:
            g.add_edge(bond.i, bond.j, order=bond.order)
        return g

    def is_connected(self) -> bool:
        """Whether the molecular graph is a single connected component."""
        if self.num_atoms <= 1:
            return True
        return nx.is_connected(self.to_networkx())

    # ------------------------------------------------------------------
    # Fingerprints (ECFP-like hashed circular substructures)
    # ------------------------------------------------------------------
    def fingerprint(self, n_bits: int = 256, radius: int = 2) -> np.ndarray:
        """Hashed circular-substructure count fingerprint.

        Each atom starts from an (element, degree) label; ``radius``
        rounds of Weisfeiler-Lehman-style relabelling hash in sorted
        neighbour labels.  Every intermediate label increments a bucket
        of an ``n_bits``-wide count vector.  Same-scaffold molecules
        share many substructure labels and therefore similar
        fingerprints — the property the Fig. 1 experiment relies on.
        """
        import zlib

        def stable_hash(obj) -> int:
            # repr + crc32 is stable across processes, unlike hash().
            return zlib.crc32(repr(obj).encode())

        adj = self.adjacency()
        labels = [stable_hash((atom.element, len(adj[i])))
                  for i, atom in enumerate(self.atoms)]
        fp = np.zeros(n_bits)
        for label in labels:
            fp[label % n_bits] += 1.0
        for _ in range(radius):
            new_labels = []
            for i in range(self.num_atoms):
                neighbourhood = tuple(sorted((labels[j], order) for j, order in adj[i]))
                new_labels.append(stable_hash((labels[i], neighbourhood)))
            labels = new_labels
            for label in labels:
                fp[label % n_bits] += 1.0
        return fp

    # ------------------------------------------------------------------
    # GIN featurisation
    # ------------------------------------------------------------------
    def node_features(self, max_degree: int = 6) -> np.ndarray:
        """Per-atom feature matrix: one-hot element ++ one-hot clipped degree."""
        deg = np.minimum(self.degrees(), max_degree)
        feats = np.zeros((self.num_atoms, len(ELEMENTS) + max_degree + 1))
        for i, atom in enumerate(self.atoms):
            feats[i, atom.element_id] = 1.0
            feats[i, len(ELEMENTS) + deg[i]] = 1.0
        return feats

    def edge_index(self) -> np.ndarray:
        """Directed edge list ``(2, 2*num_bonds)`` (both directions)."""
        if not self.bonds:
            return np.zeros((2, 0), dtype=np.int64)
        src = [b.i for b in self.bonds] + [b.j for b in self.bonds]
        dst = [b.j for b in self.bonds] + [b.i for b in self.bonds]
        return np.asarray([src, dst], dtype=np.int64)
