"""``repro.mol`` — molecular-structure substrate.

Molecular graphs (:mod:`repro.mol.molecule`), the pharmacophore scaffold
library coupling structure to text and biology
(:mod:`repro.mol.scaffolds`), a synthetic molecule generator
(:mod:`repro.mol.generator`), a GIN encoder with masked-attribute
pre-training replacing the paper's pre-trained GNN features
(:mod:`repro.mol.gin`, :mod:`repro.mol.pretrain`), and the similarity
measures the Fig. 1 experiment uses (:mod:`repro.mol.similarity`).
"""

from .generator import MoleculeGenerator
from .gin import GINEncoder, GINLayer, batch_graph, batch_molecules
from .molecule import BOND_ORDERS, ELEMENTS, Atom, Bond, Molecule
from .pretrain import MaskedAttributePretrainer, PretrainResult
from .scaffolds import SCAFFOLDS, Scaffold, scaffold_by_name
from .similarity import cosine_similarity, inner_product_similarity, pairwise_cosine, tanimoto

__all__ = [
    "Atom",
    "Bond",
    "Molecule",
    "ELEMENTS",
    "BOND_ORDERS",
    "Scaffold",
    "SCAFFOLDS",
    "scaffold_by_name",
    "MoleculeGenerator",
    "GINEncoder",
    "GINLayer",
    "batch_molecules",
    "batch_graph",
    "MaskedAttributePretrainer",
    "PretrainResult",
    "tanimoto",
    "inner_product_similarity",
    "cosine_similarity",
    "pairwise_cosine",
]
