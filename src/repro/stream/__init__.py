"""``repro.stream`` — streaming KG updates + inductive unseen entities.

The streaming tier lets a deployed bundle grow without retraining:
unseen entities arrive with their modalities (text description,
optional molecular feature row) plus known triples, get embedded
inductively through the frozen encoders
(:class:`~repro.stream.InductiveEncoder`), and become first-class
citizens of every serving path — exact, cached, ANN, filtered.

Layering: this package sits on ``kg`` / ``datasets`` / ``text`` /
``obs`` and is imported *by* ``serve`` / ``pool`` / ``train`` — it
never imports the serving tier itself (the engine is duck-typed in
:func:`apply_append`).
"""

from .apply import (AppendPlan, apply_append, apply_append_to_model,
                    commit_append, default_encoder, grow_features,
                    plan_append)
from .delta import AppendDelta, EntitySpec, StreamError, parse_append_request
from .inductive import InductiveEncoder, InductiveRows
from .metrics import StreamMetrics

__all__ = [
    "AppendDelta",
    "AppendPlan",
    "EntitySpec",
    "InductiveEncoder",
    "InductiveRows",
    "StreamError",
    "StreamMetrics",
    "apply_append",
    "apply_append_to_model",
    "commit_append",
    "default_encoder",
    "grow_features",
    "parse_append_request",
    "plan_append",
]
