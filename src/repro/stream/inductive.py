"""Inductive entity rows: embed unseen entities from their modalities.

CamE's central property — entities are encoded from *fixed* per-entity
modality features through learned encoders — makes unseen entities
embeddable without retraining (the BioBLP recipe): re-derive the
deterministic feature pipeline for the new entity's text/molecule,
append the rows to the frozen model's tables, and every downstream
scoring path works unchanged.

Row derivations, all deterministic:

* **molecular** — the caller-provided feature row (the GIN readout
  space used at training time), or the zero row for entities without a
  molecule, matching :func:`repro.datasets.build_features`;
* **textual** — the same :class:`repro.text.NgramHashEncoder` hash +
  fixed Gaussian projection used at training time (fully re-derivable
  from its constructor arguments), column-standardised against a
  calibration corpus of existing entity texts so new rows land on the
  training feature scale;
* **structural** — the mean of the structural rows of the entity's
  existing neighbours in the appended triples (new entities have no
  pretrained CompGCN row), falling back to the table mean when the
  entity arrives with no known neighbours;
* **learned entity row** — for translational models (``ann_metric ==
  "l1"``) the TransE identity ``e_t - e_r`` / ``e_h + e_r`` averaged
  over the appended triples; otherwise the mean of the neighbour
  entities' learned rows.  Fallback: the table column mean;
* **entity bias** — zero, the bias initialisation.

Appending rows never perturbs existing predictions: every model scores
candidate columns independently (and batch-norm runs off frozen
running stats under ``inference_mode``), so old cells are bit-identical
before and after the append.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import trace
from ..text import NgramHashEncoder
from .delta import EntitySpec, StreamError

__all__ = ["InductiveEncoder", "InductiveRows"]


@dataclass
class InductiveRows:
    """Per-table new rows for one append batch (``n`` new entities)."""

    entity: np.ndarray                    # (n, entity_dim)
    bias: np.ndarray | None               # (n,) or None (model has no bias)
    molecular: np.ndarray | None          # (n, d_m) or None (no feature tables)
    textual: np.ndarray | None
    structural: np.ndarray | None
    has_molecule: np.ndarray | None       # (n,) bool


def _feature_dims(model, features) -> tuple[int, int, int] | None:
    if getattr(model, "h_m_table", None) is not None:
        return (model.h_m_table.shape[1], model.h_t_table.shape[1],
                model.h_s_table.shape[1])
    if features is not None:
        return tuple(features.dims)
    return None


class InductiveEncoder:
    """Derives new table rows for unseen entities through frozen encoders.

    Parameters
    ----------
    model:
        The loaded (frozen) model whose tables will be grown.
    features:
        The bundle's :class:`~repro.datasets.ModalityFeatures`, when the
        caller also wants feature rows for a model without its own
        tables (bundle re-export).  Optional.
    calibration_texts:
        Existing entity texts used to standardise the text encoder's
        output columns onto the training feature scale.  Typically the
        bundled vocabulary's names; encoded once and cached.
    """

    def __init__(self, model, *, features=None,
                 calibration_texts: list[str] | None = None) -> None:
        self.model = model
        self.features = features
        self.dims = _feature_dims(model, features)
        self._calibration_texts = calibration_texts
        self._text_encoder: NgramHashEncoder | None = None
        self._text_mu: np.ndarray | None = None
        self._text_sigma: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Modality rows
    # ------------------------------------------------------------------
    def _text_rows(self, specs: list[EntitySpec], d_t: int) -> np.ndarray:
        if self._text_encoder is None:
            self._text_encoder = NgramHashEncoder(dim=d_t)
            if self._calibration_texts:
                reference = self._text_encoder.encode(self._calibration_texts)
                self._text_mu = reference.mean(axis=0)
                sigma = reference.std(axis=0)
                sigma[sigma < 1e-8] = 1.0
                self._text_sigma = sigma
        raw = self._text_encoder.encode([s.text for s in specs])
        if self._text_mu is not None:
            raw = (raw - self._text_mu) / self._text_sigma
        return raw

    def _molecule_rows(self, specs: list[EntitySpec],
                       d_m: int) -> tuple[np.ndarray, np.ndarray]:
        rows = np.zeros((len(specs), d_m))
        present = np.zeros(len(specs), dtype=bool)
        for i, spec in enumerate(specs):
            if spec.molecule is None:
                continue
            if len(spec.molecule) != d_m:
                raise StreamError(
                    400, "bad_request",
                    f"entity {spec.name!r}: molecule feature row has "
                    f"{len(spec.molecule)} dims, model expects {d_m}")
            rows[i] = spec.molecule
            present[i] = True
        return rows, present

    # ------------------------------------------------------------------
    # Neighbour aggregation
    # ------------------------------------------------------------------
    @staticmethod
    def _incident(triples: np.ndarray, entity_id: int,
                  known_below: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(neighbour_ids, relation_ids, is_tail_side) for one new entity.

        Only neighbours that already have trained rows (``id <
        known_below``) contribute; a triple linking two brand-new
        entities gives neither a usable anchor.
        """
        if len(triples) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        h, r, t = triples[:, 0], triples[:, 1], triples[:, 2]
        as_head = (h == entity_id) & (t < known_below)
        as_tail = (t == entity_id) & (h < known_below)
        neighbours = np.concatenate([t[as_head], h[as_tail]])
        rels = np.concatenate([r[as_head], r[as_tail]])
        tail_side = np.concatenate([
            np.ones(int(as_head.sum()), dtype=np.int64),
            np.zeros(int(as_tail.sum()), dtype=np.int64)])
        return neighbours, rels, tail_side

    def _entity_rows(self, specs: list[EntitySpec], triples: np.ndarray,
                     old_num_entities: int) -> np.ndarray:
        table = np.asarray(self.model.entity_embedding.weight.data)
        translational = getattr(self.model, "ann_metric", None) == "l1"
        rel_table = None
        if translational:
            rel_table = np.asarray(self.model.relation_embedding.weight.data)
            if rel_table.shape[1] != table.shape[1]:
                translational = False  # factored relation layouts: fall back
        fallback = table.mean(axis=0)
        rows = np.empty((len(specs), table.shape[1]))
        for i in range(len(specs)):
            nid = old_num_entities + i
            neighbours, rels, tail_side = self._incident(
                triples, nid, old_num_entities)
            if len(neighbours) == 0:
                rows[i] = fallback
                continue
            anchors = table[neighbours]
            if translational:
                # (new, r, t) wants e_new ~ e_t - e_r; (h, r, new) wants
                # e_new ~ e_h + e_r — the TransE translation identity.
                signs = np.where(tail_side[:, None] == 1, -1.0, 1.0)
                anchors = anchors + signs * rel_table[rels]
            rows[i] = anchors.mean(axis=0)
        return rows

    def _structural_rows(self, specs: list[EntitySpec], triples: np.ndarray,
                         old_num_entities: int, d_s: int) -> np.ndarray:
        table = getattr(self.model, "h_s_table", None)
        if table is None and self.features is not None:
            table = self.features.structural
        if table is None or not len(table):
            return np.zeros((len(specs), d_s))
        table = np.asarray(table)
        fallback = table.mean(axis=0)
        rows = np.empty((len(specs), d_s))
        for i in range(len(specs)):
            nid = old_num_entities + i
            neighbours, _, _ = self._incident(triples, nid, old_num_entities)
            rows[i] = table[neighbours].mean(axis=0) if len(neighbours) \
                else fallback
        return rows

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def encode_entities(self, specs: list[EntitySpec], triples: np.ndarray,
                        old_num_entities: int) -> InductiveRows:
        """All new table rows for one append batch (deterministic)."""
        triples = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        with trace("stream.inductive_embed", entities=len(specs)):
            entity = self._entity_rows(specs, triples, old_num_entities)
            bias = None
            if getattr(self.model, "entity_bias", None) is not None:
                bias = np.zeros(len(specs))
            molecular = textual = structural = has_molecule = None
            if self.dims is not None:
                d_m, d_t, d_s = self.dims
                molecular, has_molecule = self._molecule_rows(specs, d_m)
                textual = self._text_rows(specs, d_t)
                structural = self._structural_rows(
                    specs, triples, old_num_entities, d_s)
            return InductiveRows(entity=entity, bias=bias,
                                 molecular=molecular, textual=textual,
                                 structural=structural,
                                 has_molecule=has_molecule)
