"""Applying appends: plan (validate, no mutation) then commit (grow).

The two-phase split is the crash-safety story: :func:`plan_append`
resolves every reference and derives every new table row *without
touching* the model or vocabulary, so a request that fails validation
leaves the serving state untouched.  :func:`commit_append` then grows
the tables in a safe order — **model first, vocabulary second** — so a
concurrent reader can never resolve a new name to an id beyond the
embedding-table rows.

Three entry points share the phases:

* :func:`apply_append` — the live-engine path.  The commit runs inside
  :meth:`PredictionEngine.adopt_append`, which holds the engine lock
  while it grows the model, bumps the entity count, drops stale cached
  score rows, and folds the appended triples into the known-triple
  filter;
* :func:`apply_append_to_model` — the offline path (CLI re-export, pool
  parent), mutating a bare model + split and optionally growing the
  bundle's feature matrices;
* :func:`plan_append` / :func:`commit_append` — the phases themselves,
  for callers that need to interleave (the pool commits on the parent
  model, then republishes replicas from it).

Appends are serialised per process by a module lock: generation numbers
are assigned at commit time and must be monotonic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..datasets.features import ModalityFeatures
from ..kg import KGSplit
from ..obs import trace
from .delta import AppendDelta, EntitySpec, StreamError, parse_append_request
from .inductive import InductiveEncoder, InductiveRows
from .metrics import StreamMetrics

__all__ = ["AppendPlan", "apply_append", "apply_append_to_model",
           "commit_append", "default_encoder", "grow_features", "plan_append"]

#: One append at a time per process: generations are assigned at commit
#: and the vocabulary/model growth must observe them in order.
_APPLY_LOCK = threading.RLock()


@dataclass
class AppendPlan:
    """A validated, fully-resolved append — nothing mutated yet."""

    split: KGSplit
    specs: list[EntitySpec]
    new_ids: list[int]
    old_num_entities: int
    triples: np.ndarray                # (n, 3) int64, resolved
    rows: InductiveRows | None         # None for triple-only appends

    @property
    def num_new_entities(self) -> int:
        return len(self.specs)

    def touched_keys(self) -> list[tuple[int, int]]:
        """``(h, r)`` score-row keys whose filter set this append changes."""
        num_relations = self.split.num_relations
        keys: dict[tuple[int, int], None] = {}
        for h, r, t in self.triples.tolist():
            keys[(int(h), int(r))] = None
            keys[(int(t), int(r) + num_relations)] = None
        return list(keys)


def _resolve_entity(token, vocab, pending: dict[str, int], total: int) -> int:
    if isinstance(token, (int, np.integer)) or (
            isinstance(token, str) and token.isdigit()):
        idx = int(token)
        if not 0 <= idx < total:
            raise StreamError(
                400, "unknown_entity",
                f"entity id {idx} out of range ({total} entities after "
                "this append)")
        return idx
    if not isinstance(token, str):
        raise StreamError(400, "bad_request",
                          f"entity reference must be a name or id, "
                          f"got {type(token).__name__}")
    got = vocab.get(token)
    if got is None:
        got = pending.get(token)
    if got is None:
        try:
            vocab.resolve(token)      # unreachable success; raises with hints
        except KeyError as exc:
            raise StreamError(400, "unknown_entity", exc.args[0]) from None
    return got


def _resolve_relation(token, relations) -> int:
    try:
        return relations.resolve(token)
    except KeyError as exc:
        raise StreamError(400, "unknown_relation", exc.args[0]) from None
    except IndexError as exc:
        raise StreamError(400, "unknown_relation", exc.args[0]) from None


def default_encoder(model, split: KGSplit, *,
                    features: ModalityFeatures | None = None) -> InductiveEncoder:
    """Inductive encoder calibrated on the bundle's own entity names."""
    return InductiveEncoder(model, features=features,
                            calibration_texts=split.graph.entities.names())


def plan_append(model, split: KGSplit, specs: list[EntitySpec], raw_triples,
                *, encoder: InductiveEncoder) -> AppendPlan:
    """Resolve and validate one append batch.  Mutates nothing.

    New entity names must be genuinely unseen (409 otherwise); triples
    may reference existing entities/relations by name or id and the new
    entities by name (their ids are assigned here, contiguously after
    the current table).  Relations are fixed at training time, so only
    existing relations resolve.
    """
    vocab = split.graph.entities
    conflicts = sorted({s.name for s in specs if s.name in vocab})
    if conflicts:
        raise StreamError(409, "conflict",
                          f"entities already registered: {conflicts}")
    old = len(vocab)
    total = old + len(specs)
    pending = {s.name: old + i for i, s in enumerate(specs)}
    resolved = np.empty((len(raw_triples), 3), dtype=np.int64)
    for i, (h, r, t) in enumerate(raw_triples):
        resolved[i, 0] = _resolve_entity(h, vocab, pending, total)
        resolved[i, 1] = _resolve_relation(r, split.graph.relations)
        resolved[i, 2] = _resolve_entity(t, vocab, pending, total)
    rows = encoder.encode_entities(specs, resolved, old) if specs else None
    return AppendPlan(split=split, specs=specs,
                      new_ids=[old + i for i in range(len(specs))],
                      old_num_entities=old, triples=resolved, rows=rows)


def commit_append(model, plan: AppendPlan, *, generation: int,
                  source: str = "api") -> AppendDelta:
    """Grow the model tables and the vocabulary.  Model grows FIRST.

    The ordering invariant: a reader that resolves a name through the
    vocabulary must find the corresponding embedding row already in
    place, so table growth precedes :meth:`Vocabulary.extend`.  Callers
    on a live engine must hold the engine lock (``adopt_append`` does).
    """
    n = plan.num_new_entities
    if n:
        rows = plan.rows
        emb = model.entity_embedding
        table = np.asarray(emb.weight.data)
        emb.weight.data = np.concatenate(
            [table, rows.entity.astype(table.dtype, copy=False)])
        emb.num_embeddings = emb.weight.data.shape[0]
        bias = getattr(model, "entity_bias", None)
        if bias is not None and rows.bias is not None:
            bias.data = np.concatenate(
                [np.asarray(bias.data), rows.bias.astype(bias.data.dtype)])
        for attr, new_rows in (("h_m_table", rows.molecular),
                               ("h_t_table", rows.textual),
                               ("h_s_table", rows.structural)):
            existing = getattr(model, attr, None)
            if existing is not None and new_rows is not None:
                existing = np.asarray(existing)
                setattr(model, attr, np.concatenate(
                    [existing, new_rows.astype(existing.dtype, copy=False)]))
        model.num_entities = int(model.num_entities) + n
    try:
        plan.split.graph.entities.extend([s.name for s in plan.specs])
    except ValueError as exc:
        raise StreamError(409, "conflict", str(exc)) from None
    if plan.split.graph.entity_types and n:
        plan.split.graph.entity_types.extend(
            s.entity_type for s in plan.specs)
    return AppendDelta(
        generation=int(generation),
        entity_names=[s.name for s in plan.specs],
        entity_ids=list(plan.new_ids),
        triples=plan.triples,
        old_num_entities=plan.old_num_entities,
        num_entities=plan.old_num_entities + n,
        source=source,
        entity_types=[s.entity_type for s in plan.specs])


def grow_features(features: ModalityFeatures | None,
                  plan: AppendPlan) -> ModalityFeatures | None:
    """Extended feature matrices for bundle re-export (a new object)."""
    if features is None or plan.rows is None:
        return features
    rows = plan.rows
    return ModalityFeatures(
        molecular=np.concatenate([features.molecular, rows.molecular]),
        textual=np.concatenate([features.textual, rows.textual]),
        structural=np.concatenate([features.structural, rows.structural]),
        has_molecule=np.concatenate([features.has_molecule,
                                     rows.has_molecule]))


def apply_append_to_model(model, split: KGSplit, body, *,
                          encoder: InductiveEncoder | None = None,
                          features: ModalityFeatures | None = None,
                          generation: int = 1, source: str = "cli",
                          ) -> tuple[AppendDelta, ModalityFeatures | None]:
    """Offline append: parse → plan → commit against a bare model/split.

    Returns the delta plus grown feature matrices (``None`` when the
    caller passed none).  Used by the CLI re-export path and by the pool
    parent before it republishes replicas.
    """
    specs, raw_triples = parse_append_request(body)
    with _APPLY_LOCK:
        if encoder is None:
            encoder = default_encoder(model, split, features=features)
        plan = plan_append(model, split, specs, raw_triples, encoder=encoder)
        delta = commit_append(model, plan, generation=generation,
                              source=source)
        return delta, grow_features(features, plan)


def apply_append(engine, body, *, source: str = "api") -> AppendDelta:
    """Live append against a :class:`~repro.serve.PredictionEngine`.

    The commit runs as the ``grow`` thunk of
    :meth:`PredictionEngine.adopt_append`, so model growth, the entity
    count bump, score-cache invalidation, and the filter fold are all
    atomic under the engine lock; concurrent queries see either the old
    world or the new one, never a torn mix.  Also refreshes the ANN
    staleness gauge and triggers the rebuild-threshold policy.
    """
    specs, raw_triples = parse_append_request(body)
    with _APPLY_LOCK, trace("stream.append", entities=len(specs),
                            triples=len(raw_triples)):
        encoder = getattr(engine, "_stream_encoder", None)
        if encoder is None:
            encoder = default_encoder(engine.model, engine.split)
            engine._stream_encoder = encoder
        plan = plan_append(engine.model, engine.split, specs, raw_triples,
                           encoder=encoder)
        generation = int(engine.stream_generation) + 1
        committed: dict[str, AppendDelta] = {}

        def grow() -> None:
            committed["delta"] = commit_append(
                engine.model, plan, generation=generation, source=source)

        engine.adopt_append(grow, plan.num_new_entities, plan.triples,
                            touched_keys=plan.touched_keys())
        delta = committed["delta"]
        engine.stream_generation = delta.generation
        StreamMetrics(engine.metrics).record(delta)
        return delta
