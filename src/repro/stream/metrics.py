"""Stream-tier observability: append counters + generation gauge.

Registered against the host tier's :class:`~repro.obs.MetricsRegistry`
(the engine's, or the pool frontend's), so stream activity shows up in
the same ``/metrics`` exposition as serving traffic.  Registration is
idempotent per registry, making it safe to construct one of these per
append.
"""

from __future__ import annotations

from ..obs import MetricsRegistry
from .delta import AppendDelta

__all__ = ["StreamMetrics"]


class StreamMetrics:
    """Counters/gauges for the streaming append path."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.appends = registry.counter(
            "stream_appends_total", "Append batches applied")
        self.entities = registry.counter(
            "stream_appended_entities_total",
            "Unseen entities added via streaming appends")
        self.triples = registry.counter(
            "stream_appended_triples_total",
            "Known triples added via streaming appends")
        self.inductive_embeds = registry.counter(
            "stream_inductive_embeds_total",
            "Entity rows derived by the inductive encoder")
        self.generation = registry.gauge(
            "stream_generation", "Monotonic append generation (0 = pristine)")

    def record(self, delta: AppendDelta) -> None:
        self.appends.inc()
        self.entities.inc(delta.num_new_entities)
        self.triples.inc(delta.num_new_triples)
        self.inductive_embeds.inc(delta.num_new_entities)
        self.generation.set(delta.generation)
