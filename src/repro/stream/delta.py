"""Streaming append requests and the bundle delta log.

An *append* is the unit of streaming mutation: a batch of brand-new
entities (each described by its modalities — a text description and an
optional molecular feature row) plus known triples connecting them to
the graph.  Appends are validated and resolved here into an
:class:`AppendDelta`, the record every layer shares:

* the serving tier applies it to the live model/filter/cache
  (:mod:`repro.stream.apply`);
* the bundle writer journals ``delta.log_entry()`` into the manifest's
  monotonically versioned ``stream`` section (bundle v3,
  :mod:`repro.serve.bundle`);
* the warm-start trainer fine-tunes exactly the rows it names
  (:mod:`repro.train.warmstart`).

Relations are fixed at training time (the relation table and every
inverse-relation convention depend on their count), so an append may
reference existing relations only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AppendDelta", "EntitySpec", "StreamError",
           "parse_append_request"]


class StreamError(ValueError):
    """An invalid append request; carries an HTTP-style status + code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


@dataclass
class EntitySpec:
    """One unseen entity described by its modalities.

    ``molecule`` is a precomputed molecular feature row in the model's
    ``d_m`` feature space (e.g. the GIN readout used at training time);
    ``None`` means no molecule, matching the zero-row convention of
    :func:`repro.datasets.build_features` for non-compound entities.
    """

    name: str
    entity_type: str = "Unknown"
    description: str = ""
    molecule: np.ndarray | None = None

    @property
    def text(self) -> str:
        """The entity text the inductive encoder embeds (name + desc)."""
        return f"{self.name}. {self.description}" if self.description else self.name


@dataclass
class AppendDelta:
    """One applied append: id assignments, resolved triples, provenance."""

    generation: int
    entity_names: list[str]
    entity_ids: list[int]
    triples: np.ndarray                 # (n, 3) int64, resolved ids
    old_num_entities: int
    num_entities: int
    source: str = "api"
    entity_types: list[str] = field(default_factory=list)

    @property
    def num_new_entities(self) -> int:
        return len(self.entity_ids)

    @property
    def num_new_triples(self) -> int:
        return int(len(self.triples))

    def touched_keys(self, num_relations: int) -> list[tuple[int, int]]:
        """Every ``(h, r)`` score-row key whose filter set changed.

        Both query directions: ``(h, r)`` and ``(t, r + R)`` per triple,
        mirroring the CSR filter's coverage, de-duplicated in first-seen
        order.
        """
        keys: dict[tuple[int, int], None] = {}
        for h, r, t in np.asarray(self.triples).reshape(-1, 3).tolist():
            keys[(int(h), int(r))] = None
            keys[(int(t), int(r) + num_relations)] = None
        return list(keys)

    def log_entry(self) -> dict:
        """JSON-safe record for the bundle manifest's delta log."""
        return {
            "generation": int(self.generation),
            "source": self.source,
            "entities": list(self.entity_names),
            "entity_ids": [int(i) for i in self.entity_ids],
            "entity_types": list(self.entity_types),
            "num_triples": self.num_new_triples,
            "old_num_entities": int(self.old_num_entities),
            "num_entities": int(self.num_entities),
        }


def _parse_entity(index: int, raw) -> EntitySpec:
    if not isinstance(raw, dict):
        raise StreamError(400, "bad_request",
                          f"entity #{index} must be a JSON object")
    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise StreamError(400, "bad_request",
                          f"entity #{index} needs a non-empty string 'name'")
    entity_type = raw.get("type", "Unknown")
    if not isinstance(entity_type, str):
        raise StreamError(400, "bad_request",
                          f"entity #{index} ('{name}'): 'type' must be a string")
    description = raw.get("description", "")
    if not isinstance(description, str):
        raise StreamError(400, "bad_request",
                          f"entity #{index} ('{name}'): 'description' must be "
                          "a string")
    molecule = raw.get("molecule")
    if molecule is not None:
        try:
            molecule = np.asarray(molecule, dtype=np.float64).reshape(-1)
        except (TypeError, ValueError):
            raise StreamError(
                400, "bad_request",
                f"entity #{index} ('{name}'): 'molecule' must be a flat "
                "list of numbers (a molecular feature row)") from None
    return EntitySpec(name=name, entity_type=entity_type,
                      description=description, molecule=molecule)


def parse_append_request(body) -> tuple[list[EntitySpec], list]:
    """Validate an append request body into specs + raw triple rows.

    The body is ``{"entities": [{"name", "type"?, "description"?,
    "molecule"?}, ...], "triples": [[h, r, t], ...]}``; triples may
    reference entities by name (including the new ones) or by id, and
    relations by name or id.  Resolution against the live vocabularies
    happens later in :func:`repro.stream.apply.plan_append` — this
    function only enforces shape, so both HTTP tiers and the CLI reject
    malformed requests identically.
    """
    if not isinstance(body, dict):
        raise StreamError(400, "bad_request", "JSON object body required")
    raw_entities = body.get("entities", [])
    raw_triples = body.get("triples", [])
    if not isinstance(raw_entities, list) or not isinstance(raw_triples, list):
        raise StreamError(400, "bad_request",
                          "'entities' and 'triples' must be lists")
    if not raw_entities and not raw_triples:
        raise StreamError(400, "bad_request",
                          "append needs at least one entity or triple")
    specs = [_parse_entity(i, raw) for i, raw in enumerate(raw_entities)]
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        seen: set[str] = set()
        repeated = sorted({n for n in names if n in seen or seen.add(n)})
        raise StreamError(409, "conflict",
                          f"duplicate entity names within request: {repeated}")
    for i, row in enumerate(raw_triples):
        if not isinstance(row, (list, tuple)) or len(row) != 3:
            raise StreamError(400, "bad_request",
                              f"triple #{i} must be [head, relation, tail]")
    return specs, list(raw_triples)
