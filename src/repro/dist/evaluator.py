"""Sharded filtered-ranking evaluation across worker processes.

Filtered ranking is embarrassingly parallel over queries:
:class:`ShardedEvaluator` partitions each query set into contiguous
chunks, forks one worker per chunk, and concatenates the returned rank
vectors in chunk order — so the merged rank histogram, and therefore
MR / MRR / Hits@k, is *exactly* what the single-process
:class:`~repro.eval.RankingEvaluator` produces (the parity test in
``tests/dist`` asserts equality, not closeness).

The workers inherit the parent's model replica and the read-only CSR
filter through fork copy-on-write — the filter is built once in the
parent and never copied or rebuilt.  A worker that dies or hangs simply
forfeits its chunk: the parent recomputes it in-process, so evaluation
degrades to slower-but-correct instead of deadlocking.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import time

import numpy as np

from ..eval import RankingEvaluator
from ..kg import KGSplit
from ..obs import disable_tracing

__all__ = ["ShardedEvaluator"]

logger = logging.getLogger("repro.dist")


def fork_available() -> bool:
    """Whether the platform supports the fork start method we rely on."""
    return "fork" in mp.get_all_start_methods()


def _eval_worker(evaluator: "ShardedEvaluator", model, queries: np.ndarray,
                 targets: np.ndarray, batch_size: int, index: int,
                 results: mp.Queue) -> None:
    # Runs in a forked child: tracing would interleave writes on the
    # parent's JSONL handle, so turn it off for this process only.
    disable_tracing()
    try:
        ranks = RankingEvaluator._ranks_for_queries(
            evaluator, model, queries, targets, batch_size)
        results.put((index, ranks))
    except Exception as exc:  # pragma: no cover - worker-side failure path
        results.put((index, f"{type(exc).__name__}: {exc}"))


class ShardedEvaluator(RankingEvaluator):
    """Drop-in :class:`RankingEvaluator` that fans ranking out to processes.

    Parameters beyond the base class:

    num_workers:
        Worker processes per ranking pass.  ``1`` (or a platform without
        ``fork``) runs everything in-process — the engine's
        ``world_size=1`` fast path.
    min_queries_per_worker:
        Below this per-worker share the fork overhead outweighs the
        parallelism and the pass stays in-process.
    timeout:
        Seconds to wait for worker chunks before recomputing the missing
        ones in the parent.
    """

    def __init__(self, split: KGSplit,
                 parts: tuple[str, ...] = ("train", "valid", "test"),
                 batch_size: int = 128,
                 score_dtype: np.dtype | type = np.float64,
                 num_workers: int = 2,
                 min_queries_per_worker: int = 32,
                 timeout: float = 120.0) -> None:
        super().__init__(split, parts=parts, batch_size=batch_size,
                         score_dtype=score_dtype)
        self.num_workers = max(1, int(num_workers))
        self.min_queries_per_worker = min_queries_per_worker
        self.timeout = timeout
        #: Chunks the parent had to recompute across all passes (fault
        #: fallbacks); exposed for tests and ops visibility.
        self.recomputed_chunks = 0

    def _ranks_for_queries(self, model, queries: np.ndarray,
                           targets: np.ndarray, batch_size: int) -> np.ndarray:
        workers = min(self.num_workers,
                      max(1, len(queries) // max(1, self.min_queries_per_worker)))
        if workers <= 1 or not fork_available():
            return super()._ranks_for_queries(model, queries, targets, batch_size)

        bounds = np.linspace(0, len(queries), workers + 1).astype(int)
        chunks = [(int(lo), int(hi)) for lo, hi in zip(bounds, bounds[1:])
                  if hi > lo]
        ctx = mp.get_context("fork")
        results: mp.Queue = ctx.Queue()
        procs = []
        for index, (lo, hi) in enumerate(chunks):
            proc = ctx.Process(
                target=_eval_worker,
                args=(self, model, queries[lo:hi], targets[lo:hi],
                      batch_size, index, results),
                daemon=True)
            proc.start()
            procs.append(proc)

        collected: dict[int, np.ndarray] = {}
        deadline = time.monotonic() + self.timeout
        while len(collected) < len(chunks) and time.monotonic() < deadline:
            try:
                index, payload = results.get(timeout=0.05)
            except Exception:
                # Nothing queued: if every straggler is dead, drain once
                # more then stop waiting for chunks that can never come.
                if all(not p.is_alive() for i, p in enumerate(procs)
                       if i not in collected):
                    try:
                        while True:
                            index, payload = results.get(timeout=0.2)
                            if isinstance(payload, np.ndarray):
                                collected[index] = payload
                    except Exception:
                        pass
                    break
                continue
            if isinstance(payload, np.ndarray):
                collected[index] = payload
            else:
                logger.warning("eval worker %d failed: %s", index, payload)
        for proc in procs:
            proc.join(timeout=0.5)
            if proc.is_alive():  # pragma: no cover - hung-worker cleanup
                proc.terminate()
                proc.join(timeout=1.0)
        results.close()

        ranks = np.zeros(len(queries))
        for index, (lo, hi) in enumerate(chunks):
            chunk = collected.get(index)
            if chunk is None:
                # Fault fallback: exactness is preserved because the
                # parent reruns the identical chunk single-process.
                self.recomputed_chunks += 1
                logger.warning("recomputing eval chunk %d/%d in parent",
                               index + 1, len(chunks))
                chunk = super()._ranks_for_queries(
                    model, queries[lo:hi], targets[lo:hi], batch_size)
            ranks[lo:hi] = chunk
        return ranks
