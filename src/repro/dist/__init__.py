"""``repro.dist`` — multiprocess data-parallel training and sharded eval.

A dependency-free (stdlib ``multiprocessing`` + numpy shared memory)
subsystem that spreads the two hot loops of the repo across worker
processes:

* :class:`DistributedEngine` (:mod:`repro.dist.engine`) — a
  :class:`~repro.train.TrainingEngine` subclass whose workers hold
  bit-identical model replicas mirrored through
  ``multiprocessing.shared_memory`` flat parameter buffers
  (:mod:`repro.dist.shm`), compute forward/backward on disjoint
  minibatch shards, and whose parent averages gradients before one
  synchronized optimizer step.  ``world_size=1`` is bit-for-bit the
  seed engine; dead/hung workers are retried then dropped, never
  deadlocked on;
* :class:`ShardedEvaluator` (:mod:`repro.dist.evaluator`) — partitions
  filtered-ranking query batches across forked workers sharing the
  read-only CSR filter, with exact rank-histogram merging.

Quickstart (see also the README "multi-core training" section)::

    from repro.dist import DistributedEngine
    from repro.train import OneToNObjective

    engine = DistributedEngine(model, split, rng,
                               OneToNObjective(batch_size=64),
                               world_size=4)
    report = engine.fit(epochs=60, eval_every=10)

or, from the shell, ``python -m repro.experiments table3 --workers 4``.
"""

from .engine import DistributedEngine, WorkerFailure
from .evaluator import ShardedEvaluator, fork_available
from .shm import GradientAverager, SharedFlatBuffer

__all__ = [
    "DistributedEngine",
    "GradientAverager",
    "ShardedEvaluator",
    "SharedFlatBuffer",
    "WorkerFailure",
    "fork_available",
]
