"""Multiprocess data-parallel training on top of the unified engine.

:class:`DistributedEngine` subclasses
:class:`~repro.train.engine.TrainingEngine`, so the epoch loop,
callbacks, report and ``fit`` surface are untouched and both
:class:`~repro.train.OneToNObjective` and
:class:`~repro.train.NegativeSamplingObjective` run unchanged.  Only
``train_epoch`` and the evaluator differ:

* ``world_size == 1`` takes the in-process fast path (plain
  ``TrainingEngine.train_epoch`` / ``RankingEvaluator``), which makes it
  *bit-for-bit identical* to the seed engine — the determinism contract
  tests pin down;
* ``world_size > 1`` forks a persistent pool of worker processes.  Each
  worker holds a replica of the model (fork copy-on-write), refreshed
  every step from a shared-memory flat parameter buffer, computes
  forward/backward on a disjoint strided shard of every minibatch, and
  writes its flat gradient into its slot of a shared gradient slab.
  The parent forms the shard-size-weighted gradient average — equal to
  the full-batch gradient, since every objective loss is a per-row mean
  — clips it, takes the single synchronized optimizer step, and
  publishes the new parameters.

**Determinism.** Worker batch *order* comes from each replica's
identical fork-inherited RNG copy (all workers draw the same
permutations in lockstep); per-shard *negative corruption* comes from
``NegativeSampler.spawn(rank)`` seed-sequence streams, so a run is a
pure function of the seed and the world size.

**Fault handling.** The parent never blocks on a bare ``join``: every
wait is a polling loop with a deadline that also checks worker liveness.
A dead or hung worker fails the in-flight epoch; the parent terminates
it, dispatches ``on_worker_error`` to the active callbacks (errors
swallowed, like ``on_fit_error``), tells survivors to abandon the epoch,
and retries it on the surviving world — up to ``max_epoch_retries``
times, after which the failure propagates through the normal
``on_fit_error`` path.

**Tracing.** When the parent's global tracer is enabled, each epoch
command carries the ``dist.epoch`` span's ``traceparent``.  Workers
record their ``dist.worker.epoch`` / ``dist.worker.batch`` spans into a
local in-memory ring (no file I/O in the hot loop) and ship the ring
home on the ``epoch_done`` message, where the parent feeds it into its
own tracer — so one epoch is a single stitched trace across all worker
processes, exactly like pool requests.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import time
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass, field
from queue import Empty

import numpy as np

from .. import nn
from ..kg import KGSplit
from ..obs import (
    MetricsRegistry,
    Tracer,
    activate,
    current_traceparent,
    get_tracer,
    parse_traceparent,
    trace,
)
from ..train import NegativeSamplingObjective, OneToNObjective
from ..train.callbacks import Callback
from ..train.engine import TrainingEngine
from ..train.objectives import Objective
from .evaluator import ShardedEvaluator, fork_available
from .shm import GradientAverager

__all__ = ["DistributedEngine", "WorkerFailure"]

logger = logging.getLogger("repro.dist")


class WorkerFailure(RuntimeError):
    """One or more worker processes died or hung during an epoch.

    ``needs_abort`` records whether the surviving workers are still
    inside the epoch's step loop (and therefore must be sent an abort
    ack) or had already finished when the failure surfaced.
    """

    def __init__(self, ranks: list[int], reason: str,
                 needs_abort: bool = True) -> None:
        super().__init__(f"worker(s) {ranks} {reason}")
        self.ranks = ranks
        self.reason = reason
        self.needs_abort = needs_abort


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass
class _WorkerContext:
    """Everything a forked worker needs (inherited, never pickled)."""

    rank: int
    model: object
    objective: Objective
    averager: GradientAverager
    cmd: object        # mp.Queue: parent -> worker commands
    ack: object        # mp.Queue: parent -> worker step/abort acks
    results: object    # mp.Queue: worker -> parent, shared
    fault: tuple[int, int] | None = None  # (epoch, batch) to die at (tests)


def _num_batches(objective: Objective) -> int:
    """Batches per epoch, computed without consuming any RNG."""
    if isinstance(objective, OneToNObjective):
        return len(objective.batcher)
    if isinstance(objective, NegativeSamplingObjective):
        n = len(objective.train_triples)
        return (n + objective.batch_size - 1) // objective.batch_size
    raise TypeError(
        f"cannot shard objective {type(objective).__name__}; repro.dist "
        "supports OneToNObjective and NegativeSamplingObjective")


def _shard_batches(objective: Objective, shard_index: int, shard_count: int,
                   shard_sampler):
    """Yield this worker's strided shard of one epoch of batches.

    Batch *order* consumes only the objective's own RNG — identically in
    every worker, because all replicas hold fork-copies of the same
    generator state and draw in lockstep.  Shard-local randomness
    (negative corruption) comes from ``shard_sampler``, a
    ``NegativeSampler.spawn``-derived stream that no other worker
    observes.
    """
    if isinstance(objective, NegativeSamplingObjective):
        order = objective.rng.permutation(len(objective.train_triples))
        for start in range(0, len(order), objective.batch_size):
            positives = objective.train_triples[
                order[start:start + objective.batch_size]]
            shard = positives[shard_index::shard_count]
            if len(shard):
                negatives = shard_sampler.corrupt(shard, objective.num_negatives)
            else:
                negatives = shard
            yield (shard, negatives), len(shard)
        return
    # 1-to-N: every worker forms the same batches (same RNG copies) and
    # slices its rows; labels/candidates shard along axis 0 with them.
    for heads, rels, labels, candidates in objective.batches():
        sl = slice(shard_index, None, shard_count)
        cand = candidates[sl] if candidates is not None else None
        yield (heads[sl], rels[sl], labels[sl], cand), len(heads[sl])


def _train_worker(ctx: _WorkerContext) -> None:
    """Forked worker main loop: epochs of (read params, backward, submit).

    The tracer's at-fork hook already reset the inherited global tracer
    (disabled, parent's file handle dropped).  When an epoch command
    carries a ``traceparent``, worker spans go into a *local* ring
    tracer and ride back to the parent on ``epoch_done``.
    """
    model, objective, averager = ctx.model, ctx.objective, ctx.averager
    shard_sampler = None
    if isinstance(objective, NegativeSamplingObjective):
        shard_sampler = objective.sampler.spawn(ctx.rank)
    while True:
        cmd = ctx.cmd.get()
        if cmd[0] == "stop":
            return
        _, epoch, attempt, ranks_now, traceparent = cmd
        rctx = parse_traceparent(traceparent) if traceparent else None
        ring = Tracer(keep=1024) if rctx is not None else None
        shard_index = ranks_now.index(ctx.rank)
        registry = MetricsRegistry()
        batches = registry.counter(
            "dist_worker_batches_total", "minibatch shards processed",
            labels=("rank",)).labels(rank=ctx.rank)
        seconds = registry.histogram(
            "dist_worker_batch_seconds", "per-shard forward+backward time",
            labels=("rank",)).labels(rank=ctx.rank)
        ctx.results.put(("meta", ctx.rank, epoch, attempt,
                         _num_batches(objective)))
        aborted = False
        stream = _shard_batches(objective, shard_index, len(ranks_now),
                                shard_sampler)
        with ExitStack() as stack:
            if ring is not None:
                # Adopt the parent's dist.epoch span so every ring record
                # shares its trace_id; the epoch span must close before
                # epoch_done ships the ring, hence the ExitStack scope.
                stack.enter_context(activate(rctx))
                stack.enter_context(ring.span(
                    "dist.worker.epoch", rank=ctx.rank, epoch=epoch,
                    attempt=attempt))
            for b, (batch, shard_size) in enumerate(stream):
                if ctx.fault is not None and ctx.fault == (epoch, b):
                    os._exit(3)  # simulate a SIGKILL'd worker (tests)
                tick = time.perf_counter()
                batch_span = (ring.span("dist.worker.batch", batch=b)
                              if ring is not None else nullcontext())
                with batch_span:
                    averager.read_params_into(model)
                    if shard_size:
                        model.zero_grad()
                        loss = objective.loss(model, batch)
                        loss.backward()
                        loss_value = float(loss.data)
                    else:  # more workers than rows in this batch
                        loss_value = 0.0
                    averager.write_gradients(model, ctx.rank, shard_size)
                seconds.observe(time.perf_counter() - tick)
                batches.inc()
                ctx.results.put(("grad", ctx.rank, epoch, attempt, b,
                                 loss_value, shard_size))
                if ctx.ack.get()[0] == "abort":
                    aborted = True
                    break
        if not aborted:
            ctx.results.put(("epoch_done", ctx.rank, epoch, attempt,
                             registry.snapshot(),
                             list(ring.spans) if ring is not None else []))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class _Pool:
    """Parent-side handle on the forked worker world."""

    averager: GradientAverager
    procs: dict[int, object]            # rank -> Process (alive world)
    cmd: dict[int, object]              # rank -> command queue
    ack: dict[int, object]              # rank -> ack queue
    results: object                     # shared results queue
    failed: list[int] = field(default_factory=list)
    # In-order messages of the current (epoch, attempt) that arrived
    # while the parent was collecting a different kind — e.g. a fast
    # worker's first gradient landing during meta collection.
    stash: list[tuple] = field(default_factory=list)


class DistributedEngine(TrainingEngine):
    """Data-parallel :class:`TrainingEngine` over forked worker processes.

    Parameters beyond the base engine:

    world_size:
        Worker processes.  ``1`` (or any platform without the ``fork``
        start method) trains in-process, bit-identically to
        :class:`TrainingEngine`.
    step_timeout:
        Seconds the parent waits for all shard gradients of one batch
        before declaring the stragglers hung.
    max_epoch_retries:
        Times a failed epoch is retried on the surviving world before
        the failure propagates (through ``on_fit_error``, as usual).
    registry:
        Parent :class:`~repro.obs.MetricsRegistry`; per-worker epoch
        snapshots are merged into it and parent-side counters
        (``dist_worker_failures_total``, ``dist_epoch_retries_total``,
        ``dist_step_seconds``) live here.
    """

    def __init__(self, model, split: KGSplit, rng: np.random.Generator,
                 objective: Objective, *, world_size: int = 1,
                 lr: float = 1e-3, grad_clip: float = 5.0,
                 optimizer: nn.Optimizer | None = None,
                 callbacks: tuple[Callback, ...] | list[Callback] = (),
                 step_timeout: float = 60.0, max_epoch_retries: int = 2,
                 registry: MetricsRegistry | None = None,
                 _fault_injection: dict[int, tuple[int, int]] | None = None
                 ) -> None:
        super().__init__(model, split, rng, objective, lr=lr,
                         grad_clip=grad_clip, optimizer=optimizer,
                         callbacks=callbacks)
        self._init_dist(world_size, step_timeout=step_timeout,
                        max_epoch_retries=max_epoch_retries,
                        registry=registry, _fault_injection=_fault_injection)

    def _init_dist(self, world_size: int, *, step_timeout: float = 60.0,
                   max_epoch_retries: int = 2,
                   registry: MetricsRegistry | None = None,
                   _fault_injection: dict[int, tuple[int, int]] | None = None
                   ) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if world_size > 1 and not fork_available():  # pragma: no cover
            logger.warning("fork start method unavailable; "
                           "falling back to world_size=1")
            world_size = 1
        if world_size > 1:
            _num_batches(self.objective)  # raise early on unshardable regimes
        self.world_size = world_size
        self.step_timeout = step_timeout
        self.max_epoch_retries = max_epoch_retries
        self.registry = registry if registry is not None else MetricsRegistry()
        self._fault_injection = dict(_fault_injection or {})
        self._pool: _Pool | None = None
        self._epoch_index = 0
        self._c_failures = self.registry.counter(
            "dist_worker_failures_total", "worker processes lost")
        self._c_retries = self.registry.counter(
            "dist_epoch_retries_total", "epochs retried after a failure")
        self._h_step = self.registry.histogram(
            "dist_step_seconds", "synchronized optimizer step latency")
        self.registry.gauge("dist_world_size", "live worker processes").set(
            world_size if world_size > 1 else 1)

    @classmethod
    def from_engine(cls, engine: TrainingEngine, world_size: int,
                    **opts) -> "DistributedEngine":
        """Adopt an already-constructed engine without re-preparing it.

        ``Objective.prepare`` consumed the engine's RNG at construction;
        calling it again would shift every downstream draw.  This copies
        the prepared state — model, split, RNG, objective, optimizer,
        callbacks — verbatim, so the adopted engine's ``world_size=1``
        behaviour remains bit-identical to the original.
        """
        self = cls.__new__(cls)
        self.model = engine.model
        self.split = engine.split
        self.rng = engine.rng
        self.objective = engine.objective
        self.grad_clip = engine.grad_clip
        self.optimizer = engine.optimizer
        self.callbacks = list(engine.callbacks)
        self._evaluator = None
        self._active_state = None
        self._active_callbacks = ()
        self._init_dist(world_size, **opts)
        return self

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @property
    def evaluator(self):
        """Sharded evaluator at ``world_size > 1``, base evaluator at 1."""
        if self._evaluator is None:
            if self.world_size > 1:
                self._evaluator = ShardedEvaluator(
                    self.split, num_workers=self.world_size,
                    timeout=max(self.step_timeout, 120.0))
            else:
                self._evaluator = super().evaluator
        return self._evaluator

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_epoch(self) -> float:
        if self.world_size == 1:
            return super().train_epoch()
        self._epoch_index += 1
        for attempt in range(self.max_epoch_retries + 1):
            self._ensure_pool()
            alive = sorted(self._pool.procs)
            if not alive:
                raise WorkerFailure([], "no surviving workers")
            try:
                with trace("dist.epoch", epoch=self._epoch_index,
                           world=len(alive), attempt=attempt):
                    return self._run_epoch(alive, attempt)
            except WorkerFailure as failure:
                self._handle_failure(failure, alive)
                if attempt >= self.max_epoch_retries:
                    raise
                self._c_retries.inc()
                logger.warning("retrying epoch %d on %d survivor(s)",
                               self._epoch_index, len(self._pool.procs))
        raise AssertionError("unreachable")  # pragma: no cover

    def fit(self, epochs: int, **kwargs):
        """Same surface as :meth:`TrainingEngine.fit`; pool torn down after."""
        try:
            return super().fit(epochs, **kwargs)
        finally:
            self.shutdown()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        ctx = mp.get_context("fork")
        averager = GradientAverager(self.model, self.world_size)
        results = ctx.Queue()
        procs, cmd, ack = {}, {}, {}
        for rank in range(self.world_size):
            cmd[rank] = ctx.Queue()
            ack[rank] = ctx.Queue()
            wctx = _WorkerContext(
                rank=rank, model=self.model, objective=self.objective,
                averager=averager, cmd=cmd[rank], ack=ack[rank],
                results=results, fault=self._fault_injection.get(rank))
            proc = ctx.Process(target=_train_worker, args=(wctx,),
                               daemon=True, name=f"repro-dist-{rank}")
            proc.start()
            procs[rank] = proc
        self._pool = _Pool(averager=averager, procs=procs, cmd=cmd, ack=ack,
                           results=results)
        logger.info("started %d dist worker(s)", self.world_size)

    def shutdown(self) -> None:
        """Stop workers and release shared memory; never blocks forever."""
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        for rank, proc in pool.procs.items():
            try:
                pool.cmd[rank].put(("stop",))
            except Exception:  # pragma: no cover - broken queue
                pass
        for proc in pool.procs.values():
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - hung-worker cleanup
                proc.terminate()
                proc.join(timeout=1.0)
        for queue in (*pool.cmd.values(), *pool.ack.values(), pool.results):
            queue.cancel_join_thread()
            queue.close()
        pool.averager.close()
        self.registry.gauge("dist_world_size").set(0)

    # ------------------------------------------------------------------
    # One distributed epoch
    # ------------------------------------------------------------------
    def _collect(self, kind: str, pending: set[int], epoch: int, attempt: int,
                 timeout: float, needs_abort: bool = True) -> dict[int, tuple]:
        """Gather one ``kind`` message per pending rank, fault-aware.

        Polls the shared results queue with a deadline — never a bare
        blocking ``get`` — checking worker liveness between polls.
        Messages from earlier epochs/aborted attempts are dropped;
        current-attempt messages of a *different* kind (a fast worker's
        first gradient arriving during meta collection) are stashed for
        the next call.  Raises :class:`WorkerFailure` naming the ranks
        that died or never reported.
        """
        pool = self._pool
        out: dict[int, tuple] = {}
        stash: list[tuple] = []
        for msg in pool.stash:
            if msg[2] != epoch or msg[3] != attempt:
                continue
            if msg[0] == kind and msg[1] in pending:
                out[msg[1]] = msg
                pending.discard(msg[1])
            else:
                stash.append(msg)
        pool.stash = stash
        deadline = time.monotonic() + timeout
        while pending:
            try:
                msg = pool.results.get(timeout=0.05)
            except (Empty, EOFError):
                msg = None
            except Exception:  # pragma: no cover - half-written pickle
                msg = None
            if msg is not None:
                if msg[2] != epoch or msg[3] != attempt:
                    continue  # stale: an earlier epoch or aborted attempt
                if msg[0] == kind and msg[1] in pending:
                    out[msg[1]] = msg
                    pending.discard(msg[1])
                else:
                    pool.stash.append(msg)
                continue
            dead = [r for r in pending if not pool.procs[r].is_alive()]
            if dead:
                raise WorkerFailure(dead, "died mid-epoch",
                                    needs_abort=needs_abort)
            if time.monotonic() > deadline:
                raise WorkerFailure(sorted(pending),
                                    f"hung (> {timeout:.0f}s)",
                                    needs_abort=needs_abort)
        return out

    def _run_epoch(self, alive: list[int], attempt: int) -> float:
        pool = self._pool
        epoch = self._epoch_index
        pool.stash = []
        # Stamp the dist.epoch span's context into every epoch command so
        # worker spans (fanned back on epoch_done) join this trace.
        traceparent = current_traceparent() if get_tracer().enabled else None
        for rank in alive:
            pool.cmd[rank].put(("epoch", epoch, attempt, list(alive),
                                traceparent))
        metas = self._collect("meta", set(alive), epoch, attempt,
                              self.step_timeout)
        counts = {meta[4] for meta in metas.values()}
        if len(counts) != 1:  # pragma: no cover - replica divergence guard
            raise RuntimeError(f"workers disagree on batch count: {counts}")
        num_batches = counts.pop()

        losses = []
        for b in range(num_batches):
            grads = self._collect("grad", set(alive), epoch, attempt,
                                  self.step_timeout)
            if any(msg[4] != b for msg in grads.values()):  # pragma: no cover
                raise RuntimeError("workers fell out of batch lockstep")
            with self._h_step.time(), trace("dist.step", batch=b):
                weight = sum(msg[6] for msg in grads.values())
                if weight > 0:
                    pool.averager.average_into(self.model, alive)
                    if self.grad_clip:
                        nn.clip_grad_norm(self.optimizer.parameters,
                                          self.grad_clip)
                    self.optimizer.step()
                    pool.averager.publish_params(self.model)
                    losses.append(sum(msg[5] * msg[6] for msg in
                                      grads.values()) / weight)
            for rank in alive:
                pool.ack[rank].put(("step",))
        # Survivors past this point have left the step loop, so a
        # failure here must not enqueue abort acks they would misread
        # during the next epoch.
        dones = self._collect("epoch_done", set(alive), epoch, attempt,
                              self.step_timeout, needs_abort=False)
        tracer = get_tracer()
        for msg in dones.values():
            self.registry.merge(msg[4])
            if tracer.enabled:
                for record in msg[5]:
                    tracer.record(record)
        return float(np.mean(losses)) if losses else float("nan")

    def _handle_failure(self, failure: WorkerFailure, alive: list[int]) -> None:
        """Remove failed workers, notify callbacks, abort the survivors."""
        pool = self._pool
        for rank in failure.ranks:
            proc = pool.procs.pop(rank, None)
            if proc is None:
                continue
            proc.terminate()
            proc.join(timeout=1.0)
            pool.failed.append(rank)
            self._c_failures.inc()
            logger.error("dist worker %d %s; removing from world",
                         rank, failure.reason)
            self._dispatch_worker_error(rank, failure)
        self.registry.gauge("dist_world_size").set(len(pool.procs))
        if failure.needs_abort:
            # Survivors are blocked on (or heading for) their step ack:
            # one abort each sends them back to the command loop.
            for rank in alive:
                if rank in pool.procs:
                    pool.ack[rank].put(("abort",))

    def _dispatch_worker_error(self, rank: int, exc: BaseException) -> None:
        """``on_fit_error``-style dispatch: every hook runs, errors swallowed."""
        for callback in self._active_callbacks:
            try:
                callback.on_worker_error(self._active_state, rank, exc)
            except Exception:  # noqa: BLE001 - never mask recovery
                pass
