"""Shared-memory flat buffers for cross-process parameter mirroring.

``repro.dist`` keeps every worker's model replica bit-identical by
exchanging raw ``float64`` vectors through
:mod:`multiprocessing.shared_memory`:

* one *parameter* buffer holds the canonical flat parameter vector the
  parent publishes after each optimizer step;
* one *gradient slab* holds ``world_size`` flat gradient vectors, one
  slot per worker, written after each local backward pass.

Layout comes from :class:`repro.nn.serialize.FlatSpec`, so the same
ordered view serves checkpoint diffing, bundle export and IPC.  All
buffers are created by the parent before forking; workers attach to the
inherited :class:`~multiprocessing.shared_memory.SharedMemory` objects
directly (fork start method), so no name handshake is needed.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from ..nn.serialize import FlatSpec, flatten_state_dict

__all__ = ["SharedFlatBuffer", "GradientAverager"]

_FLOAT64 = np.dtype(np.float64)


class SharedFlatBuffer:
    """A ``(rows, size)`` float64 matrix backed by shared memory.

    ``rows=1`` gives the parameter buffer; ``rows=world_size`` gives the
    gradient slab.  The creating process owns the segment and must call
    :meth:`close` (which also unlinks); forked children share the
    mapping for free and never unlink.
    """

    def __init__(self, rows: int, size: int) -> None:
        if rows < 1 or size < 1:
            raise ValueError(f"need rows >= 1 and size >= 1, got {rows}x{size}")
        self.rows = rows
        self.size = size
        self._shm = shared_memory.SharedMemory(
            create=True, size=rows * size * _FLOAT64.itemsize)
        self.array = np.ndarray((rows, size), dtype=_FLOAT64,
                                buffer=self._shm.buf)
        self.array.fill(0.0)
        self._owner = True

    def row(self, index: int) -> np.ndarray:
        """Writable flat view of one row."""
        return self.array[index]

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment."""
        if self._shm is None:
            return
        # Drop the exported ndarray first: SharedMemory.close() refuses
        # while views of its buffer are alive.
        self.array = None
        try:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
        except (FileNotFoundError, BufferError):  # pragma: no cover - defensive
            pass
        self._shm = None

    def __enter__(self) -> "SharedFlatBuffer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class GradientAverager:
    """Param-server style state shared between the parent and its workers.

    The parent constructs one averager per training pool.  Per step:

    1. each worker refreshes its replica from :attr:`params`, runs
       forward/backward on its shard, and calls
       :meth:`write_gradients` into its slot (plus its shard size into
       :attr:`weights`);
    2. the parent calls :meth:`average_into` which forms the
       shard-size-weighted mean over the participating slots and
       installs it as ``param.grad`` on the canonical model — equal to
       the full-batch gradient, because every objective loss is a
       per-row mean;
    3. after the optimizer step the parent calls
       :meth:`publish_params` and the next round begins.

    The weighting makes the average exact under uneven shards (strided
    sharding leaves some workers one row short).
    """

    def __init__(self, model, world_size: int) -> None:
        self.world_size = world_size
        params = dict(model.named_parameters())
        self.spec = FlatSpec.from_state_dict(
            {name: p.data for name, p in params.items()})
        self.params = SharedFlatBuffer(1, self.spec.total_size)
        self.grads = SharedFlatBuffer(world_size, self.spec.total_size)
        # Per-worker shard sizes for the current step (row 0 unused pad).
        self.weights = SharedFlatBuffer(1, world_size)
        self.publish_params(model)

    # -- parent side ----------------------------------------------------
    def publish_params(self, model) -> None:
        """Write the canonical flat parameter vector for workers to read."""
        state = {name: p.data for name, p in model.named_parameters()}
        flatten_state_dict(state, spec=self.spec, out=self.params.row(0))

    def average_into(self, model, ranks: list[int]) -> None:
        """Install the weighted mean of ``ranks``' gradient slots."""
        w = np.array([self.weights.row(0)[r] for r in ranks])
        total = w.sum()
        if total <= 0:
            raise ValueError(f"no gradient weight among ranks {ranks}")
        mean = np.zeros(self.spec.total_size)
        for rank, weight in zip(ranks, w):
            mean += (weight / total) * self.grads.row(rank)
        for name, param in model.named_parameters():
            param.grad = mean[self.spec.slot(name)].reshape(param.data.shape).copy()

    # -- worker side ----------------------------------------------------
    def read_params_into(self, model) -> None:
        """Refresh a replica from the published parameter vector."""
        flat = self.params.row(0)
        for name, param in model.named_parameters():
            param.data[...] = flat[self.spec.slot(name)].reshape(param.data.shape)

    def write_gradients(self, model, rank: int, weight: float) -> None:
        """Flatten a replica's gradients into slot ``rank``.

        Parameters a batch never touched (``grad is None``) contribute
        zeros, exactly as they would in a single-process step.
        """
        slot = self.grads.row(rank)
        for name, param in model.named_parameters():
            sl = self.spec.slot(name)
            if param.grad is None:
                slot[sl] = 0.0
            else:
                slot[sl] = np.asarray(param.grad).reshape(-1)
        self.weights.row(0)[rank] = float(weight)

    def close(self) -> None:
        """Release all shared segments (parent side, after joins)."""
        self.params.close()
        self.grads.close()
        self.weights.close()
