"""Ranking metric containers (MR, MRR, Hits@n)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RankingMetrics"]


@dataclass
class RankingMetrics:
    """Aggregated link-prediction metrics over a set of ranks.

    All values follow the paper's conventions: MRR and Hits@n are
    percentages (larger is better), MR is an absolute rank (smaller is
    better).
    """

    mr: float
    mrr: float
    hits: dict[int, float] = field(default_factory=dict)
    num_queries: int = 0

    @classmethod
    def from_ranks(cls, ranks: np.ndarray, hits_at: tuple[int, ...] = (1, 3, 10)) -> "RankingMetrics":
        """Compute metrics from an array of 1-based ranks."""
        ranks = np.asarray(ranks, dtype=np.float64)
        if not len(ranks):
            return cls(mr=float("nan"), mrr=float("nan"),
                       hits={n: float("nan") for n in hits_at}, num_queries=0)
        return cls(
            mr=float(ranks.mean()),
            mrr=float((1.0 / ranks).mean() * 100.0),
            hits={n: float((ranks <= n).mean() * 100.0) for n in hits_at},
            num_queries=len(ranks),
        )

    @classmethod
    def average(cls, metrics: list["RankingMetrics"]) -> "RankingMetrics":
        """Mean of several runs (the multi-seed reporting convention)."""
        if not metrics:
            raise ValueError("cannot average an empty metrics list")
        hits_keys = metrics[0].hits.keys()
        return cls(
            mr=float(np.mean([m.mr for m in metrics])),
            mrr=float(np.mean([m.mrr for m in metrics])),
            hits={k: float(np.mean([m.hits[k] for m in metrics])) for k in hits_keys},
            num_queries=int(np.mean([m.num_queries for m in metrics])),
        )

    def to_dict(self) -> dict:
        """Exact JSON-serialisable view (full precision, unlike ``as_row``)."""
        return {"mr": self.mr, "mrr": self.mrr,
                "hits": {str(n): v for n, v in sorted(self.hits.items())},
                "num_queries": self.num_queries}

    @classmethod
    def from_dict(cls, payload: dict) -> "RankingMetrics":
        """Rebuild from :meth:`to_dict` output (hits keys back to int)."""
        return cls(
            mr=float(payload["mr"]),
            mrr=float(payload["mrr"]),
            hits={int(n): float(v) for n, v in payload.get("hits", {}).items()},
            num_queries=int(payload.get("num_queries", 0)),
        )

    def as_row(self) -> dict[str, float]:
        """Flat dict suitable for table rendering."""
        row = {"MRR": round(self.mrr, 1), "MR": round(self.mr, 1)}
        for n in sorted(self.hits):
            row[f"Hits@{n}"] = round(self.hits[n], 1)
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hits = ", ".join(f"H@{n}={v:.1f}" for n, v in sorted(self.hits.items()))
        return f"RankingMetrics(MRR={self.mrr:.1f}, MR={self.mr:.0f}, {hits}, n={self.num_queries})"
