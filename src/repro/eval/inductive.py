"""The ``unseen_entities`` evaluation split for inductive link prediction.

Transductive splits (train/valid/test) share one entity vocabulary, so
every test entity has a trained embedding row.  Streaming deployments
face the harder case: entities that did not exist at training time and
must be embedded *inductively* from their features and incident triples
(:mod:`repro.stream`).  This module carves that regime out of an
existing :class:`~repro.kg.KGSplit`:

* :func:`make_unseen_split` holds out a set of entities entirely — every
  triple touching them leaves train/valid/test — and re-indexes the
  remaining *seen* world to a compact vocabulary.  Each held-out entity
  keeps a deterministic **context** half of its incident triples (what a
  streaming append would carry) and an **eval** half (what we rank).
* :func:`evaluate_inductive` trains nothing: it takes a model trained on
  the seen split, replays the held-out entities through the streaming
  append path (inductive encoder, optional warm start), and reports
  transductive and inductive filtered-ranking metrics **separately** —
  mixing them would let the seen majority mask inductive regressions.

Held-out ids are deterministic: unseen entity ``i`` (in ascending
original-id order) becomes ``num_seen + i``, which is exactly the id the
append path assigns, so context triples can be pre-materialised here.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field

import numpy as np

from ..datasets.features import ModalityFeatures
from ..kg import KGSplit, KnowledgeGraph, Vocabulary
from ..obs import trace
from .evaluator import RankingEvaluator
from .metrics import RankingMetrics

__all__ = [
    "UnseenEntity",
    "InductiveSplit",
    "InductiveReport",
    "make_unseen_split",
    "evaluate_inductive",
]


@dataclass(frozen=True)
class UnseenEntity:
    """One held-out entity with its context/eval triple halves.

    ``entity_id`` is the id the entity will occupy *after* the streaming
    append (``num_seen + index``); ``context`` and ``eval_triples`` are
    already expressed in that final id space.
    """

    name: str
    entity_type: str
    original_id: int
    entity_id: int
    context: np.ndarray       # (m, 3) int64, fed to the append path
    eval_triples: np.ndarray  # (k, 3) int64, ranked by the evaluator


@dataclass(frozen=True)
class InductiveSplit:
    """A seen-world split plus the held-out entity records."""

    seen: KGSplit
    unseen: tuple[UnseenEntity, ...]
    features: ModalityFeatures | None = None
    #: Triples dropped because both endpoints were held out.
    num_dropped: int = 0
    #: Original entity id -> seen id (-1 for held-out entities).
    id_map: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def num_seen(self) -> int:
        return self.seen.num_entities

    @property
    def num_unseen(self) -> int:
        return len(self.unseen)

    def context_triples(self) -> np.ndarray:
        blocks = [u.context for u in self.unseen]
        return (np.concatenate(blocks) if blocks
                else np.empty((0, 3), dtype=np.int64))

    def eval_triples(self) -> np.ndarray:
        blocks = [u.eval_triples for u in self.unseen]
        return (np.concatenate(blocks) if blocks
                else np.empty((0, 3), dtype=np.int64))


@dataclass(frozen=True)
class InductiveReport:
    """Transductive and inductive metrics, reported side by side."""

    transductive: RankingMetrics
    inductive: RankingMetrics
    num_unseen: int
    num_context: int
    num_eval: int

    def summary(self) -> dict:
        return {
            "num_unseen": self.num_unseen,
            "num_context": self.num_context,
            "num_eval": self.num_eval,
            "transductive": self.transductive.to_dict(),
            "inductive": self.inductive.to_dict(),
        }


def _incident_pools(parts: list[np.ndarray], unseen_mask: np.ndarray) -> tuple[
        dict[int, list[np.ndarray]], list[np.ndarray], int]:
    """Split part triples into seen-only blocks and per-unseen pools.

    Triples with both endpoints held out are dropped (their count is
    returned); part order then row order makes each pool deterministic.
    """
    pools: dict[int, list[np.ndarray]] = {}
    seen_blocks: list[np.ndarray] = []
    dropped = 0
    for part in parts:
        part = np.asarray(part, dtype=np.int64).reshape(-1, 3)
        if not len(part):
            seen_blocks.append(part)
            continue
        h_unseen = unseen_mask[part[:, 0]]
        t_unseen = unseen_mask[part[:, 2]]
        both = h_unseen & t_unseen
        dropped += int(both.sum())
        seen_blocks.append(part[~h_unseen & ~t_unseen])
        for row in part[(h_unseen ^ t_unseen)]:
            owner = int(row[0] if unseen_mask[row[0]] else row[2])
            pools.setdefault(owner, []).append(row)
    return pools, seen_blocks, dropped


def make_unseen_split(split: KGSplit, *, num_unseen: int | None = None,
                      fraction: float = 0.1,
                      rng: np.random.Generator | None = None,
                      min_incident: int = 2,
                      features: ModalityFeatures | None = None) -> InductiveSplit:
    """Hold out entities for inductive evaluation and re-index the rest.

    Candidates need at least ``min_incident`` incident triples whose
    other endpoint stays seen (so they get a non-empty context *and* a
    non-empty eval half); sampling is driven by ``rng`` but the held-out
    id assignment is order-deterministic.  ``features``, when given, are
    row-sliced to the seen vocabulary so a model can train on the seen
    world directly.
    """
    gen = rng if rng is not None else np.random.default_rng(0)
    n = split.num_entities
    parts = [split.train, split.valid, split.test]
    all_triples = np.concatenate([np.asarray(p).reshape(-1, 3) for p in parts])
    incident = np.bincount(all_triples[:, [0, 2]].ravel(), minlength=n)
    candidates = np.flatnonzero(incident >= min_incident)
    if num_unseen is None:
        num_unseen = max(1, int(round(fraction * len(candidates))))
    if num_unseen > len(candidates):
        raise ValueError(
            f"requested {num_unseen} unseen entities but only "
            f"{len(candidates)} have >= {min_incident} incident triples")
    picked = gen.choice(candidates, size=num_unseen, replace=False)

    # Two passes: entities whose usable pool (other endpoint seen) is too
    # small to yield both halves return to the seen world.
    for _ in range(2):
        unseen_mask = np.zeros(n, dtype=bool)
        unseen_mask[picked] = True
        pools, seen_blocks, dropped = _incident_pools(parts, unseen_mask)
        viable = np.array([u for u in picked if len(pools.get(int(u), ())) >= 2],
                          dtype=np.int64)
        if len(viable) == len(picked):
            break
        picked = viable
    if not len(picked):
        raise ValueError("no held-out entity kept >= 2 usable incident triples")
    picked = np.sort(picked)

    # Re-index: seen entities keep their relative order; unseen entity i
    # lands at num_seen + i — the id the streaming append will assign.
    id_map = np.full(n, -1, dtype=np.int64)
    seen_ids = np.flatnonzero(~unseen_mask)
    id_map[seen_ids] = np.arange(len(seen_ids))
    num_seen = len(seen_ids)
    id_map[picked] = num_seen + np.arange(len(picked))

    names = split.graph.entities.names()
    types = list(split.graph.entity_types)
    seen_vocab = Vocabulary(names[i] for i in seen_ids)
    seen_types = [types[i] for i in seen_ids] if types else []

    def remap(block: np.ndarray) -> np.ndarray:
        out = block.copy()
        out[:, 0] = id_map[block[:, 0]]
        out[:, 2] = id_map[block[:, 2]]
        return out

    train, valid, test = (remap(b) for b in seen_blocks)
    graph = KnowledgeGraph(
        entities=seen_vocab, relations=split.graph.relations,
        triples=np.concatenate([train, valid, test]),
        entity_types=seen_types, name=f"{split.graph.name}-seen")
    seen_split = KGSplit(graph=graph, train=train, valid=valid, test=test)

    unseen: list[UnseenEntity] = []
    for i, orig in enumerate(picked):
        pool = remap(np.stack(pools[int(orig)]))
        cut = math.ceil(len(pool) / 2)
        unseen.append(UnseenEntity(
            name=names[int(orig)],
            entity_type=types[int(orig)] if types else "Unknown",
            original_id=int(orig), entity_id=num_seen + i,
            context=pool[:cut], eval_triples=pool[cut:]))

    seen_features = None
    if features is not None:
        seen_features = ModalityFeatures(
            molecular=features.molecular[seen_ids],
            textual=features.textual[seen_ids],
            structural=features.structural[seen_ids],
            has_molecule=features.has_molecule[seen_ids])
    return InductiveSplit(seen=seen_split, unseen=tuple(unseen),
                          features=seen_features, num_dropped=dropped,
                          id_map=id_map)


def evaluate_inductive(model, ind: InductiveSplit, *,
                       warm_start_epochs: int = 0,
                       max_queries: int | None = None,
                       rng: np.random.Generator | None = None,
                       batch_size: int | None = None,
                       descriptions: dict[str, str] | None = None) -> InductiveReport:
    """Rank held-out entities through the streaming append path.

    ``model`` must be trained on ``ind.seen`` (its entity count is
    checked).  The model and split are deep-copied, the held-out
    entities are appended with their context triples (inductive rows via
    :class:`repro.stream.InductiveEncoder`), optionally warm-started for
    ``warm_start_epochs``, and both regimes are evaluated with one
    filter covering seen train/valid/test plus the context triples plus
    the inductive eval triples.
    """
    # Local import: repro.stream sits above repro.eval in the layering
    # (stream -> kg/datasets, eval -> kg), so the dependency stays
    # function-scoped instead of module-level.
    from ..stream import EntitySpec, default_encoder, plan_append, commit_append
    from ..train import warm_start

    if int(model.num_entities) != ind.num_seen:
        raise ValueError(
            f"model has {model.num_entities} entities but the seen split "
            f"has {ind.num_seen}; train on InductiveSplit.seen")
    if not ind.num_unseen:
        raise ValueError("inductive split holds out no entities")

    model = copy.deepcopy(model)
    work = copy.deepcopy(ind.seen)
    specs = [EntitySpec(name=u.name, entity_type=u.entity_type,
                        description=(descriptions or {}).get(u.name, ""))
             for u in ind.unseen]
    context = ind.context_triples()
    eval_triples = ind.eval_triples()

    with trace("eval.inductive", unseen=ind.num_unseen):
        encoder = default_encoder(model, work, features=ind.features)
        plan = plan_append(model, work, specs,
                           [[int(h), int(r), int(t)] for h, r, t in context],
                           encoder=encoder)
        delta = commit_append(model, plan, generation=1, source="eval")
        assert list(delta.entity_ids) == [u.entity_id for u in ind.unseen]
        if warm_start_epochs:
            warm_start(model, work, delta.triples,
                       old_num_entities=ind.num_seen,
                       epochs=warm_start_epochs,
                       rng=rng if rng is not None else np.random.default_rng(0))
        eval_split = KGSplit(
            graph=work.graph,
            train=np.concatenate([work.train, delta.triples]),
            valid=work.valid,
            test=eval_triples if len(eval_triples) else work.test)
        evaluator = RankingEvaluator(eval_split,
                                     batch_size=batch_size or 128)
        trans_ranks = evaluator.compute_ranks(
            model, ind.seen.test, max_queries=max_queries, rng=rng,
            batch_size=batch_size)
        ind_ranks = evaluator.compute_ranks(
            model, eval_triples, max_queries=max_queries, rng=rng,
            batch_size=batch_size)
    return InductiveReport(
        transductive=RankingMetrics.from_ranks(trans_ranks),
        inductive=RankingMetrics.from_ranks(ind_ranks),
        num_unseen=ind.num_unseen,
        num_context=int(len(context)),
        num_eval=int(len(eval_triples)))
