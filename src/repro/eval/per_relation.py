"""Per-relation-family evaluation (Tables IV & V of the paper).

The paper trains on the whole KG and reports MRR/Hits per relation
*family* (Disease-Gene, Gene-Gene, Compound-Compound, ...).  We group
test triples by the family label derived from endpoint entity types and
evaluate each group with the standard filtered protocol.
"""

from __future__ import annotations

import numpy as np

from ..kg import KGSplit
from .evaluator import RankingEvaluator
from .metrics import RankingMetrics
from .ranking import TailScorer

__all__ = ["family_of_triples", "evaluate_per_relation_family", "family_triple_counts"]


def _canonical(family: str) -> str:
    left, _, right = family.partition("-")
    return "-".join(sorted((left, right))) if right else family


def family_of_triples(split: KGSplit, triples: np.ndarray) -> np.ndarray:
    """Canonical family label of each triple (endpoint-type pair)."""
    types = split.graph.entity_types
    labels = np.empty(len(triples), dtype=object)
    for i, (h, _, t) in enumerate(triples):
        labels[i] = _canonical(f"{types[int(h)]}-{types[int(t)]}")
    return labels


def family_triple_counts(split: KGSplit) -> dict[str, int]:
    """Triple counts per family over the full KG (Table V)."""
    return split.graph.family_triple_counts()


def evaluate_per_relation_family(
    model: TailScorer,
    split: KGSplit,
    max_queries_per_family: int | None = None,
    rng: np.random.Generator | None = None,
    batch_size: int = 128,
    evaluator: RankingEvaluator | None = None,
) -> dict[str, RankingMetrics]:
    """Filtered metrics per relation family on the test partition.

    One :class:`RankingEvaluator` (hence one filter construction) is
    shared across all families instead of rebuilding the full
    train+valid+test filter per family.
    """
    labels = family_of_triples(split, split.test)
    ev = evaluator if evaluator is not None else RankingEvaluator(split)
    results: dict[str, RankingMetrics] = {}
    for family in sorted(set(labels)):
        subset = split.test[labels == family]
        ranks = ev.compute_ranks(model, subset,
                                 max_queries=max_queries_per_family,
                                 rng=rng, batch_size=batch_size)
        results[family] = RankingMetrics.from_ranks(ranks)
    return results
