"""Filtered ranking evaluation (Bordes et al. protocol, Section V-B).

Every model under test exposes ``predict_tails(heads, rels) ->
(B, num_entities)`` scores.  For each test triple ``(h, r, t)`` the
true tail is ranked against all entities with every *other* known-true
tail filtered out; the inverse query ``(t, r^-1, h)`` ranks the head
side, matching the paper's protocol of training with inverse triples
and "ranking with whole entities".  Ties are broken by the mean-rank
convention (average of optimistic and pessimistic rank), so constant
scorers cannot cheat.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Protocol

import numpy as np

from ..kg import KGSplit
from .metrics import RankingMetrics

__all__ = ["TailScorer", "compute_ranks", "evaluate_ranking", "build_filter"]


class TailScorer(Protocol):
    """Anything that scores all candidate tails for (head, relation) queries."""

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        """Return ``(B, num_entities)`` scores."""
        ...  # pragma: no cover


def build_filter(split: KGSplit) -> dict[tuple[int, int], np.ndarray]:
    """Map every ``(h, r)`` query (both directions) to its true tails."""
    num_relations = split.num_relations
    grouped: dict[tuple[int, int], set[int]] = defaultdict(set)
    for part in (split.train, split.valid, split.test):
        for h, r, t in part:
            grouped[(int(h), int(r))].add(int(t))
            grouped[(int(t), int(r) + num_relations)].add(int(h))
    return {key: np.fromiter(vals, dtype=np.int64) for key, vals in grouped.items()}


def _ranks_for_queries(
    model: TailScorer,
    queries: np.ndarray,
    targets: np.ndarray,
    true_tails: dict[tuple[int, int], np.ndarray],
    batch_size: int,
) -> np.ndarray:
    ranks = np.zeros(len(queries))
    for start in range(0, len(queries), batch_size):
        q = queries[start:start + batch_size]
        tgt = targets[start:start + batch_size]
        scores = np.array(model.predict_tails(q[:, 0], q[:, 1]), dtype=np.float64)
        for row in range(len(q)):
            target = int(tgt[row])
            target_score = scores[row, target]
            filtered = true_tails.get((int(q[row, 0]), int(q[row, 1])))
            row_scores = scores[row]
            if filtered is not None:
                row_scores = row_scores.copy()
                row_scores[filtered] = -np.inf
            greater = int((row_scores > target_score).sum())
            equal = int((row_scores == target_score).sum())  # target filtered out
            # Mean-rank tie handling: 1 + #greater + (#equal)/2.
            ranks[start + row] = 1.0 + greater + equal / 2.0
    return ranks


def compute_ranks(
    model: TailScorer,
    split: KGSplit,
    triples: np.ndarray,
    max_queries: int | None = None,
    rng: np.random.Generator | None = None,
    batch_size: int = 128,
    both_directions: bool = True,
) -> np.ndarray:
    """Filtered ranks for ``triples`` (tail side, plus head side via inverses)."""
    if max_queries is not None and len(triples) > max_queries:
        gen = rng if rng is not None else np.random.default_rng(0)
        triples = triples[gen.choice(len(triples), max_queries, replace=False)]
    true_tails = build_filter(split)
    num_relations = split.num_relations

    tail_queries = triples[:, [0, 1]]
    tail_targets = triples[:, 2]
    ranks = [_ranks_for_queries(model, tail_queries, tail_targets, true_tails, batch_size)]
    if both_directions:
        head_queries = np.stack([triples[:, 2], triples[:, 1] + num_relations], axis=1)
        head_targets = triples[:, 0]
        ranks.append(_ranks_for_queries(model, head_queries, head_targets, true_tails, batch_size))
    return np.concatenate(ranks)


def evaluate_ranking(
    model: TailScorer,
    split: KGSplit,
    part: str = "test",
    max_queries: int | None = None,
    rng: np.random.Generator | None = None,
    batch_size: int = 128,
    both_directions: bool = True,
) -> RankingMetrics:
    """Filtered MR / MRR / Hits@{1,3,10} on a split partition."""
    triples = {"train": split.train, "valid": split.valid, "test": split.test}[part]
    ranks = compute_ranks(model, split, triples, max_queries=max_queries,
                          rng=rng, batch_size=batch_size,
                          both_directions=both_directions)
    return RankingMetrics.from_ranks(ranks)
