"""Filtered ranking evaluation (Bordes et al. protocol, Section V-B).

Every model under test exposes ``predict_tails(heads, rels) ->
(B, num_entities)`` scores.  For each test triple ``(h, r, t)`` the
true tail is ranked against all entities with every *other* known-true
tail filtered out; the inverse query ``(t, r^-1, h)`` ranks the head
side, matching the paper's protocol of training with inverse triples
and "ranking with whole entities".  Ties are broken by the mean-rank
convention (average of optimistic and pessimistic rank), so constant
scorers cannot cheat.

The heavy lifting now lives in :class:`repro.eval.evaluator.
RankingEvaluator`, which precomputes a CSR-packed filter once per split
and ranks whole score batches without a per-row loop.
:func:`compute_ranks` and :func:`evaluate_ranking` are kept as thin
compatibility wrappers; pass ``evaluator=`` to amortise filter
construction across calls.  The original per-row implementation is
retained as :func:`compute_ranks_reference` — it is the ground truth
the vectorized path is parity-tested against, and the "old path" the
evaluation microbenchmark times.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Protocol

import numpy as np

from ..kg import KGSplit
from .evaluator import RankingEvaluator
from .metrics import RankingMetrics

__all__ = [
    "TailScorer",
    "compute_ranks",
    "compute_ranks_reference",
    "evaluate_ranking",
    "build_filter",
]


class TailScorer(Protocol):
    """Anything that scores all candidate tails for (head, relation) queries."""

    def predict_tails(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        """Return ``(B, num_entities)`` scores."""
        ...  # pragma: no cover


def build_filter(split: KGSplit) -> dict[tuple[int, int], np.ndarray]:
    """Map every ``(h, r)`` query (both directions) to its true tails.

    Reference (per-triple Python loop) filter construction.  Production
    code should use :func:`repro.eval.evaluator.build_csr_filter`, which
    packs the same mapping in one vectorized pass.
    """
    num_relations = split.num_relations
    grouped: dict[tuple[int, int], set[int]] = defaultdict(set)
    for part in (split.train, split.valid, split.test):
        for h, r, t in part:
            grouped[(int(h), int(r))].add(int(t))
            grouped[(int(t), int(r) + num_relations)].add(int(h))
    return {key: np.fromiter(vals, dtype=np.int64) for key, vals in grouped.items()}


def _ranks_for_queries(
    model: TailScorer,
    queries: np.ndarray,
    targets: np.ndarray,
    true_tails: dict[tuple[int, int], np.ndarray],
    batch_size: int,
) -> np.ndarray:
    ranks = np.zeros(len(queries))
    for start in range(0, len(queries), batch_size):
        q = queries[start:start + batch_size]
        tgt = targets[start:start + batch_size]
        scores = np.array(model.predict_tails(q[:, 0], q[:, 1]), dtype=np.float64)
        for row in range(len(q)):
            target = int(tgt[row])
            target_score = scores[row, target]
            filtered = true_tails.get((int(q[row, 0]), int(q[row, 1])))
            row_scores = scores[row]
            if filtered is not None:
                row_scores = row_scores.copy()
                row_scores[filtered] = -np.inf
            greater = int((row_scores > target_score).sum())
            equal = int((row_scores == target_score).sum())  # target filtered out
            # Mean-rank tie handling: 1 + #greater + (#equal)/2.
            ranks[start + row] = 1.0 + greater + equal / 2.0
    return ranks


def compute_ranks_reference(
    model: TailScorer,
    split: KGSplit,
    triples: np.ndarray,
    max_queries: int | None = None,
    rng: np.random.Generator | None = None,
    batch_size: int = 128,
    both_directions: bool = True,
) -> np.ndarray:
    """Per-row reference ranks (rebuilds the dict filter on every call).

    Kept as the parity/benchmark baseline for the vectorized
    :class:`RankingEvaluator`; do not use on hot paths.
    """
    if max_queries is not None and len(triples) > max_queries:
        gen = rng if rng is not None else np.random.default_rng(0)
        triples = triples[gen.choice(len(triples), max_queries, replace=False)]
    true_tails = build_filter(split)
    num_relations = split.num_relations

    tail_queries = triples[:, [0, 1]]
    tail_targets = triples[:, 2]
    ranks = [_ranks_for_queries(model, tail_queries, tail_targets, true_tails, batch_size)]
    if both_directions:
        head_queries = np.stack([triples[:, 2], triples[:, 1] + num_relations], axis=1)
        head_targets = triples[:, 0]
        ranks.append(_ranks_for_queries(model, head_queries, head_targets, true_tails, batch_size))
    return np.concatenate(ranks)


def compute_ranks(
    model: TailScorer,
    split: KGSplit,
    triples: np.ndarray,
    max_queries: int | None = None,
    rng: np.random.Generator | None = None,
    batch_size: int = 128,
    both_directions: bool = True,
    evaluator: RankingEvaluator | None = None,
) -> np.ndarray:
    """Filtered ranks for ``triples`` (tail side, plus head side via inverses).

    Builds a throwaway :class:`RankingEvaluator` unless one is supplied;
    callers evaluating repeatedly on the same split should construct the
    evaluator once and reuse it.
    """
    ev = evaluator if evaluator is not None else RankingEvaluator(split)
    return ev.compute_ranks(model, triples, max_queries=max_queries, rng=rng,
                            batch_size=batch_size, both_directions=both_directions)


def evaluate_ranking(
    model: TailScorer,
    split: KGSplit,
    part: str = "test",
    max_queries: int | None = None,
    rng: np.random.Generator | None = None,
    batch_size: int = 128,
    both_directions: bool = True,
    evaluator: RankingEvaluator | None = None,
) -> RankingMetrics:
    """Filtered MR / MRR / Hits@{1,3,10} on a split partition."""
    ev = evaluator if evaluator is not None else RankingEvaluator(split)
    return ev.evaluate(model, part=part, max_queries=max_queries, rng=rng,
                       batch_size=batch_size, both_directions=both_directions)
