"""Vectorized filtered-ranking evaluator with a cached CSR filter.

The original :mod:`repro.eval.ranking` path ranks one query at a time in
a Python loop and rebuilds the full ``(h, r) -> true tails`` dict from
train+valid+test on every ``evaluate_ranking`` call.  At DRKG-MM scale
both costs dominate evaluation wall-clock, and the trainer re-pays them
every ``eval_every`` epochs.

:class:`RankingEvaluator` fixes both ends:

* the filter is built **once per split** in a single vectorized pass
  (``np.lexsort`` over the inverse-augmented triple set) and stored as a
  CSR-packed structure — one sorted ``int64`` key array plus
  ``indptr``/``indices`` arrays, exactly like a ``scipy.sparse.csr_matrix``
  without the dependency;
* whole score batches are ranked at once: target extraction, ``-inf``
  scatter through the CSR rows, and the mean-rank tie convention
  (``1 + #greater + #equal / 2``) are all batched numpy reductions with
  no per-row loop.

Ranks are bit-for-bit identical to the reference per-row implementation
(see ``tests/eval/test_evaluator.py`` for the parity proof, including
constant and heavily-tied scorers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import pack_csr_rows
from ..kg import KGSplit
from ..obs import trace
from .metrics import RankingMetrics

__all__ = ["CSRFilter", "build_csr_filter", "RankingEvaluator"]


@dataclass(frozen=True)
class CSRFilter:
    """``(h, r) -> true tails`` packed in CSR form.

    ``keys`` holds the sorted, de-duplicated query codes
    ``h * code_mult + r`` (``code_mult = 2 * num_relations`` so inverse
    relations fit); row ``i`` of the structure is
    ``indices[indptr[i]:indptr[i + 1]]``.  Lookup is a single
    ``np.searchsorted`` over the whole query batch.
    """

    keys: np.ndarray      # (K,) int64, sorted unique query codes
    indptr: np.ndarray    # (K + 1,) int64 row offsets into ``indices``
    indices: np.ndarray   # (nnz,) int64 true-tail entity ids
    code_mult: int        # 2 * num_relations

    @property
    def nnz(self) -> int:
        return int(len(self.indices))

    def lookup(self, heads: np.ndarray, rels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-query ``(start, end)`` offsets into ``indices`` (0/0 on miss)."""
        codes = heads.astype(np.int64) * self.code_mult + rels.astype(np.int64)
        if len(self.keys) == 0:
            zeros = np.zeros(len(codes), dtype=np.int64)
            return zeros, zeros.copy()
        pos = np.searchsorted(self.keys, codes)
        clipped = np.minimum(pos, len(self.keys) - 1)
        hit = self.keys[clipped] == codes
        starts = np.where(hit, self.indptr[clipped], 0)
        ends = np.where(hit, self.indptr[clipped + 1], 0)
        return starts, ends

    def gather(self, heads: np.ndarray, rels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(row_ids, entity_ids)`` of every filtered cell in the batch.

        The pair is ready to use as a fancy-index scatter target:
        ``scores[row_ids, entity_ids] = -inf``.
        """
        starts, ends = self.lookup(heads, rels)
        counts = ends - starts
        total = int(counts.sum())
        row_ids = np.repeat(np.arange(len(heads), dtype=np.int64), counts)
        if total == 0:
            return row_ids, np.empty(0, dtype=np.int64)
        # Position j of the flat output maps to indices[starts[row] + offset]
        # where offset counts from the start of that row's span.
        span_begin = np.cumsum(counts) - counts
        flat = np.arange(total, dtype=np.int64) - np.repeat(span_begin, counts) \
            + np.repeat(starts, counts)
        return row_ids, self.indices[flat]

    def mask_known(self, scores: np.ndarray, heads: np.ndarray,
                   rels: np.ndarray, keep: np.ndarray | None = None,
                   value: float = -np.inf) -> np.ndarray:
        """Scatter ``value`` into every known-true cell of a score batch.

        ``scores`` is ``(B, E)`` and is modified in place (and returned).
        ``keep`` optionally names one entity per row whose cell is left
        untouched — the filtered-ranking convention of masking every true
        answer *except* the query's own target.  The serving layer uses
        this (with ``keep=None``) to drop already-known triples from
        top-k predictions.
        """
        row_ids, entity_ids = self.gather(np.asarray(heads), np.asarray(rels))
        if keep is not None:
            keep = np.asarray(keep, dtype=np.int64)
            mask = entity_ids != keep[row_ids]
            row_ids, entity_ids = row_ids[mask], entity_ids[mask]
        scores[row_ids, entity_ids] = value
        return scores

    def row(self, head: int, rel: int) -> np.ndarray:
        """True tails of a single query (convenience / debugging)."""
        starts, ends = self.lookup(np.array([head]), np.array([rel]))
        return self.indices[int(starts[0]):int(ends[0])]

    def append_rows(self, triples: np.ndarray, *, num_relations: int,
                    num_entities: int) -> "CSRFilter":
        """A new filter additionally covering ``triples`` (both directions).

        The structure is frozen, so streaming appends build a fresh one:
        the existing ``(code, value)`` pairs are reconstructed from the
        CSR arrays, the new triples contribute ``(h, r) -> t`` and
        ``(t, r + num_relations) -> h`` exactly like
        :func:`build_csr_filter`, and the union is re-packed through the
        shared :func:`repro.graph.pack_csr_rows` pass (which also
        de-duplicates already-known cells).  ``num_entities`` must be
        the *post-append* entity count so appended ids pack correctly.
        """
        if 2 * num_relations != self.code_mult:
            raise ValueError(
                f"filter was built with code_mult={self.code_mult}, not "
                f"2 * {num_relations}; relation count cannot change")
        triples = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        if len(triples) == 0:
            return self
        counts = np.diff(self.indptr)
        old_codes = np.repeat(self.keys, counts)
        h, r, t = triples[:, 0], triples[:, 1], triples[:, 2]
        codes = np.concatenate([
            old_codes, h * self.code_mult + r,
            t * self.code_mult + (r + num_relations)])
        values = np.concatenate([self.indices, t, h])
        keys, indptr, indices = pack_csr_rows(codes, values, num_entities)
        return CSRFilter(keys=keys, indptr=indptr, indices=indices,
                         code_mult=self.code_mult)


def build_csr_filter(split: KGSplit,
                     parts: tuple[str, ...] = ("train", "valid", "test")) -> CSRFilter:
    """Build the full filtered-ranking CSR structure in one vectorized pass.

    Both query directions are covered: every triple ``(h, r, t)``
    contributes ``(h, r) -> t`` and ``(t, r + num_relations) -> h``.
    Duplicate ``(query, tail)`` pairs across partitions collapse via the
    sorted de-duplication step, so scatters touch each cell once.
    """
    num_relations = split.num_relations
    code_mult = 2 * num_relations
    blocks = [np.asarray(getattr(split, part)) for part in parts]
    blocks = [b.reshape(-1, 3) for b in blocks if len(b)]
    if not blocks:
        empty = np.empty(0, dtype=np.int64)
        return CSRFilter(keys=empty, indptr=np.zeros(1, dtype=np.int64),
                         indices=empty.copy(), code_mult=code_mult)
    triples = np.concatenate(blocks).astype(np.int64, copy=False)
    h, r, t = triples[:, 0], triples[:, 1], triples[:, 2]
    codes = np.concatenate([h * code_mult + r, t * code_mult + (r + num_relations)])
    values = np.concatenate([t, h])
    # The sort/de-dup/group pass (including the fused-int64-key fast
    # path) is the shared CSR packer from the graph substrate.
    keys, indptr, indices = pack_csr_rows(codes, values, split.num_entities)
    return CSRFilter(keys=keys, indptr=indptr, indices=indices,
                     code_mult=code_mult)


class RankingEvaluator:
    """Filtered-ranking evaluation with a construct-once CSR filter.

    Parameters
    ----------
    split:
        Dataset partition; the filter covers ``parts`` of it (both query
        directions, inverse relations included).
    parts:
        Which partitions feed the filter.  The standard protocol filters
        against train+valid+test.
    batch_size:
        Default number of queries scored per ``predict_tails`` call.
    score_dtype:
        Dtype score matrices are ranked in.  ``np.float64`` (default)
        is bit-for-bit identical to the reference implementation;
        ``np.float32`` halves the memory traffic of the ranking pass —
        the inference fast path used by large-scale runs.
    """

    def __init__(self, split: KGSplit,
                 parts: tuple[str, ...] = ("train", "valid", "test"),
                 batch_size: int = 128,
                 score_dtype: np.dtype | type = np.float64) -> None:
        self.split = split
        self.num_relations = split.num_relations
        self.batch_size = batch_size
        self.score_dtype = np.dtype(score_dtype)
        self.filter = build_csr_filter(split, parts)

    # ------------------------------------------------------------------
    # Core batched ranking
    # ------------------------------------------------------------------
    def rank_scores(self, scores: np.ndarray, heads: np.ndarray,
                    rels: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Filtered mean-ranks of ``targets`` within a ``(B, E)`` score batch.

        The batch is ranked with no per-row loop and no score-matrix
        copy: the greater/equal tie counts are computed over the *raw*
        scores with two batched reductions, then corrected by
        subtracting the contribution of every known-true cell (gathered
        through the CSR rows — a few entries per query).  That equals
        the reference semantics of scattering ``-inf`` into a copied
        row before counting, because a ``-inf`` cell contributes to
        neither count, while costing O(nnz) instead of O(B*E) extra
        work.  (Sole divergence: a target whose own score is ``-inf``,
        which no finite scorer produces.)  The mean-rank tie convention
        is ``1 + #greater + #equal / 2``; the target's own cell is a
        known-true triple, so its ``equal`` contribution is subtracted
        like any other filtered cell.
        """
        scores = np.asarray(scores)
        if scores.dtype != self.score_dtype:
            scores = scores.astype(self.score_dtype)
        batch = len(scores)
        targets = np.asarray(targets, dtype=np.int64)
        target_scores = scores[np.arange(batch), targets][:, None]
        greater = (scores > target_scores).sum(axis=1)
        equal = (scores == target_scores).sum(axis=1)
        row_ids, entity_ids = self.filter.gather(np.asarray(heads), np.asarray(rels))
        filtered_scores = scores[row_ids, entity_ids]
        filtered_targets = target_scores[row_ids, 0]
        greater -= np.bincount(row_ids[filtered_scores > filtered_targets],
                               minlength=batch)
        equal -= np.bincount(row_ids[filtered_scores == filtered_targets],
                             minlength=batch)
        return 1.0 + greater + equal / 2.0

    # ------------------------------------------------------------------
    # Query-set evaluation
    # ------------------------------------------------------------------
    def _ranks_for_queries(self, model, queries: np.ndarray, targets: np.ndarray,
                           batch_size: int) -> np.ndarray:
        ranks = np.zeros(len(queries))
        for start in range(0, len(queries), batch_size):
            q = queries[start:start + batch_size]
            tgt = targets[start:start + batch_size]
            with trace("eval.batch", size=len(q)):
                scores = model.predict_tails(q[:, 0], q[:, 1])
                ranks[start:start + len(q)] = self.rank_scores(
                    scores, q[:, 0], q[:, 1], tgt)
        return ranks

    def compute_ranks(self, model, triples: np.ndarray,
                      max_queries: int | None = None,
                      rng: np.random.Generator | None = None,
                      batch_size: int | None = None,
                      both_directions: bool = True) -> np.ndarray:
        """Filtered ranks for ``triples`` (tail side, plus head side via inverses)."""
        if max_queries is not None and len(triples) > max_queries:
            gen = rng if rng is not None else np.random.default_rng(0)
            triples = triples[gen.choice(len(triples), max_queries, replace=False)]
        size = batch_size if batch_size is not None else self.batch_size
        tail_queries = triples[:, [0, 1]]
        ranks = [self._ranks_for_queries(model, tail_queries, triples[:, 2], size)]
        if both_directions:
            head_queries = np.stack(
                [triples[:, 2], triples[:, 1] + self.num_relations], axis=1)
            ranks.append(self._ranks_for_queries(model, head_queries,
                                                 triples[:, 0], size))
        return np.concatenate(ranks)

    def evaluate(self, model, part: str = "test",
                 max_queries: int | None = None,
                 rng: np.random.Generator | None = None,
                 batch_size: int | None = None,
                 both_directions: bool = True) -> RankingMetrics:
        """Filtered MR / MRR / Hits@{1,3,10} on a split partition."""
        triples = {"train": self.split.train, "valid": self.split.valid,
                   "test": self.split.test}[part]
        with trace("eval.evaluate", part=part):
            ranks = self.compute_ranks(model, triples, max_queries=max_queries,
                                       rng=rng, batch_size=batch_size,
                                       both_directions=both_directions)
            return RankingMetrics.from_ranks(ranks)
