"""``repro.eval`` — filtered link-prediction evaluation.

MR / MRR / Hits metrics (:mod:`repro.eval.metrics`), the vectorized
construct-once evaluator (:mod:`repro.eval.evaluator`), the filtered
ranking protocol over both query directions (:mod:`repro.eval.ranking`),
and per-relation-family breakdowns (:mod:`repro.eval.per_relation`).
"""

from .evaluator import CSRFilter, RankingEvaluator, build_csr_filter
from .inductive import (
    InductiveReport,
    InductiveSplit,
    UnseenEntity,
    evaluate_inductive,
    make_unseen_split,
)
from .metrics import RankingMetrics
from .per_relation import (
    evaluate_per_relation_family,
    family_of_triples,
    family_triple_counts,
)
from .ranking import (
    TailScorer,
    build_filter,
    compute_ranks,
    compute_ranks_reference,
    evaluate_ranking,
)

__all__ = [
    "CSRFilter",
    "RankingEvaluator",
    "RankingMetrics",
    "TailScorer",
    "build_csr_filter",
    "build_filter",
    "compute_ranks",
    "compute_ranks_reference",
    "evaluate_ranking",
    "evaluate_per_relation_family",
    "family_of_triples",
    "family_triple_counts",
    "InductiveReport",
    "InductiveSplit",
    "UnseenEntity",
    "evaluate_inductive",
    "make_unseen_split",
]
