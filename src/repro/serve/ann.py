"""Couples an :class:`repro.ann.IVFIndex` to a loaded model for serving.

The index alone only answers "which entities live near this query
vector under the index metric".  Serving needs more:

* the **query transform** — the model maps ``(h, r)`` to a vector in
  entity-table layout (:meth:`EmbeddingModel.ann_queries`);
* the **exact rerank** — probed candidates are re-scored through the
  model's real scoring function (``score_cells``), so the returned
  top-k carries exactly the scores the exact path would have produced
  for those entities.  Approximation can therefore only *miss* a true
  top-k entity (recall), never mis-score or mis-order the candidates it
  does return;
* **artifact versioning** — the payload embedded in checkpoint bundles
  carries its own format version so old readers fail loudly instead of
  deserialising garbage.

:func:`supports_ann` is the single capability gate: a model qualifies
iff it declares ``ann_metric`` and implements both ``ann_queries`` and
``score_cells``.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..ann import IVFIndex
from ..obs import trace

__all__ = ["ANN_FORMAT_VERSION", "AnnError", "AnnServing", "resolve_ann_policy",
           "supports_ann"]

logger = logging.getLogger("repro.serve.ann")

#: Version of the (meta, arrays) payload embedded in bundles.  Bump when
#: the layout changes; readers reject newer versions explicitly.
ANN_FORMAT_VERSION = 1


class AnnError(RuntimeError):
    """ANN serving misconfiguration (unsupported model, payload mismatch)."""


def supports_ann(model) -> bool:
    """Whether ``model`` can serve approximate top-k queries."""
    return (getattr(model, "ann_metric", None) is not None
            and callable(getattr(model, "ann_queries", None))
            and callable(getattr(model, "score_cells", None)))


@dataclass
class AnnServing:
    """An IVF index validated against (and queried through) one model."""

    index: IVFIndex
    build_seconds: float = 0.0
    source: str = "built"  # "built" | "bundle"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, model, *, nlist: int | None = None,
              nprobe: int | None = None, store: str = "int8",
              seed: int = 0) -> "AnnServing":
        """Train an index over ``model``'s entity table.

        Raises :class:`AnnError` for models without the ANN hooks —
        callers that want a soft failure should gate on
        :func:`supports_ann` first.
        """
        if not supports_ann(model):
            raise AnnError(
                f"{type(model).__name__} does not support ANN candidate "
                "generation (needs ann_metric + ann_queries + score_cells); "
                "serve it through the exact path instead")
        tick = time.perf_counter()
        with trace("serve.ann_build", model=type(model).__name__):
            index = IVFIndex.build(model.ann_vectors(), metric=model.ann_metric,
                                   nlist=nlist, nprobe=nprobe, store=store,
                                   seed=seed)
        elapsed = time.perf_counter() - tick
        logger.info(
            "built IVF index: %d vectors, nlist=%d, nprobe=%d, store=%s, "
            "metric=%s in %.1f ms", index.num_vectors, index.nlist,
            index.default_nprobe, index.store, index.metric, 1e3 * elapsed)
        return cls(index=index, build_seconds=elapsed, source="built")

    def validate_for(self, model, num_entities: int) -> None:
        """Fail fast when an index does not match the engine's model."""
        if not supports_ann(model):
            raise AnnError(
                f"cannot attach an ANN index to {type(model).__name__}: "
                "model has no ANN hooks")
        if self.index.metric != model.ann_metric:
            raise AnnError(
                f"index metric {self.index.metric!r} does not match model "
                f"metric {model.ann_metric!r}")
        if self.index.num_vectors > num_entities:
            raise AnnError(
                f"index covers {self.index.num_vectors} entities but the "
                f"bundle has only {num_entities}")
        # Fewer indexed rows than entities is a *stale prefix*, which is
        # legal: streaming appends add rows at the end of the entity
        # table, and the engine serves unindexed rows through the exact
        # path until the rebuild-threshold policy refreshes the index.
        dim = np.shape(model.ann_vectors())[1]
        if self.index.dim != dim:
            raise AnnError(
                f"index dim {self.index.dim} does not match entity table "
                f"dim {dim}")

    def stale_rows(self, num_entities: int) -> int:
        """Entity rows appended after this index was built (0 = fresh)."""
        return max(0, int(num_entities) - int(self.index.num_vectors))

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def candidates(self, model, heads: np.ndarray, rels: np.ndarray,
                   nprobe: int | None = None) -> list[np.ndarray]:
        """Probed candidate entity ids for a ``(h, r)`` query batch."""
        queries = model.ann_queries(np.asarray(heads, np.int64),
                                    np.asarray(rels, np.int64))
        return self.index.probe(queries, nprobe)

    # ------------------------------------------------------------------
    # Bundle payload
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        meta, arrays = self.index.to_arrays()
        meta["format_version"] = ANN_FORMAT_VERSION
        return meta, arrays

    @classmethod
    def from_payload(cls, meta: dict[str, Any],
                     arrays: dict[str, np.ndarray]) -> "AnnServing":
        version = meta.get("format_version")
        if version != ANN_FORMAT_VERSION:
            raise AnnError(
                f"unsupported ANN artifact format_version {version!r} "
                f"(this build reads version {ANN_FORMAT_VERSION})")
        try:
            index = IVFIndex.from_arrays(meta, arrays)
        except KeyError as exc:
            raise AnnError(f"malformed ANN artifact: {exc.args[0]}") from None
        return cls(index=index, source="bundle")

    def stats(self) -> dict[str, Any]:
        memory = self.index.memory()
        return {
            "source": self.source,
            "metric": self.index.metric,
            "store": self.index.store,
            "nlist": self.index.nlist,
            "default_nprobe": self.index.default_nprobe,
            "num_vectors": self.index.num_vectors,
            "dim": self.index.dim,
            "table_bytes": memory["table_bytes"],
            "table_ratio_vs_float64": round(memory["table_ratio_vs_float64"], 4),
        }


def resolve_ann_policy(bundle, model, ann: str = "auto") -> "AnnServing | None":
    """Resolve the ``auto|off|require|build`` ANN policy for a loaded bundle.

    Shared by :meth:`repro.serve.PredictionEngine.from_bundle` and the
    pool server so both front ends attach (or refuse) an index under
    exactly the same rules:

    * ``"auto"`` — the bundle's precomputed index when present, else none;
    * ``"off"`` — never attach an index;
    * ``"require"`` — raise :class:`AnnError` unless the bundle ships one;
    * ``"build"`` — the bundled index, or train one now from the model's
      entity table (raises for unsupported models).
    """
    if ann not in ("auto", "off", "require", "build"):
        raise ValueError(f"ann must be auto|off|require|build, got {ann!r}")
    if ann == "off":
        return None
    payload = bundle.ann_payload()
    if payload is not None:
        serving = AnnServing.from_payload(*payload)
        logger.info("loaded bundled ANN index: nlist=%d, store=%s",
                    serving.index.nlist, serving.index.store)
        return serving
    if ann == "require":
        raise AnnError("bundle carries no ANN artifact")
    if ann == "build":
        return AnnServing.build(model)
    return None
