"""Command-line front end: ``python -m repro.serve <subcommand>``.

Subcommands::

    export  Train a registry model at a scale preset and write a bundle.
    query   Load a bundle and answer one top-k query from the shell.
    serve   Load a bundle and run the JSON HTTP service.
    append  Apply a streaming append (unseen entities + known triples)
            to a bundle offline and re-export it as bundle v3.
    inspect Print a bundle's manifest.

Example session (tiny DRKG-MM split)::

    python -m repro.serve export --model TransE --dataset drkg-mm \
        --scale smoke --out /tmp/transe.bundle
    python -m repro.serve query --bundle /tmp/transe.bundle \
        --head Compound-0 --relation CtD --k 5 --filter-known
    python -m repro.serve serve --bundle /tmp/transe.bundle --port 8080

``serve --pool N`` (N >= 1) runs the same bundle behind the
:mod:`repro.pool` tier instead: an async front end with admission
control dispatching to N forked replica workers.  ``--pool 0`` (the
default) is the original threaded in-process server, byte-for-byte.
"""

from __future__ import annotations

import argparse
import json
import logging

from .batcher import MicroBatcher
from .bundle import load_bundle, save_bundle
from .engine import PredictionEngine
from .http import make_server

__all__ = ["main"]

logger = logging.getLogger("repro.serve.cli")


def _cmd_export(args: argparse.Namespace) -> int:
    from ..baselines import get_spec
    from ..experiments import get_scale
    from ..experiments.runner import get_prepared, train_model
    from .ann import AnnServing, supports_ann

    get_spec(args.model)  # fail fast with the full name list
    scale = get_scale(args.scale)
    result = train_model(args.model, args.dataset, scale, seed=args.seed,
                         epochs=args.epochs)
    mkg, feats = get_prepared(args.dataset, scale, args.seed)
    ann = None
    if args.ann:
        if not supports_ann(result.model):
            raise SystemExit(
                f"--ann: {args.model} has no ANN hooks; export without --ann "
                "and serve it through the exact path")
        ann = AnnServing.build(result.model, nlist=args.ann_nlist,
                               nprobe=args.ann_nprobe, store=args.ann_store,
                               seed=args.seed)
    save_bundle(args.out, result.model, args.model, mkg.split, feats,
                dim=scale.model_dim,
                extra={"scale": scale.name, "seed": args.seed,
                       "test_metrics": result.test_metrics.as_row()},
                ann=ann)
    payload = {
        "bundle": args.out,
        "model": args.model,
        "dataset": args.dataset,
        "scale": scale.name,
        "test_mrr": round(result.test_metrics.mrr, 4),
    }
    if ann is not None:
        payload["ann"] = ann.stats()
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = PredictionEngine.from_bundle(
        args.bundle, ann="require" if args.approx else "auto")
    rel = engine.relations.resolve(args.relation)
    if (args.head is None) == (args.tail is None):
        raise SystemExit("provide exactly one of --head / --tail")
    if args.head is not None:
        anchor = engine.entities.resolve(args.head)
        ids, scores = engine.top_k_tails(anchor, rel, args.k,
                                         filter_known=args.filter_known,
                                         approx=args.approx,
                                         nprobe=args.nprobe)
        direction = "tail"
    else:
        anchor = engine.entities.resolve(args.tail)
        ids, scores = engine.top_k_heads(anchor, rel, args.k,
                                         filter_known=args.filter_known,
                                         approx=args.approx,
                                         nprobe=args.nprobe)
        direction = "head"
    payload = {
        "direction": direction,
        "anchor": engine.entities.name(anchor),
        "relation": engine.relations.name(rel),
        "filter_known": args.filter_known,
        "approx": bool(args.approx),
        "results": [
            {"id": int(i), "entity": engine.entities.name(int(i)),
             "score": float(s)}
            for i, s in zip(ids, scores)
        ],
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"{direction}-prediction for ({payload['anchor']}, "
              f"{payload['relation']}) [filter_known={args.filter_known}]")
        for rank, item in enumerate(payload["results"], start=1):
            print(f"  {rank:3d}. {item['entity']:<32s} {item['score']:.6f}")
    return 0


def _cmd_append(args: argparse.Namespace) -> int:
    """Offline append: grow a bundle's model/vocab/features on disk.

    Reads the same request JSON the ``POST /append`` route accepts,
    applies it through the inductive encoder, and re-exports the bundle
    (v3) with the delta journaled in the manifest's ``stream`` log.  A
    bundled ANN index is carried over as-is — its stale-prefix rows are
    served through the exact fallback until a rebuild.
    """
    import sys

    import numpy as np

    from ..stream import StreamError, apply_append_to_model
    from .ann import AnnServing

    bundle = load_bundle(args.bundle)
    model = bundle.build_model()
    if args.request == "-":
        body = json.load(sys.stdin)
    else:
        with open(args.request, encoding="utf-8") as handle:
            body = json.load(handle)
    try:
        delta, feats = apply_append_to_model(
            model, bundle.split, body, features=bundle.features,
            generation=bundle.stream_generation + 1, source="cli")
    except StreamError as exc:
        raise SystemExit(f"append rejected ({exc.code}): {exc.message}")
    ann = None
    payload = bundle.ann_payload()
    if payload is not None:
        ann = AnnServing.from_payload(*payload)
        if args.rebuild_ann:
            ann = AnnServing.build(model, nlist=ann.index.nlist,
                                   nprobe=ann.index.default_nprobe,
                                   store=ann.index.store)
    appended = np.concatenate(
        [bundle.appended, delta.triples]) if len(delta.triples) \
        else bundle.appended
    stream = {"generation": delta.generation,
              "log": bundle.stream_log + [delta.log_entry()]}
    out = args.out or args.bundle
    save_bundle(out, model, bundle.model_name, bundle.split, feats,
                dim=bundle.dim, extra=bundle.manifest.get("extra"),
                ann=ann, appended=appended, stream=stream)
    print(json.dumps({
        "bundle": out,
        "applied": delta.log_entry(),
        "stream_generation": delta.generation,
        "num_entities": int(bundle.split.num_entities),
        "ann": None if ann is None else
        {"num_vectors": ann.index.num_vectors,
         "stale_rows": ann.stale_rows(bundle.split.num_entities)},
    }, indent=2))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.trace:
        from ..obs import enable_tracing

        enable_tracing(args.trace)
        worker_files = f" (+ {args.trace}.w<rank> per pool worker)" if args.pool > 0 else ""
        print(f"tracing spans to {args.trace}{worker_files}\n"
              f"  summarize: python -m repro.obs report {args.trace}"
              f"{' ' + args.trace + '.w*' if args.pool > 0 else ''}\n"
              f"  drill into one request: python -m repro.obs report "
              f"--trace <X-Trace-Id> <files>")
    if args.pool > 0:
        from ..pool import PoolConfig, run_pool

        config = PoolConfig(
            workers=args.pool,
            max_queue_depth=args.max_queue_depth,
            rate_limit=args.rate_limit,
            rate_burst=args.rate_burst,
            default_timeout=args.default_timeout_ms / 1e3,
            drain_timeout=args.drain_timeout,
            cache_size=args.cache_size,
            approx_default=args.approx_default,
        )
        return run_pool(
            args.bundle, config, host=args.host, port=args.port, ann=args.ann,
            on_started=lambda server: print(
                f"pool serving {server.model_name} on "
                f"http://{server.host}:{server.port} with "
                f"{config.workers} workers (SIGTERM drains gracefully)"))
    engine = PredictionEngine.from_bundle(args.bundle,
                                          cache_size=args.cache_size,
                                          ann=args.ann,
                                          approx_default=args.approx_default)
    if engine.ann is not None:
        recall = engine.ann_self_check()
        print(f"ann: {engine.ann.index.nlist} lists, default nprobe "
              f"{engine.ann.index.default_nprobe}, self-check recall@10 "
              f"{recall:.3f}")
    batcher = MicroBatcher(engine, max_batch=args.max_batch,
                           max_delay=args.max_delay_ms / 1e3)
    server = make_server(engine, batcher, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving {engine.model_name} on http://{host}:{port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.shutdown()
        server.server_close()
        batcher.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.serve",
                                     description=__doc__)
    parser.add_argument("--log-level", default="info",
                        choices=["debug", "info", "warning", "error"],
                        help="level for the repro.serve loggers")
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser("export", help="train a model and write a bundle")
    export.add_argument("--model", required=True, help="registry model name")
    export.add_argument("--dataset", default="drkg-mm")
    export.add_argument("--scale", default="smoke",
                        help="scale preset: smoke | small | paper")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--epochs", type=int, default=None,
                        help="override the preset's epoch budget")
    export.add_argument("--out", required=True,
                        help="bundle path (dir, or *.npz for single-file)")
    export.add_argument("--ann", action="store_true",
                        help="embed a precomputed IVF ANN index in the bundle")
    export.add_argument("--ann-nlist", type=int, default=None,
                        help="IVF list count (default: round(sqrt(entities)))")
    export.add_argument("--ann-nprobe", type=int, default=None,
                        help="default probe count (default: ceil(nlist/4))")
    export.add_argument("--ann-store", default="int8",
                        choices=["int8", "float16", "float32", "float64"],
                        help="quantization of the stored entity table")
    export.set_defaults(func=_cmd_export)

    query = sub.add_parser("query", help="answer one top-k query from a bundle")
    query.add_argument("--bundle", required=True)
    query.add_argument("--head", help="head entity (name or id) for tail prediction")
    query.add_argument("--tail", help="tail entity (name or id) for head prediction")
    query.add_argument("--relation", required=True)
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--filter-known", action="store_true",
                       help="drop tails already present in train/valid/test")
    query.add_argument("--json", action="store_true", help="machine-readable output")
    query.add_argument("--approx", action="store_true",
                       help="use the bundle's ANN index (requires one)")
    query.add_argument("--nprobe", type=int, default=None,
                       help="IVF lists to probe (default: index setting)")
    query.set_defaults(func=_cmd_query)

    serve = sub.add_parser(
        "serve", help="run the JSON HTTP service (Prometheus text on /metrics)")
    serve.add_argument("--bundle", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--max-delay-ms", type=float, default=2.0)
    serve.add_argument("--cache-size", type=int, default=512)
    serve.add_argument("--trace", metavar="FILE", default=None,
                       help="write request/predict spans to this JSONL file "
                            "(with --pool N, each worker also writes "
                            "FILE.w<rank>; stitch them with "
                            "`python -m repro.obs report FILE FILE.w*`)")
    serve.add_argument("--ann", default="auto",
                       choices=["auto", "off", "require", "build"],
                       help="ANN index policy: auto uses a bundled index when "
                            "present, build trains one at startup")
    serve.add_argument("--approx-default", action="store_true",
                       help="serve /predict approximately unless a request "
                            "opts out")
    serve.add_argument("--pool", type=int, default=0, metavar="N",
                       help="serve from N forked replica workers behind an "
                            "async front end with admission control (0 = "
                            "the in-process threaded server, the default)")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="pool: per-endpoint admitted-request watermark "
                            "before shedding with 429 + Retry-After")
    serve.add_argument("--rate-limit", type=float, default=0.0,
                       help="pool: per-client requests/second token-bucket "
                            "rate (0 disables rate limiting)")
    serve.add_argument("--rate-burst", type=int, default=16,
                       help="pool: token-bucket burst capacity per client")
    serve.add_argument("--default-timeout-ms", type=float, default=30_000.0,
                       help="pool: deadline for requests without their own "
                            "deadline_ms field")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="pool: seconds a graceful shutdown waits for "
                            "in-flight requests")
    serve.set_defaults(func=_cmd_serve)

    append = sub.add_parser(
        "append", help="apply a streaming append to a bundle offline (v3)")
    append.add_argument("--bundle", required=True,
                        help="bundle to grow (dir or *.npz)")
    append.add_argument("--request", required=True,
                        help="append request JSON file ('-' reads stdin): "
                             "{'entities': [{'name', 'type'?, 'description'?, "
                             "'molecule'?}], 'triples': [[h, r, t], ...]}")
    append.add_argument("--out", default=None,
                        help="output bundle path (default: rewrite in place)")
    append.add_argument("--rebuild-ann", action="store_true",
                        help="retrain a bundled ANN index over the grown "
                             "entity table instead of carrying the stale one")
    append.set_defaults(func=_cmd_append)

    inspect = sub.add_parser("inspect", help="print a bundle's manifest")
    inspect.add_argument("--bundle", required=True)
    inspect.set_defaults(func=_cmd_inspect)
    return parser


def _cmd_inspect(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle)
    manifest = dict(bundle.manifest)
    manifest["state_keys"] = {
        name: meta for name, meta in sorted(manifest.get("state_keys", {}).items())
    }
    print(json.dumps(manifest, indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    logging.getLogger("repro.serve").setLevel(getattr(logging, args.log_level.upper()))
    return args.func(args)
