"""Batched link-prediction engine over a loaded registry model.

Wraps any model exposing ``predict_tails(heads, rels) -> (B, E)`` with
the query API the serving front ends need:

* ``top_k_tails(h, r, k)`` / ``top_k_heads(t, r, k)`` — head-side
  queries rank through the inverse-relation convention
  (``r + num_relations``), exactly as the evaluator does;
* ``score_triples(triples)`` — served from cached score rows when one
  is resident; cache misses use the model's direct per-cell path
  (``score_cells``) when it has one, so scoring ``B`` explicit triples
  costs ``O(B * d)`` instead of ``B`` full ``(1, E)`` rows (models
  without a direct path fall back to row scoring);
* optional known-triple filtering through the evaluator's CSR filter
  (``CSRFilter.mask_known``), built once per engine;
* an LRU cache of per-``(h, r)`` score rows with hit/miss/eviction
  counters — repeated queries for a hot ``(head, relation)`` pair never
  touch the model twice;
* an optional **approximate fast path** (``top_k_tails(...,
  approx=True)``): an attached :class:`repro.serve.ann.AnnServing`
  (IVF index over the entity table, usually loaded cold from the
  bundle) generates ``nprobe``-controlled candidates that are reranked
  through the model's exact ``score_cells`` — sublinear in the entity
  count, with scores identical to the exact path for every returned
  entity.  Requests fall back to the exact path (and a fallback
  counter) when no index is attached or the model lacks the hooks.

All model calls run inside ``inference_mode`` (autograd off, dropout and
batch-norm in eval mode).  The engine is thread-safe: the HTTP front end
scores from handler threads while the micro-batcher drives it from its
worker thread.

Every counter lives on a :class:`repro.obs.MetricsRegistry` (one per
engine unless the caller shares one), so the ``/stats`` JSON and the
Prometheus ``/metrics`` exposition read the *same* values — the legacy
``cache_hits`` / ``predict_seconds`` attributes are read-through
properties over the registry, and increments are safe under concurrent
``MicroBatcher`` / HTTP-handler access.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict

import numpy as np

from ..eval.evaluator import CSRFilter, build_csr_filter
from ..kg import KGSplit, Vocabulary
from ..nn import inference_mode
from ..obs import MetricsRegistry, current_span, exponential_buckets, trace
from .ann import AnnError, AnnServing, supports_ann

__all__ = ["PredictionEngine", "topk_indices"]

#: Rerank-set / probe-count histogram bounds (candidates per query).
_CANDIDATE_BUCKETS = exponential_buckets(1, 4, 10)

logger = logging.getLogger("repro.serve.engine")


def topk_indices(row: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best scores, ties broken by ascending id.

    Deterministic: equal scores always rank lower ids first, so serving
    results are reproducible across processes.  ``-inf`` cells (filtered
    known triples) are excluded even if fewer than ``k`` finite scores
    remain.
    """
    finite = int(np.sum(row > -np.inf))
    k = min(k, len(row), finite)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    part = np.argpartition(-row, k - 1)[:k]
    order = np.lexsort((part, -row[part]))
    return part[order].astype(np.int64)


class PredictionEngine:
    """Query API + score-row LRU cache around one loaded model."""

    def __init__(self, model, split: KGSplit, *, model_name: str = "model",
                 cache_size: int = 512,
                 filter_parts: tuple[str, ...] = ("train", "valid", "test"),
                 registry: MetricsRegistry | None = None,
                 ann: AnnServing | None = None,
                 approx_default: bool = False,
                 bundle_version: int | None = None) -> None:
        self.model = model
        self.model_name = model_name
        self.bundle_version = bundle_version
        self.split = split
        self.num_entities = split.num_entities
        self.num_relations = split.num_relations
        self.entities: Vocabulary = split.graph.entities
        self.relations: Vocabulary = split.graph.relations
        self.cache_size = int(cache_size)
        self.filter_parts = filter_parts
        self._filter: CSRFilter | None = None
        #: Triples known to the engine but absent from the split parts
        #: (streaming appends); folded in when the filter is lazily built.
        self._extra_filter_triples: list[np.ndarray] = []
        #: Bumped whenever the known-triple filter changes; cached score
        #: rows from an older epoch were already dropped by the matching
        #: ``invalidate`` call, so readers can assert freshness cheaply.
        self.filter_epoch = 0
        #: Streaming delta-log generation this engine has applied.
        self.stream_generation = 0
        self._cache: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        if ann is not None:
            ann.validate_for(model, self.num_entities)
        self.ann = ann
        self.ann_rebuild_threshold: float | None = None
        self.approx_default = bool(approx_default)
        self.metrics = registry if registry is not None else MetricsRegistry()
        cache_result = self.metrics.counter(
            "serve_cache_lookups_total",
            "score-row LRU cache lookups by result", labels=("result",))
        self._m_hits = cache_result.labels(result="hit")
        self._m_misses = cache_result.labels(result="miss")
        self._m_evictions = self.metrics.counter(
            "serve_cache_evictions_total", "score rows evicted from the LRU")
        self._m_queries = self.metrics.counter(
            "serve_queries_total", "(head, relation) score rows served")
        self._m_predict_calls = self.metrics.counter(
            "serve_predict_calls_total", "batched model predict_tails calls")
        self._m_predict_seconds = self.metrics.histogram(
            "serve_predict_seconds", "model predict_tails call latency")
        self._g_cache_entries = self.metrics.gauge(
            "serve_cache_entries", "score rows currently cached")
        self._g_cache_hit_rate = self.metrics.gauge(
            "serve_cache_hit_rate", "lifetime hits / lookups of the row cache")
        self._m_cell_calls = self.metrics.counter(
            "serve_cell_score_calls_total",
            "direct per-cell scoring calls (score_triples fast path)")
        self._m_cells_scored = self.metrics.counter(
            "serve_cells_scored_total",
            "(h, r, t) cells scored through the direct path")
        self._m_cell_seconds = self.metrics.histogram(
            "serve_cell_score_seconds", "direct per-cell scoring latency")
        self._m_ann_queries = self.metrics.counter(
            "serve_ann_queries_total", "top-k queries answered by the ANN path")
        self._m_ann_fallbacks = self.metrics.counter(
            "serve_ann_fallbacks_total",
            "approx requests served exactly (no index / unsupported model)")
        self._m_ann_probed = self.metrics.histogram(
            "serve_ann_probed_lists", "inverted lists probed per ANN query",
            buckets=_CANDIDATE_BUCKETS)
        self._m_ann_rerank = self.metrics.histogram(
            "serve_ann_rerank_candidates",
            "candidates exactly reranked per ANN query",
            buckets=_CANDIDATE_BUCKETS)
        self._g_ann_recall = self.metrics.gauge(
            "serve_ann_recall_check",
            "recall@k of the ANN path vs the exact path (last self-check)")
        self._g_ann_stale = self.metrics.gauge(
            "ann_stale_rows",
            "entity rows appended after the attached ANN index was built")
        self._m_invalidations = self.metrics.counter(
            "serve_cache_invalidations_total",
            "score rows dropped by explicit cache invalidation")
        self._m_ann_rebuilds = self.metrics.counter(
            "serve_ann_rebuilds_total",
            "ANN index rebuilds triggered by the staleness threshold")
        self._refresh_ann_staleness()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_bundle(cls, path: str, strict: bool = True, ann: str = "auto",
                    **kwargs) -> "PredictionEngine":
        """Load a checkpoint bundle and wrap its model in an engine.

        ``ann`` controls the approximate-serving index:

        * ``"auto"`` (default) — attach the bundle's precomputed index
          when one is present, otherwise serve exactly;
        * ``"off"`` — ignore any bundled index;
        * ``"require"`` — raise :class:`AnnError` unless the bundle
          ships an index;
        * ``"build"`` — use the bundled index, or train one now from the
          loaded model's entity table (raises for unsupported models).
        """
        from .ann import resolve_ann_policy
        from .bundle import load_bundle

        bundle = load_bundle(path, strict=strict)
        model = bundle.build_model(strict=strict)
        serving = resolve_ann_policy(bundle, model, ann)
        logger.info("loaded bundle %s (model=%s, entities=%d, relations=%d)",
                    path, bundle.model_name, bundle.split.num_entities,
                    bundle.split.num_relations)
        engine = cls(model, bundle.split, model_name=bundle.model_name,
                     ann=serving,
                     bundle_version=bundle.manifest.get("format_version"),
                     **kwargs)
        if len(bundle.appended):
            # v3 streaming appends: part of the known graph (and filter)
            # without belonging to any train/valid/test part.
            engine.append_filter_rows(bundle.appended)
        engine.stream_generation = bundle.stream_generation
        return engine

    @property
    def filter(self) -> CSRFilter:
        """Known-triple CSR filter, built lazily on first filtered query."""
        if self._filter is None:
            tick = time.perf_counter()
            built = build_csr_filter(self.split, self.filter_parts)
            for triples in self._extra_filter_triples:
                built = built.append_rows(triples,
                                          num_relations=self.num_relations,
                                          num_entities=self.num_entities)
            self._filter = built
            logger.info("built CSR filter: %d known cells in %.1f ms",
                        self._filter.nnz, 1e3 * (time.perf_counter() - tick))
        return self._filter

    # ------------------------------------------------------------------
    # Streaming mutation hooks
    # ------------------------------------------------------------------
    def _invalidate_unlocked(self, keys) -> int:
        if keys is None:
            dropped = len(self._cache)
            self._cache.clear()
        else:
            dropped = 0
            for key in keys:
                if self._cache.pop((int(key[0]), int(key[1])), None) is not None:
                    dropped += 1
        self._g_cache_entries.set(len(self._cache))
        return dropped

    def _fold_filter_unlocked(self, triples: np.ndarray) -> None:
        if self._filter is None:
            self._extra_filter_triples.append(triples)
        else:
            self._filter = self._filter.append_rows(
                triples, num_relations=self.num_relations,
                num_entities=self.num_entities)
        self.filter_epoch += 1

    def invalidate(self, keys=None) -> int:
        """Drop cached score rows; returns the number of rows dropped.

        ``keys=None`` clears the whole cache (required whenever the
        entity count changes: resident rows have the old width).  With
        an iterable of ``(head, rel)`` pairs only those rows are
        dropped — the cheap path when a mutation touched a handful of
        ``(h, r)`` filter cells but left the entity table alone.
        """
        with self._lock:
            dropped = self._invalidate_unlocked(keys)
        if dropped:
            self._m_invalidations.inc(dropped)
        return dropped

    def append_filter_rows(self, triples: np.ndarray) -> None:
        """Fold appended known triples into the filter and stamp an epoch.

        New cells only *add* ``-inf`` masks, so cached score rows stay
        correct for ranking but would stop matching filtered queries —
        callers pair this with :meth:`invalidate` on the touched keys
        (the streaming applier does).  When the filter has not been
        built yet the triples are stashed for the lazy build instead of
        forcing construction now.
        """
        triples = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        if len(triples) == 0:
            return
        with self._lock:
            self._fold_filter_unlocked(triples)

    def adopt_append(self, grow, num_new_entities: int, triples: np.ndarray,
                     touched_keys=()) -> None:
        """Atomically adopt one streaming append.

        ``grow`` is a thunk that mutates the model/vocabulary (row
        growth happens *under the scoring lock*, so no concurrent
        ``scores`` call can mix old- and new-width rows).  Afterwards
        the entity count is bumped, the score cache is cleared (or only
        ``touched_keys`` dropped when no entities were added), the
        appended known triples are folded into the CSR filter, and the
        ANN staleness gauge / rebuild policy are refreshed.

        Pre-existing predictions stay bit-identical: every model scores
        candidate columns independently, so extra rows never perturb
        old cells.
        """
        triples = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        with self._lock:
            grow()
            self.num_entities = int(self.num_entities) + int(num_new_entities)
            dropped = self._invalidate_unlocked(
                None if num_new_entities else touched_keys)
            if len(triples):
                self._fold_filter_unlocked(triples)
        if dropped:
            self._m_invalidations.inc(dropped)
        self._refresh_ann_staleness()
        self.maybe_rebuild_ann()

    # ------------------------------------------------------------------
    # Score rows (cached)
    # ------------------------------------------------------------------
    def scores(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        """``(B, E)`` candidate scores, served from the row cache.

        Uncached ``(h, r)`` pairs are deduplicated and scored in a single
        ``predict_tails`` call; every returned row is a copy, so callers
        may scatter ``-inf`` into it freely.
        """
        heads = np.asarray(heads, dtype=np.int64).reshape(-1)
        rels = np.asarray(rels, dtype=np.int64).reshape(-1)
        keys = [(int(h), int(r)) for h, r in zip(heads, rels)]
        with self._lock:
            # Snapshot every needed row into a local map first: inserting
            # freshly-computed rows can evict keys that were cache hits a
            # moment ago, so assembly must never read through the cache.
            rows: dict[tuple[int, int], np.ndarray] = {}
            missing: list[tuple[int, int]] = []
            for key in dict.fromkeys(keys):
                cached = self._cache.get(key)
                if cached is not None:
                    rows[key] = cached
                    self._cache.move_to_end(key)
                else:
                    missing.append(key)
            if missing:
                tick = time.perf_counter()
                mh = np.array([k[0] for k in missing], dtype=np.int64)
                mr = np.array([k[1] for k in missing], dtype=np.int64)
                with trace("serve.predict", rows=len(missing)):
                    with inference_mode(self.model):
                        fresh = np.asarray(self.model.predict_tails(mh, mr))
                elapsed = time.perf_counter() - tick
                self._m_predict_calls.inc()
                self._m_predict_seconds.observe(elapsed)
                for i, key in enumerate(missing):
                    # copy: a cached row must not pin the whole batch
                    # array alive after its siblings are evicted
                    rows[key] = fresh[i].copy()
                    if self.cache_size > 0:
                        self._insert_row(key, rows[key])
                logger.debug("scored %d/%d uncached rows in %.1f ms",
                             len(missing), len(keys), 1e3 * elapsed)
            # A duplicate of a just-computed key counts as a hit: only the
            # first occurrence paid for the model call.
            unpaid = set(missing)
            out = np.empty((len(keys), self.num_entities))
            hits = 0
            for i, key in enumerate(keys):
                out[i] = rows[key]
                if key in unpaid:
                    unpaid.discard(key)
                else:
                    hits += 1
            self._record_lookups(hits, len(keys) - hits)
            self._m_queries.inc(len(keys))
            # Request-scoped: hangs cache behaviour off whichever span is
            # active (serve.request directly, serve.batch when batched).
            span = current_span()
            span.set_attr("cache_hits", hits)
            span.set_attr("cache_misses", len(keys) - hits)
        return out

    def _insert_row(self, key: tuple[int, int], row: np.ndarray) -> None:
        """Cache a row (lock held); evictions keep the entries gauge live."""
        self._cache[key] = row
        evicted = 0
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            evicted += 1
        if evicted:
            self._m_evictions.inc(evicted)
        self._g_cache_entries.set(len(self._cache))

    def _record_lookups(self, hits: int, misses: int) -> None:
        """Bump hit/miss counters and refresh the derived hit-rate gauge."""
        if hits:
            self._m_hits.inc(hits)
        if misses:
            self._m_misses.inc(misses)
        lookups = self._m_hits.value + self._m_misses.value
        if lookups:
            self._g_cache_hit_rate.set(self._m_hits.value / lookups)

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def top_k_tails(self, head: int, rel: int, k: int = 10,
                    filter_known: bool = False, approx: bool | None = None,
                    nprobe: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Best ``k`` tail candidates for ``(head, rel, ?)``.

        Returns ``(entity_ids, scores)`` sorted by descending score (ties
        by ascending id).  ``rel`` may be an inverse id (``>= num_relations``)
        for head-side queries.  With ``filter_known=True`` every tail
        already present in the bundled train/valid/test triples is
        removed from the candidates before ranking.

        ``approx=True`` routes through the attached ANN index (candidate
        probing + exact rerank; ``nprobe`` overrides the index default);
        ``approx=None`` follows the engine's ``approx_default``.  With
        ``approx=False`` (or no usable index — counted as a fallback)
        the result is bit-identical to the pre-ANN exact path.
        """
        if approx is None:
            approx = self.approx_default
        if approx:
            if self.ann is not None and supports_ann(self.model):
                return self._top_k_approx(head, rel, k, filter_known, nprobe)
            self._m_ann_fallbacks.inc()
        row = self.scores([head], [rel])[0]
        if filter_known:
            self.filter.mask_known(row[None], np.array([head]), np.array([rel]))
        ids = topk_indices(row, k)
        return ids, row[ids]

    def _top_k_approx(self, head: int, rel: int, k: int, filter_known: bool,
                      nprobe: int | None) -> tuple[np.ndarray, np.ndarray]:
        """IVF candidate generation + exact rerank for one query."""
        index = self.ann.index
        probed = index.default_nprobe if nprobe is None else max(1, min(int(nprobe), index.nlist))
        request_span = current_span()  # serve.request (ANN skips the batcher)
        request_span.set_attr("ann_nprobe", probed)
        with trace("serve.ann_search", nprobe=probed, k=k):
            cands = self.ann.candidates(self.model, [head], [rel], probed)[0]
            if index.num_vectors < self.num_entities:
                # Stale-prefix degradation: rows appended after the index
                # was built are always exact-reranked candidates, so a
                # stale index can never silently hide a new entity.
                cands = np.concatenate([
                    np.asarray(cands, dtype=np.int64),
                    np.arange(index.num_vectors, self.num_entities,
                              dtype=np.int64)])
            if filter_known and len(cands):
                known = self.filter.row(head, rel)
                if len(known):
                    cands = cands[~np.isin(cands, known)]
            self._m_ann_probed.observe(probed)
            self._m_ann_rerank.observe(len(cands))
            request_span.set_attr("ann_rerank", int(len(cands)))
            self._m_ann_queries.inc()
            self._m_queries.inc()
            if len(cands) == 0:
                return np.empty(0, dtype=np.int64), np.empty(0)
            fill = np.full(len(cands), 0, dtype=np.int64)
            scores = np.asarray(self.model.score_cells(
                fill + int(head), fill + int(rel), cands))
            k = min(int(k), len(cands))
            if k <= 0:
                return np.empty(0, dtype=np.int64), np.empty(0)
            part = np.argpartition(-scores, k - 1)[:k]
            order = np.lexsort((cands[part], -scores[part]))
            sel = part[order]
            return cands[sel].astype(np.int64), scores[sel]

    def top_k_heads(self, tail: int, rel: int, k: int = 10,
                    filter_known: bool = False, approx: bool | None = None,
                    nprobe: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Best ``k`` head candidates for ``(?, rel, tail)``.

        Ranks through the inverse relation ``rel + num_relations`` — the
        same convention the evaluator uses for head-side ranking.
        """
        if not 0 <= rel < self.num_relations:
            raise ValueError(
                f"top_k_heads expects an original relation id in "
                f"[0, {self.num_relations}); got {rel}"
            )
        return self.top_k_tails(tail, rel + self.num_relations, k,
                                filter_known=filter_known, approx=approx,
                                nprobe=nprobe)

    def score_triples(self, triples: np.ndarray) -> np.ndarray:
        """Scores for explicit ``(h, r, t)`` rows.

        Rows already resident in the LRU cache are gathered from the
        cached ``(1, E)`` score row (consistent with any ranking that
        surfaced them).  Cache misses use the model's direct per-cell
        path (``score_cells``) when it has one — ``O(d)`` per triple
        instead of a full entity row — and never populate the row cache.
        The direct path evaluates the same scoring function in the same
        float64 arithmetic; for GEMM-based models the per-cell result
        may differ from the row path in the final ulp.  Models without
        ``score_cells`` keep the original row-scoring behaviour exactly.
        """
        triples = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        if len(triples) == 0:
            return np.empty(0)
        cell_fn = getattr(self.model, "score_cells", None)
        if cell_fn is None:
            scores = self.scores(triples[:, 0], triples[:, 1])
            return scores[np.arange(len(triples)), triples[:, 2]]
        with self._lock:
            out = np.empty(len(triples))
            missing: list[int] = []
            hits = 0
            for i, (h, r, t) in enumerate(triples.tolist()):
                row = self._cache.get((h, r))
                if row is not None:
                    self._cache.move_to_end((h, r))
                    out[i] = row[t]
                    hits += 1
                else:
                    missing.append(i)
            if missing:
                sub = triples[missing]
                tick = time.perf_counter()
                with trace("serve.score_cells", cells=len(missing)):
                    out[missing] = np.asarray(
                        cell_fn(sub[:, 0], sub[:, 1], sub[:, 2]))
                self._m_cell_seconds.observe(time.perf_counter() - tick)
                self._m_cell_calls.inc()
                self._m_cells_scored.inc(len(missing))
            self._record_lookups(hits, len(missing))
            span = current_span()
            span.set_attr("cache_hits", hits)
            span.set_attr("cache_misses", len(missing))
        return out

    # ------------------------------------------------------------------
    # ANN management
    # ------------------------------------------------------------------
    def attach_ann(self, ann: AnnServing, approx_default: bool | None = None,
                   rebuild_threshold: float | None = None) -> None:
        """Attach (and validate) an ANN index after construction.

        ``rebuild_threshold`` sets the staleness policy for streaming
        appends: when the fraction of entity rows *not* covered by the
        index (``ann_stale_rows / num_entities``) exceeds the threshold,
        the index is rebuilt from the live entity table with the same
        ``nlist`` / ``nprobe`` / quantization settings.  Below the
        threshold stale rows are served through the exact-rerank
        fallback (they are appended to every probe's candidate set), so
        approximate serving degrades gracefully — recall on old rows is
        unchanged and new rows are always visible — at ``O(stale)``
        extra rerank cost per query.  ``None`` (default) never rebuilds
        automatically.
        """
        ann.validate_for(self.model, self.num_entities)
        self.ann = ann
        if approx_default is not None:
            self.approx_default = bool(approx_default)
        if rebuild_threshold is not None:
            if not 0.0 < rebuild_threshold <= 1.0:
                raise ValueError(
                    f"rebuild_threshold must be in (0, 1], got {rebuild_threshold}")
            self.ann_rebuild_threshold = float(rebuild_threshold)
        self._refresh_ann_staleness()
        self.maybe_rebuild_ann()

    def _refresh_ann_staleness(self) -> int:
        """Recompute the ``ann_stale_rows`` gauge; returns the stale count."""
        stale = self.ann.stale_rows(self.num_entities) if self.ann is not None else 0
        self._g_ann_stale.set(stale)
        return stale

    def maybe_rebuild_ann(self) -> bool:
        """Apply the ``rebuild_threshold`` policy; True when rebuilt."""
        if self.ann is None or self.ann_rebuild_threshold is None:
            return False
        stale = self.ann.stale_rows(self.num_entities)
        if stale == 0 or stale / self.num_entities <= self.ann_rebuild_threshold:
            return False
        index = self.ann.index
        self.ann = AnnServing.build(
            self.model, nlist=index.nlist, nprobe=index.default_nprobe,
            store=index.store)
        self._m_ann_rebuilds.inc()
        self._refresh_ann_staleness()
        logger.info("rebuilt ANN index after %d stale rows crossed the "
                    "%.2f threshold", stale, self.ann_rebuild_threshold)
        return True

    def ann_self_check(self, num_queries: int = 32, k: int = 10,
                       nprobe: int | None = None, seed: int = 0) -> float:
        """Measured recall@k of the ANN path against the exact path.

        Samples ``num_queries`` seeded ``(head, relation)`` pairs,
        compares approximate and exact top-k id sets, stores the mean
        recall on the ``serve_ann_recall_check`` gauge, and returns it.
        The exact rows are computed directly on the model so the serving
        row cache is neither consulted nor polluted.
        """
        if self.ann is None:
            raise AnnError("no ANN index attached to this engine")
        rng = np.random.default_rng(seed)
        heads = rng.integers(0, self.num_entities, size=num_queries)
        rels = rng.integers(0, 2 * self.num_relations, size=num_queries)
        with inference_mode(self.model):
            rows = np.asarray(self.model.predict_tails(heads, rels))
        recalls = []
        for head, rel, row in zip(heads, rels, rows):
            exact = set(topk_indices(row, k).tolist())
            if not exact:
                continue
            ids, _ = self._top_k_approx(int(head), int(rel), k, False, nprobe)
            recalls.append(len(exact & set(ids.tolist())) / len(exact))
        recall = float(np.mean(recalls)) if recalls else 0.0
        self._g_ann_recall.set(recall)
        logger.info("ANN self-check: recall@%d = %.4f over %d queries "
                    "(nprobe=%s)", k, recall, num_queries,
                    nprobe if nprobe is not None else "default")
        return recall

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    # Legacy counter attributes read through the registry, so existing
    # callers (tests, dashboards) keep working after the migration.
    @property
    def cache_hits(self) -> int:
        return int(self._m_hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._m_misses.value)

    @property
    def cache_evictions(self) -> int:
        return int(self._m_evictions.value)

    @property
    def queries_served(self) -> int:
        return int(self._m_queries.value)

    @property
    def predict_calls(self) -> int:
        return int(self._m_predict_calls.value)

    @property
    def predict_seconds(self) -> float:
        return float(self._m_predict_seconds.sum)

    def stats(self) -> dict:
        """Counters for ``/stats`` and the instrumentation logger."""
        lookups = self.cache_hits + self.cache_misses
        ann: dict | None = None
        if self.ann is not None:
            reranked = self._m_ann_rerank
            ann = dict(self.ann.stats())
            ann.update({
                "approx_default": self.approx_default,
                "queries": int(self._m_ann_queries.value),
                "fallbacks": int(self._m_ann_fallbacks.value),
                "mean_rerank_candidates": round(reranked.mean, 3),
                "recall_check": round(float(self._g_ann_recall.value), 4),
                "stale_rows": self.ann.stale_rows(self.num_entities),
                "rebuild_threshold": self.ann_rebuild_threshold,
                "rebuilds": int(self._m_ann_rebuilds.value),
            })
        return {
            "model": self.model_name,
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "queries_served": self.queries_served,
            "predict_calls": self.predict_calls,
            "predict_seconds": round(self.predict_seconds, 6),
            "cell_score_calls": int(self._m_cell_calls.value),
            "cells_scored": int(self._m_cells_scored.value),
            "cache": {
                "capacity": self.cache_size,
                "size": len(self._cache),
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "lookups": lookups,
                "hit_rate": round(self.cache_hits / lookups, 4) if lookups else 0.0,
            },
            "ann": ann,
            "filter_built": self._filter is not None,
            "filter_epoch": self.filter_epoch,
            "stream_generation": self.stream_generation,
            "cache_invalidations": int(self._m_invalidations.value),
        }
