"""Batched link-prediction engine over a loaded registry model.

Wraps any model exposing ``predict_tails(heads, rels) -> (B, E)`` with
the query API the serving front ends need:

* ``top_k_tails(h, r, k)`` / ``top_k_heads(t, r, k)`` — head-side
  queries rank through the inverse-relation convention
  (``r + num_relations``), exactly as the evaluator does;
* ``score_triples(triples)`` — scores gathered from the same
  ``predict_tails`` rows, so single-triple scores are always consistent
  with the rankings that surface them;
* optional known-triple filtering through the evaluator's CSR filter
  (``CSRFilter.mask_known``), built once per engine;
* an LRU cache of per-``(h, r)`` score rows with hit/miss/eviction
  counters — repeated queries for a hot ``(head, relation)`` pair never
  touch the model twice.

All model calls run inside ``inference_mode`` (autograd off, dropout and
batch-norm in eval mode).  The engine is thread-safe: the HTTP front end
scores from handler threads while the micro-batcher drives it from its
worker thread.

Every counter lives on a :class:`repro.obs.MetricsRegistry` (one per
engine unless the caller shares one), so the ``/stats`` JSON and the
Prometheus ``/metrics`` exposition read the *same* values — the legacy
``cache_hits`` / ``predict_seconds`` attributes are read-through
properties over the registry, and increments are safe under concurrent
``MicroBatcher`` / HTTP-handler access.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict

import numpy as np

from ..eval.evaluator import CSRFilter, build_csr_filter
from ..kg import KGSplit, Vocabulary
from ..nn import inference_mode
from ..obs import MetricsRegistry, trace

__all__ = ["PredictionEngine", "topk_indices"]

logger = logging.getLogger("repro.serve.engine")


def topk_indices(row: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best scores, ties broken by ascending id.

    Deterministic: equal scores always rank lower ids first, so serving
    results are reproducible across processes.  ``-inf`` cells (filtered
    known triples) are excluded even if fewer than ``k`` finite scores
    remain.
    """
    finite = int(np.sum(row > -np.inf))
    k = min(k, len(row), finite)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    part = np.argpartition(-row, k - 1)[:k]
    order = np.lexsort((part, -row[part]))
    return part[order].astype(np.int64)


class PredictionEngine:
    """Query API + score-row LRU cache around one loaded model."""

    def __init__(self, model, split: KGSplit, *, model_name: str = "model",
                 cache_size: int = 512,
                 filter_parts: tuple[str, ...] = ("train", "valid", "test"),
                 registry: MetricsRegistry | None = None) -> None:
        self.model = model
        self.model_name = model_name
        self.split = split
        self.num_entities = split.num_entities
        self.num_relations = split.num_relations
        self.entities: Vocabulary = split.graph.entities
        self.relations: Vocabulary = split.graph.relations
        self.cache_size = int(cache_size)
        self.filter_parts = filter_parts
        self._filter: CSRFilter | None = None
        self._cache: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self.metrics = registry if registry is not None else MetricsRegistry()
        cache_result = self.metrics.counter(
            "serve_cache_lookups_total",
            "score-row LRU cache lookups by result", labels=("result",))
        self._m_hits = cache_result.labels(result="hit")
        self._m_misses = cache_result.labels(result="miss")
        self._m_evictions = self.metrics.counter(
            "serve_cache_evictions_total", "score rows evicted from the LRU")
        self._m_queries = self.metrics.counter(
            "serve_queries_total", "(head, relation) score rows served")
        self._m_predict_calls = self.metrics.counter(
            "serve_predict_calls_total", "batched model predict_tails calls")
        self._m_predict_seconds = self.metrics.histogram(
            "serve_predict_seconds", "model predict_tails call latency")
        self._g_cache_entries = self.metrics.gauge(
            "serve_cache_entries", "score rows currently cached")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_bundle(cls, path: str, strict: bool = True,
                    **kwargs) -> "PredictionEngine":
        """Load a checkpoint bundle and wrap its model in an engine."""
        from .bundle import load_bundle

        bundle = load_bundle(path, strict=strict)
        model = bundle.build_model(strict=strict)
        logger.info("loaded bundle %s (model=%s, entities=%d, relations=%d)",
                    path, bundle.model_name, bundle.split.num_entities,
                    bundle.split.num_relations)
        return cls(model, bundle.split, model_name=bundle.model_name, **kwargs)

    @property
    def filter(self) -> CSRFilter:
        """Known-triple CSR filter, built lazily on first filtered query."""
        if self._filter is None:
            tick = time.perf_counter()
            self._filter = build_csr_filter(self.split, self.filter_parts)
            logger.info("built CSR filter: %d known cells in %.1f ms",
                        self._filter.nnz, 1e3 * (time.perf_counter() - tick))
        return self._filter

    # ------------------------------------------------------------------
    # Score rows (cached)
    # ------------------------------------------------------------------
    def scores(self, heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        """``(B, E)`` candidate scores, served from the row cache.

        Uncached ``(h, r)`` pairs are deduplicated and scored in a single
        ``predict_tails`` call; every returned row is a copy, so callers
        may scatter ``-inf`` into it freely.
        """
        heads = np.asarray(heads, dtype=np.int64).reshape(-1)
        rels = np.asarray(rels, dtype=np.int64).reshape(-1)
        keys = [(int(h), int(r)) for h, r in zip(heads, rels)]
        with self._lock:
            # Snapshot every needed row into a local map first: inserting
            # freshly-computed rows can evict keys that were cache hits a
            # moment ago, so assembly must never read through the cache.
            rows: dict[tuple[int, int], np.ndarray] = {}
            missing: list[tuple[int, int]] = []
            for key in dict.fromkeys(keys):
                cached = self._cache.get(key)
                if cached is not None:
                    rows[key] = cached
                    self._cache.move_to_end(key)
                else:
                    missing.append(key)
            if missing:
                tick = time.perf_counter()
                mh = np.array([k[0] for k in missing], dtype=np.int64)
                mr = np.array([k[1] for k in missing], dtype=np.int64)
                with trace("serve.predict", rows=len(missing)):
                    with inference_mode(self.model):
                        fresh = np.asarray(self.model.predict_tails(mh, mr))
                elapsed = time.perf_counter() - tick
                self._m_predict_calls.inc()
                self._m_predict_seconds.observe(elapsed)
                for i, key in enumerate(missing):
                    # copy: a cached row must not pin the whole batch
                    # array alive after its siblings are evicted
                    rows[key] = fresh[i].copy()
                    if self.cache_size > 0:
                        self._cache[key] = rows[key]
                        while len(self._cache) > self.cache_size:
                            self._cache.popitem(last=False)
                            self._m_evictions.inc()
                logger.debug("scored %d/%d uncached rows in %.1f ms",
                             len(missing), len(keys), 1e3 * elapsed)
            # A duplicate of a just-computed key counts as a hit: only the
            # first occurrence paid for the model call.
            unpaid = set(missing)
            out = np.empty((len(keys), self.num_entities))
            hits = 0
            for i, key in enumerate(keys):
                out[i] = rows[key]
                if key in unpaid:
                    unpaid.discard(key)
                else:
                    hits += 1
            self._m_hits.inc(hits)
            self._m_misses.inc(len(keys) - hits)
            self._m_queries.inc(len(keys))
            self._g_cache_entries.set(len(self._cache))
        return out

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def top_k_tails(self, head: int, rel: int, k: int = 10,
                    filter_known: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Best ``k`` tail candidates for ``(head, rel, ?)``.

        Returns ``(entity_ids, scores)`` sorted by descending score (ties
        by ascending id).  ``rel`` may be an inverse id (``>= num_relations``)
        for head-side queries.  With ``filter_known=True`` every tail
        already present in the bundled train/valid/test triples is
        removed from the candidates before ranking.
        """
        row = self.scores([head], [rel])[0]
        if filter_known:
            self.filter.mask_known(row[None], np.array([head]), np.array([rel]))
        ids = topk_indices(row, k)
        return ids, row[ids]

    def top_k_heads(self, tail: int, rel: int, k: int = 10,
                    filter_known: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Best ``k`` head candidates for ``(?, rel, tail)``.

        Ranks through the inverse relation ``rel + num_relations`` — the
        same convention the evaluator uses for head-side ranking.
        """
        if not 0 <= rel < self.num_relations:
            raise ValueError(
                f"top_k_heads expects an original relation id in "
                f"[0, {self.num_relations}); got {rel}"
            )
        return self.top_k_tails(tail, rel + self.num_relations, k,
                                filter_known=filter_known)

    def score_triples(self, triples: np.ndarray) -> np.ndarray:
        """Scores for explicit ``(h, r, t)`` rows (consistent with top-k)."""
        triples = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        if len(triples) == 0:
            return np.empty(0)
        scores = self.scores(triples[:, 0], triples[:, 1])
        return scores[np.arange(len(triples)), triples[:, 2]]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    # Legacy counter attributes read through the registry, so existing
    # callers (tests, dashboards) keep working after the migration.
    @property
    def cache_hits(self) -> int:
        return int(self._m_hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._m_misses.value)

    @property
    def cache_evictions(self) -> int:
        return int(self._m_evictions.value)

    @property
    def queries_served(self) -> int:
        return int(self._m_queries.value)

    @property
    def predict_calls(self) -> int:
        return int(self._m_predict_calls.value)

    @property
    def predict_seconds(self) -> float:
        return float(self._m_predict_seconds.sum)

    def stats(self) -> dict:
        """Counters for ``/stats`` and the instrumentation logger."""
        lookups = self.cache_hits + self.cache_misses
        return {
            "model": self.model_name,
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "queries_served": self.queries_served,
            "predict_calls": self.predict_calls,
            "predict_seconds": round(self.predict_seconds, 6),
            "cache": {
                "capacity": self.cache_size,
                "size": len(self._cache),
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "hit_rate": round(self.cache_hits / lookups, 4) if lookups else 0.0,
            },
            "filter_built": self._filter is not None,
        }
