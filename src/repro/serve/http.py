"""Stdlib JSON HTTP front end for the prediction engine.

No third-party dependencies: a ``ThreadingHTTPServer`` dispatches to one
:class:`ServiceApp` shared by every handler thread.  Routes:

* ``GET  /healthz`` — liveness, uptime, package version, model identity;
* ``GET  /stats``   — server / engine / batcher counters (JSON);
* ``GET  /metrics`` — the same counters in Prometheus text exposition
  format (scrapeable; rendered from the engine's ``MetricsRegistry``);
* ``POST /predict`` — top-k tail or head prediction (micro-batched;
  optional ``"approx"`` / ``"nprobe"`` fields route through the engine's
  ANN index instead, bypassing the batcher);
* ``POST /score``   — explicit triple scoring;
* ``POST /append``  — streaming append (:mod:`repro.stream`): register
  unseen entities from their modalities plus known triples; the engine
  adopts them atomically and they become rankable immediately.

Every error is a JSON envelope ``{"error": {"code", "message"}}`` with
a matching HTTP status, so clients never have to parse HTML tracebacks.
Entities and relations may be referred to by name or by integer id;
unknown names come back with close-match suggestions.

Request counts, error counts and latency live on the engine's
:class:`repro.obs.MetricsRegistry` as ``http_requests_total{route,code}``
and ``http_request_seconds``, so ``/stats`` and ``/metrics`` can never
disagree; a :class:`repro.obs.SLOTracker` derives sliding-window
latency-attainment and error-budget burn-rate gauges from the same
observations.  Each ``handle`` call runs under a ``serve.request`` span
when tracing is enabled: a client-supplied ``traceparent`` header is
honored as the span's parent, the response carries ``X-Trace-Id``, and
error envelopes echo the ``trace_id`` so a client-reported failure can
be joined against server-side spans.
"""

from __future__ import annotations

import json
import logging
import os
import time
from concurrent.futures import TimeoutError as _FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from .. import __version__
from ..obs import (SLOTracker, activate, current_context, parse_traceparent,
                   render_prometheus, trace)
from ..stream import StreamError, apply_append
from .ann import supports_ann
from .batcher import BatcherClosedError, MicroBatcher
from .engine import PredictionEngine

__all__ = ["ApiError", "MAX_BODY_BYTES", "MAX_TOP_K", "ServiceApp",
           "ServeHandler", "deadline_from_body", "make_server"]

logger = logging.getLogger("repro.serve.http")

MAX_BODY_BYTES = 1 << 20  # 1 MiB is plenty for any sane query payload

#: Upper bound on requested top-k: larger asks are a client bug (or an
#: attempt to exfiltrate the full ranking) and get a 400, not an
#: accidentally quadratic response payload.
MAX_TOP_K = 1000


class ApiError(Exception):
    """An error with a fixed HTTP status and JSON envelope code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


#: Backwards-compatible private alias (pre-pool name).
_ApiError = ApiError


def deadline_from_body(body) -> float | None:
    """Absolute ``time.monotonic()`` deadline from a ``deadline_ms`` field.

    Returns ``None`` when the body carries no ``deadline_ms``; raises
    :class:`ApiError` (400) on a malformed one.  Shared by the threaded
    server and the pool front end so both validate identically.
    ``CLOCK_MONOTONIC`` is system-wide on Linux, so the absolute value
    may cross process boundaries to pool workers.
    """
    if not isinstance(body, dict):
        return None
    raw = body.get("deadline_ms")
    if raw is None:
        return None
    if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw <= 0:
        raise ApiError(400, "bad_request",
                       f"'deadline_ms' must be a positive number, got {raw!r}")
    return time.monotonic() + float(raw) / 1e3


class ServiceApp:
    """Request validation + dispatch shared by all handler threads."""

    def __init__(self, engine: PredictionEngine,
                 batcher: MicroBatcher | None = None) -> None:
        self.engine = engine
        self.batcher = batcher
        self.started = time.time()
        self.metrics = engine.metrics
        self._m_requests = self.metrics.counter(
            "http_requests_total", "HTTP requests by route and status code",
            labels=("route", "code"))
        self._m_latency = self.metrics.histogram(
            "http_request_seconds", "HTTP request handling latency")
        #: Sliding-window latency/error SLO gauges, exposed on /metrics
        #: and /stats; scope="serve" keeps replica series distinct from
        #: the pool front-end's after registry merge.
        self.slo = SLOTracker(self.metrics, scope="serve")

    # Legacy scalar views over the labeled request counter.
    @property
    def requests(self) -> int:
        return int(self._m_requests.total())

    @property
    def errors(self) -> int:
        return int(sum(child.value for key, child in self._m_requests.children()
                       if int(key[1]) >= 400))

    @property
    def latency_seconds(self) -> float:
        return float(self._m_latency.sum)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body: dict | None,
               deadline: float | None = None,
               traceparent: str | None = None) -> tuple[int, dict | str]:
        """Dispatch one request; ``deadline`` is absolute ``monotonic``.

        A POST body may also carry its own ``deadline_ms``; the tighter
        of the two applies.  Work whose deadline has already passed is
        answered ``504 deadline_exceeded`` without touching the model,
        and a result that finishes late is discarded in favour of the
        504 (the client has already stopped waiting).
        """
        status, payload, _ = self.handle_traced(method, path, body,
                                                deadline=deadline,
                                                traceparent=traceparent)
        return status, payload

    def handle_traced(self, method: str, path: str, body: dict | None,
                      deadline: float | None = None,
                      traceparent: str | None = None,
                      ) -> tuple[int, dict | str, str | None]:
        """:meth:`handle` plus the request's ``trace_id`` (or None).

        An explicit ``traceparent`` (from an HTTP header) is adopted as
        the span's parent; an ambient context (the pool worker activates
        the envelope's context around this call) is honored implicitly
        by :func:`trace`.  When tracing is disabled and no context is
        supplied, this adds nothing to the request path.
        """
        if traceparent is None:
            return self._handle(method, path, body, deadline)
        with activate(parse_traceparent(traceparent)):
            return self._handle(method, path, body, deadline)

    def _handle(self, method: str, path: str, body: dict | None,
                deadline: float | None) -> tuple[int, dict | str, str | None]:
        tick = time.perf_counter()
        trace_id = None
        try:
            with trace("serve.request", method=method, route=path) as span:
                trace_id = span.trace_id
                if method == "POST":
                    own = deadline_from_body(body)
                    if own is not None:
                        deadline = own if deadline is None else min(deadline, own)
                if deadline is not None and time.monotonic() >= deadline:
                    raise ApiError(504, "deadline_exceeded",
                                   "deadline passed before processing began")
                if method == "GET" and path == "/healthz":
                    status, payload = 200, self._healthz()
                elif method == "GET" and path == "/stats":
                    status, payload = 200, self._stats()
                elif method == "GET" and path == "/metrics":
                    status, payload = 200, render_prometheus(self.metrics)
                elif method == "POST" and path == "/predict":
                    status, payload = 200, self._predict(body, deadline)
                elif method == "POST" and path == "/score":
                    status, payload = 200, self._score(body)
                elif method == "POST" and path == "/append":
                    status, payload = 200, self._append(body)
                else:
                    raise ApiError(404, "not_found",
                                   f"no route for {method} {path}")
                if deadline is not None:
                    span.set_attr("deadline_margin_ms", round(
                        1e3 * (deadline - time.monotonic()), 3))
                    if time.monotonic() > deadline:
                        raise ApiError(504, "deadline_exceeded",
                                       "deadline passed during scoring")
        except _ApiError as exc:
            status = exc.status
            payload = {"error": {"code": exc.code, "message": exc.message}}
        except Exception as exc:  # noqa: BLE001 - surface as a 500 envelope
            logger.exception("unhandled error for %s %s", method, path)
            status = 500
            payload = {"error": {"code": "internal", "message": str(exc)}}
        if trace_id is None:
            # Tracing disabled but a propagated context may be active
            # (pool worker adopting the front-end's envelope).
            ctx = current_context()
            if ctx is not None:
                trace_id = ctx.trace_id
        if (trace_id is not None and isinstance(payload, dict)
                and isinstance(payload.get("error"), dict)):
            payload["error"].setdefault("trace_id", trace_id)
        elapsed = time.perf_counter() - tick
        self._m_requests.labels(route=path, code=status).inc()
        self._m_latency.observe(elapsed)
        self.slo.observe(path, elapsed, status)
        logger.info("%s %s -> %d in %.1f ms", method, path, status, 1e3 * elapsed)
        return status, payload, trace_id

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _healthz(self) -> dict:
        engine = self.engine
        ann_info = {"supports_ann": supports_ann(engine.model),
                    "attached": engine.ann is not None}
        if engine.ann is not None:
            ann_info.update(engine.ann.stats())
        return {
            "status": "ok",
            "model": engine.model_name,
            "num_entities": engine.num_entities,
            "num_relations": engine.num_relations,
            "uptime_seconds": round(time.time() - self.started, 3),
            "version": __version__,
            "bundle": {"version": engine.bundle_version},
            "stream": {"generation": int(engine.stream_generation)},
            "ann": ann_info,
            "replicas": [{
                "rank": 0,
                "alive": True,
                "pid": os.getpid(),
                "mode": "thread",
                "inflight": 0,
                "requests": self.requests,
                "generation": 0,
            }],
        }

    def _stats(self) -> dict:
        # +1: the in-flight /stats request itself is only counted at
        # completion, but the response should include it (as before).
        requests = self.requests + 1
        server = {
            "requests": requests,
            "errors": self.errors,
            "mean_latency_ms": round(1e3 * self.latency_seconds / requests, 3)
            if requests else 0.0,
            "uptime_seconds": round(time.time() - self.started, 3),
        }
        return {
            "server": server,
            "engine": self.engine.stats(),
            "batcher": self.batcher.stats() if self.batcher else None,
            "slo": self.slo.stats(),
        }

    def _resolve(self, vocab, token, what: str) -> int:
        if token is None:
            raise _ApiError(400, "bad_request", f"missing required field {what!r}")
        try:
            return vocab.resolve(token)
        except (KeyError, IndexError) as exc:
            raise _ApiError(400, f"unknown_{what}", str(exc.args[0])) from None

    def _predict(self, body: dict | None,
                 deadline: float | None = None) -> dict:
        if not isinstance(body, dict):
            raise _ApiError(400, "bad_request", "JSON object body required")
        has_head = "head" in body
        has_tail = "tail" in body
        if has_head == has_tail:
            raise _ApiError(400, "bad_request",
                            "provide exactly one of 'head' (tail prediction) "
                            "or 'tail' (head prediction)")
        rel = self._resolve(self.engine.relations, body.get("relation"), "relation")
        anchor = self._resolve(self.engine.entities,
                               body.get("head") if has_head else body.get("tail"),
                               "entity")
        k = body.get("k", 10)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise _ApiError(400, "bad_request", f"'k' must be a positive int, got {k!r}")
        if k > MAX_TOP_K:
            raise _ApiError(400, "bad_request",
                            f"'k' must be <= {MAX_TOP_K}, got {k}")
        filter_known = body.get("filter_known", False)
        if not isinstance(filter_known, bool):
            raise _ApiError(400, "bad_request", "'filter_known' must be a bool")
        approx = body.get("approx", None)
        if approx is not None and not isinstance(approx, bool):
            raise _ApiError(400, "bad_request", "'approx' must be a bool")
        nprobe = body.get("nprobe", None)
        if nprobe is not None and (not isinstance(nprobe, int)
                                   or isinstance(nprobe, bool) or nprobe < 1):
            raise _ApiError(400, "bad_request",
                            f"'nprobe' must be a positive int, got {nprobe!r}")
        use_approx = self.engine.approx_default if approx is None else approx
        if use_approx and self.engine.ann is None:
            raise _ApiError(400, "ann_unavailable",
                            "this server has no ANN index; retry with "
                            "'approx': false or restart with --ann build")

        query_rel = rel if has_head else rel + self.engine.num_relations
        if use_approx or nprobe is not None:
            # Approximate requests skip the micro-batcher: the ANN path
            # neither reads nor fills the row cache, so there is nothing
            # to coalesce.
            ids, scores = self.engine.top_k_tails(anchor, query_rel, k,
                                                  filter_known=filter_known,
                                                  approx=use_approx,
                                                  nprobe=nprobe)
        elif self.batcher is not None:
            timeout = (30.0 if deadline is None
                       else max(0.0, deadline - time.monotonic()))
            try:
                ids, scores = self.batcher.predict(anchor, query_rel, k,
                                                   filter_known,
                                                   timeout=timeout)
            except BatcherClosedError as exc:
                raise ApiError(503, "shutting_down", str(exc)) from None
            except _FutureTimeout:
                raise ApiError(504, "deadline_exceeded",
                               "deadline passed while queued for the "
                               "micro-batcher") from None
        else:
            ids, scores = self.engine.top_k_tails(anchor, query_rel, k,
                                                  filter_known=filter_known)
        entities = self.engine.entities
        return {
            "query": {
                "direction": "tail" if has_head else "head",
                ("head" if has_head else "tail"): entities.name(anchor),
                "relation": self.engine.relations.name(rel),
                "k": k,
                "filter_known": filter_known,
                "approx": use_approx,
            },
            "results": [
                {"id": int(i), "entity": entities.name(int(i)), "score": float(s)}
                for i, s in zip(ids, scores)
            ],
        }

    def _append(self, body: dict | None) -> dict:
        """Apply one streaming append to the live engine.

        Validation failures surface as the standard JSON error envelope
        (400 for malformed requests / unknown references, 409 for name
        conflicts); success returns the applied delta-log entry so the
        client learns the assigned entity ids and generation.
        """
        try:
            delta = apply_append(self.engine, body, source="api")
        except StreamError as exc:
            raise _ApiError(exc.status, exc.code, exc.message) from None
        return {
            "applied": delta.log_entry(),
            "stream_generation": int(self.engine.stream_generation),
            "num_entities": int(self.engine.num_entities),
        }

    def _score(self, body: dict | None) -> dict:
        if not isinstance(body, dict) or not isinstance(body.get("triples"), list):
            raise _ApiError(400, "bad_request",
                            "body must be {'triples': [[head, relation, tail], ...]}")
        rows = body["triples"]
        resolved = np.empty((len(rows), 3), dtype=np.int64)
        for i, row in enumerate(rows):
            if not isinstance(row, (list, tuple)) or len(row) != 3:
                raise _ApiError(400, "bad_request",
                                f"triple #{i} must be [head, relation, tail]")
            resolved[i, 0] = self._resolve(self.engine.entities, row[0], "entity")
            resolved[i, 1] = self._resolve(self.engine.relations, row[1], "relation")
            resolved[i, 2] = self._resolve(self.engine.entities, row[2], "entity")
        scores = self.engine.score_triples(resolved)
        return {"scores": [float(s) for s in scores]}


class ServeHandler(BaseHTTPRequestHandler):
    """Thin HTTP plumbing; all logic lives in :class:`ServiceApp`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    # Headers and body leave as separate small sends (wfile is unbuffered);
    # without TCP_NODELAY, Nagle + delayed ACK stalls every keep-alive
    # response ~40ms.  Measured: 44ms/request -> sub-ms once disabled.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def _respond(self, status: int, payload: dict | str,
                 extra_headers: dict | None = None) -> None:
        if isinstance(payload, str):  # pre-rendered text (Prometheus /metrics)
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if extra_headers:
            for name, value in extra_headers.items():
                self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        if length > MAX_BODY_BYTES:
            raise _ApiError(413, "payload_too_large",
                            f"body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _ApiError(400, "bad_json", f"invalid JSON body: {exc}") from None

    def _dispatch(self, method: str) -> None:
        try:
            body = self._read_body() if method == "POST" else None
        except _ApiError as exc:
            self._respond(exc.status,
                          {"error": {"code": exc.code, "message": exc.message}})
            return
        status, payload, trace_id = self.server.app.handle_traced(
            method, self.path, body,
            traceparent=self.headers.get("traceparent"))
        self._respond(status, payload,
                      {"X-Trace-Id": trace_id} if trace_id else None)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")


def make_server(engine: PredictionEngine, batcher: MicroBatcher | None = None,
                host: str = "127.0.0.1", port: int = 0) -> ThreadingHTTPServer:
    """Build a ready-to-run threaded server (``port=0`` picks a free port).

    The caller owns the lifecycle: ``serve_forever()`` (often on a
    thread), then ``shutdown()`` + ``server_close()``, and finally
    ``batcher.close()`` if one was attached.
    """
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.app = ServiceApp(engine, batcher)
    logger.info("serving %s on http://%s:%d", engine.model_name,
                server.server_address[0], server.server_address[1])
    return server
