"""Micro-batching: coalesce concurrent single queries into batched calls.

Single top-k requests arriving from many HTTP handler threads are
individually cheap to enqueue but expensive to score one at a time — a
``predict_tails`` call amortises its fixed cost (embedding gathers,
chunk setup) over the whole batch.  :class:`MicroBatcher` runs one
worker thread that drains the request queue into batches bounded by
``max_batch`` requests and ``max_delay`` seconds of extra latency, runs
a single :meth:`PredictionEngine.scores` call per batch, and resolves
each request's future with its own top-k slice.

Shutdown is graceful and race-free: :meth:`close` flushes every request
already enqueued before the worker exits, and any request that loses the
race with ``close()`` — or is still queued when the worker stops — has
its future failed with :class:`BatcherClosedError` instead of hanging
forever (the HTTP layer maps that to a clean ``503``).  Waiter-side
future cancellation (a client that gave up) can never kill the worker
thread: result delivery tolerates already-settled futures.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field

import numpy as np

from ..obs import current_traceparent, get_tracer, trace
from .engine import PredictionEngine, topk_indices

__all__ = ["BatcherClosedError", "MicroBatcher"]

logger = logging.getLogger("repro.serve.batcher")

_SHUTDOWN = object()


class BatcherClosedError(RuntimeError):
    """The batcher is (or went) closed; the query was not scored."""


def _settle(future: Future, result=None, exc: BaseException | None = None) -> bool:
    """Resolve ``future`` if still possible; never raises.

    A waiter that timed out may have cancelled its future — delivering
    into it then raises :class:`InvalidStateError`, which previously
    killed the worker thread and hung every later request.
    """
    try:
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)
        return True
    except InvalidStateError:
        return False

#: Batch-size histogram bounds (requests per batch, powers of two).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class _Request:
    head: int
    rel: int
    k: int
    filter_known: bool
    future: Future = field(default_factory=Future)
    # Submitting request's trace context: the batch span runs on the
    # worker thread (its own trace), so coalesced requests are joined to
    # it by recording their trace ids as a span attribute instead.
    traceparent: str | None = None


class MicroBatcher:
    """Queue + worker thread turning single queries into batched ones."""

    def __init__(self, engine: PredictionEngine, max_batch: int = 64,
                 max_delay: float = 0.002) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        metrics = engine.metrics
        self._m_submitted = metrics.counter(
            "batcher_requests_submitted_total", "queries enqueued")
        self._m_processed = metrics.counter(
            "batcher_requests_processed_total", "queries resolved by the worker")
        self._m_batches = metrics.counter(
            "batcher_batches_total", "batches scored by the worker")
        self._m_batch_size = metrics.histogram(
            "batcher_batch_size", "requests coalesced per batch",
            buckets=_BATCH_SIZE_BUCKETS)
        self._g_max_batch = metrics.gauge(
            "batcher_max_batch_seen", "largest batch coalesced so far")
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._worker.start()

    # Legacy counter attributes read through the engine's registry.
    @property
    def requests_submitted(self) -> int:
        return int(self._m_submitted.value)

    @property
    def requests_processed(self) -> int:
        return int(self._m_processed.value)

    @property
    def batches_processed(self) -> int:
        return int(self._m_batches.value)

    @property
    def max_batch_seen(self) -> int:
        return int(self._g_max_batch.value)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, head: int, rel: int, k: int = 10,
               filter_known: bool = False) -> Future:
        """Enqueue one query; the future resolves to ``(ids, scores)``."""
        request = _Request(int(head), int(rel), int(k), bool(filter_known))
        if get_tracer().enabled:
            request.traceparent = current_traceparent()
        with self._lock:
            if self._closed:
                raise BatcherClosedError("MicroBatcher is closed")
            self._m_submitted.inc()
            self._queue.put(request)
        return request.future

    def predict(self, head: int, rel: int, k: int = 10,
                filter_known: bool = False,
                timeout: float | None = 30.0) -> tuple[np.ndarray, np.ndarray]:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(head, rel, k, filter_known).result(timeout=timeout)

    def close(self, timeout: float = 10.0) -> None:
        """Stop the worker after flushing every enqueued request.

        If the worker cannot flush in time (or already died), whatever is
        still queued is failed with :class:`BatcherClosedError` so no
        waiter blocks forever on a future nobody will resolve.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)
        self._fail_pending("MicroBatcher closed before this query was scored")
        if self._worker.is_alive():
            # The sweep may have eaten the sentinel a wedged worker never
            # saw; repost it so the worker still exits once unwedged.
            self._queue.put(_SHUTDOWN)
        logger.info("batcher closed: %d requests in %d batches (max batch %d)",
                    self.requests_processed, self.batches_processed,
                    self.max_batch_seen)

    def _fail_pending(self, message: str) -> None:
        """Fail every request still sitting in the queue (post-worker)."""
        failed = 0
        for request in self._drain():
            if _settle(request.future, exc=BatcherClosedError(message)):
                failed += 1
        if failed:
            logger.warning("failed %d unflushed batcher requests: %s",
                           failed, message)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _run(self) -> None:
        shutting_down = False
        try:
            while not shutting_down:
                item = self._queue.get()
                if item is _SHUTDOWN:
                    # Flush whatever raced in before close() flipped the flag.
                    shutting_down = True
                    batch = self._drain()
                else:
                    batch = [item]
                    deadline = time.monotonic() + self.max_delay
                    while len(batch) < self.max_batch:
                        remaining = deadline - time.monotonic()
                        try:
                            nxt = self._queue.get(timeout=max(0.0, remaining))
                        except queue.Empty:
                            break
                        if nxt is _SHUTDOWN:
                            shutting_down = True
                            batch.extend(self._drain())
                            break
                        batch.append(nxt)
                if batch:
                    self._process(batch)
        finally:
            # Whether the loop ended by shutdown or by an unexpected
            # error, nothing left behind may hang a waiter.
            self._fail_pending("MicroBatcher worker exited")

    def _drain(self) -> list[_Request]:
        drained: list[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return drained
            if item is not _SHUTDOWN:
                drained.append(item)

    def _process(self, batch: list[_Request]) -> None:
        heads = np.array([r.head for r in batch], dtype=np.int64)
        rels = np.array([r.rel for r in batch], dtype=np.int64)
        attrs = {"size": len(batch)}
        if get_tracer().enabled:
            links = [r.traceparent.split("-")[1] for r in batch
                     if r.traceparent]
            if links:
                attrs["trace_links"] = ",".join(links[:16])
        try:
            with trace("serve.batch", **attrs):
                scores = self.engine.scores(heads, rels)
                flagged = [i for i, r in enumerate(batch) if r.filter_known]
                if flagged:
                    # fancy indexing copies, so mask the copy and write it back
                    masked = self.engine.filter.mask_known(
                        scores[flagged], heads[flagged], rels[flagged])
                    scores[flagged] = masked
        except Exception as exc:  # engine failure fails every waiter, not the worker
            for request in batch:
                _settle(request.future, exc=exc)
            logger.exception("batch of %d requests failed", len(batch))
            return
        for i, request in enumerate(batch):
            ids = topk_indices(scores[i], request.k)
            _settle(request.future, (ids, scores[i][ids]))
        self._m_batches.inc()
        self._m_processed.inc(len(batch))
        self._m_batch_size.observe(len(batch))
        if len(batch) > self.max_batch_seen:
            self._g_max_batch.set(len(batch))
        logger.debug("processed batch of %d (lifetime mean %.2f)",
                     len(batch),
                     self.requests_processed / self.batches_processed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        batches = self.batches_processed
        return {
            "max_batch": self.max_batch,
            "max_delay_ms": round(1e3 * self.max_delay, 3),
            "requests_submitted": self.requests_submitted,
            "requests_processed": self.requests_processed,
            "batches_processed": batches,
            "mean_batch_size": round(self.requests_processed / batches, 3) if batches else 0.0,
            "max_batch_seen": self.max_batch_seen,
            "pending": self._queue.qsize(),
        }
