"""Self-describing checkpoint bundles for registry models.

``nn.serialize`` round-trips a bare state dict; a *bundle* additionally
carries everything required to stand the model back up in a fresh
process and answer queries against it:

* a JSON **manifest** — format version, model name, the registry-level
  embedding ``dim``, the full model config (for CamE), per-key state
  metadata, and free-form ``extra`` metadata (scale preset, metrics);
* the entity/relation **vocabularies** and entity types;
* the train/valid/test **split triples** (needed both to rebuild graph-
  dependent models such as CompGCN and to serve known-triple filtering);
* the fixed **modality feature** matrices the multimodal models embed;
* the **state dict** itself.

Two on-disk layouts are supported and auto-detected on load:

* a directory holding ``manifest.json`` / ``vocab.json`` / ``state.npz``
  / ``data.npz`` (easy to inspect and diff);
* a single ``.npz`` file with the JSON documents embedded as string
  arrays (easy to ship).

Format version 2 adds an *optional* approximate-serving artifact: a
precomputed IVF index + quantized entity table
(:class:`repro.serve.ann.AnnServing`), stored as ``ann.npz`` in the
directory layout / ``ann::``-prefixed arrays in the single-file layout,
described by an ``"ann"`` manifest section carrying its own format
version.  Version-1 bundles (no ``"ann"`` section) load unchanged.

Format version 3 adds *optional* streaming-append state
(:mod:`repro.stream`): a ``split::appended`` array of known triples
added after training (they join the graph and the known-triple filter
but no train/valid/test part), and a ``"stream"`` manifest section —
``{"generation": N, "log": [...]}`` — the monotonically versioned
delta log of every applied append
(:meth:`repro.stream.AppendDelta.log_entry`).  The appended entities'
vocabulary rows, feature rows, and embedding rows are saved in place in
the regular sections, so a v3 bundle is self-contained: loading it
reproduces the post-append serving state exactly.  Version-1/2 bundles
(no ``"stream"`` section) load unchanged.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core import CamE, CamEConfig
from ..datasets import ModalityFeatures, MultimodalKG
from ..kg import KGSplit, KnowledgeGraph, Vocabulary
from ..obs import trace

__all__ = ["BUNDLE_VERSION", "BundleError", "CheckpointBundle",
           "save_bundle", "load_bundle"]

BUNDLE_VERSION = 3

_MANIFEST = "manifest.json"
_VOCAB = "vocab.json"
_STATE = "state.npz"
_DATA = "data.npz"
_ANN = "ann.npz"


class BundleError(RuntimeError):
    """A bundle is malformed, incomplete, or from an unknown format version."""


def _is_single_file(path: str) -> bool:
    return path.endswith(".npz")


def _state_meta(state: dict[str, np.ndarray]) -> dict[str, dict[str, Any]]:
    return {name: {"shape": list(np.shape(arr)), "dtype": str(np.asarray(arr).dtype)}
            for name, arr in state.items()}


@dataclass
class CheckpointBundle:
    """A loaded bundle: manifest + vocab + split + features + state."""

    manifest: dict[str, Any]
    split: KGSplit
    features: ModalityFeatures
    state: dict[str, np.ndarray]
    ann_arrays: dict[str, np.ndarray] | None = None
    #: Known triples appended after training (v3 ``split::appended``);
    #: always a ``(n, 3)`` array, empty for v1/v2 bundles.
    appended: np.ndarray = dataclasses.field(
        default_factory=lambda: np.empty((0, 3), dtype=np.int64))

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def model_name(self) -> str:
        return self.manifest["model"]

    @property
    def dim(self) -> int:
        return int(self.manifest["dim"])

    @property
    def entities(self) -> Vocabulary:
        return self.split.graph.entities

    @property
    def relations(self) -> Vocabulary:
        return self.split.graph.relations

    def ann_payload(self) -> tuple[dict[str, Any], dict[str, np.ndarray]] | None:
        """The embedded ANN artifact as ``(meta, arrays)``, or ``None``.

        The caller (``AnnServing.from_payload``) owns format-version
        validation; this accessor only reunites the manifest section
        with its arrays.
        """
        meta = self.manifest.get("ann")
        if not meta or self.ann_arrays is None:
            return None
        return meta, self.ann_arrays

    @property
    def stream_generation(self) -> int:
        """Streaming delta-log generation (0 for pristine / v1-v2 bundles)."""
        return int(self.manifest.get("stream", {}).get("generation", 0))

    @property
    def stream_log(self) -> list[dict[str, Any]]:
        """The append delta log, oldest first (empty for v1-v2 bundles)."""
        return list(self.manifest.get("stream", {}).get("log", []))

    @property
    def train_report(self):
        """The embedded training history, or ``None`` for older bundles."""
        payload = self.manifest.get("train_report")
        if not payload:
            return None
        from ..train.report import TrainReport  # local import: train sits below serve

        return TrainReport.from_dict(payload)

    # ------------------------------------------------------------------
    # Model reconstruction
    # ------------------------------------------------------------------
    def build_model(self, strict: bool = True,
                    rng: np.random.Generator | None = None):
        """Rebuild the saved model and load its weights.

        The architecture is reconstructed through the model registry (or
        the saved :class:`CamEConfig` for CamE) from the bundled split
        and features, then ``load_state_dict(strict=...)`` restores the
        exact trained weights, so ``predict_tails`` reproduces the
        original model bit for bit.
        """
        from ..baselines import get_spec  # local import: avoid cycle at import time

        gen = rng if rng is not None else np.random.default_rng(0)
        mkg = MultimodalKG(split=self.split)
        config = self.manifest.get("config")
        if self.model_name == "CamE" and config:
            model = CamE(mkg.num_entities, mkg.num_relations, self.features,
                         CamEConfig(**config), rng=gen)
        else:
            spec = get_spec(self.model_name)
            model = spec.builder(mkg, self.features, self.dim, gen)
        try:
            model.load_state_dict(self.state, strict=strict)
        except KeyError as exc:
            raise BundleError(
                f"bundle state does not match a fresh {self.model_name!r}: "
                f"{exc.args[0]}"
            ) from None
        return model


def save_bundle(path: str, model, model_name: str, split: KGSplit,
                features: ModalityFeatures, dim: int,
                extra: dict[str, Any] | None = None,
                report=None, ann=None, appended: np.ndarray | None = None,
                stream: dict[str, Any] | None = None) -> str:
    """Write ``model`` (+ everything needed to rebuild it) to ``path``.

    ``path`` ending in ``.npz`` selects the single-file layout, anything
    else the directory layout.  ``report`` (a
    :class:`repro.train.TrainReport`) embeds the training history —
    losses, timings, eval metrics — in the manifest, recoverable via
    :attr:`CheckpointBundle.train_report`.  ``ann`` (an
    :class:`repro.serve.AnnServing`) embeds a precomputed IVF index +
    quantized entity table so servers can answer approximate top-k
    without rebuilding it on load.  ``appended`` (streaming appends,
    v3) stores known triples added after training as
    ``split::appended``; ``stream`` embeds the delta-log manifest
    section (``{"generation": N, "log": [...]}``).  Returns ``path``.
    """
    state = model.state_dict()
    config = None
    if dataclasses.is_dataclass(getattr(model, "config", None)):
        config = dataclasses.asdict(model.config)
    graph = split.graph
    manifest = {
        "format_version": BUNDLE_VERSION,
        "model": model_name,
        "dim": int(dim),
        "config": config,
        "dataset": {
            "name": graph.name,
            "num_entities": graph.num_entities,
            "num_relations": graph.num_relations,
            "num_train": int(len(split.train)),
            "num_valid": int(len(split.valid)),
            "num_test": int(len(split.test)),
        },
        "feature_dims": list(features.dims),
        "state_keys": _state_meta(state),
        "extra": extra or {},
        "train_report": report.to_dict() if report is not None else None,
    }
    if stream is not None:
        manifest["stream"] = {"generation": int(stream.get("generation", 0)),
                              "log": list(stream.get("log", []))}
    ann_arrays: dict[str, np.ndarray] = {}
    if ann is not None:
        ann_meta, ann_arrays = ann.to_payload()
        manifest["ann"] = ann_meta
    vocab = {
        "entities": graph.entities.names(),
        "relations": graph.relations.names(),
        "entity_types": list(graph.entity_types),
    }
    data = {
        "split::train": np.asarray(split.train, dtype=np.int64).reshape(-1, 3),
        "split::valid": np.asarray(split.valid, dtype=np.int64).reshape(-1, 3),
        "split::test": np.asarray(split.test, dtype=np.int64).reshape(-1, 3),
        "features::molecular": features.molecular,
        "features::textual": features.textual,
        "features::structural": features.structural,
        "features::has_molecule": features.has_molecule,
    }
    if appended is not None and len(appended):
        data["split::appended"] = np.asarray(
            appended, dtype=np.int64).reshape(-1, 3)
    if _is_single_file(path):
        arrays = {f"state::{k}": v for k, v in state.items()}
        arrays.update(data)
        arrays.update({f"ann::{k}": v for k, v in ann_arrays.items()})
        arrays["__manifest__"] = np.array(json.dumps(manifest))
        arrays["__vocab__"] = np.array(json.dumps(vocab))
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp, path)
    else:
        os.makedirs(path, exist_ok=True)
        for name, doc in ((_MANIFEST, manifest), (_VOCAB, vocab)):
            tmp = os.path.join(path, f"{name}.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=2)
            os.replace(tmp, os.path.join(path, name))
        parts = [(_STATE, state), (_DATA, data)]
        if ann_arrays:
            parts.append((_ANN, ann_arrays))
        for name, arrays in parts:
            tmp = os.path.join(path, f"{name}.tmp")
            with open(tmp, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp, os.path.join(path, name))
    return path


def _read_parts(path: str) -> tuple[dict, dict, dict[str, np.ndarray],
                                    dict[str, np.ndarray],
                                    dict[str, np.ndarray]]:
    if _is_single_file(path):
        if not os.path.exists(path):
            raise BundleError(f"bundle file {path!r} does not exist")
        with np.load(path) as archive:
            files = set(archive.files)
            for required in ("__manifest__", "__vocab__"):
                if required not in files:
                    raise BundleError(
                        f"{path!r} is not a bundle: missing embedded {required}")
            manifest = json.loads(str(archive["__manifest__"][()]))
            vocab = json.loads(str(archive["__vocab__"][()]))
            state = {name[len("state::"):]: archive[name]
                     for name in files if name.startswith("state::")}
            data = {name: archive[name] for name in files
                    if name.startswith(("split::", "features::"))}
            ann = {name[len("ann::"):]: archive[name]
                   for name in files if name.startswith("ann::")}
        return manifest, vocab, state, data, ann
    for required in (_MANIFEST, _VOCAB, _STATE, _DATA):
        if not os.path.exists(os.path.join(path, required)):
            raise BundleError(f"bundle dir {path!r} is missing {required}")
    with open(os.path.join(path, _MANIFEST), encoding="utf-8") as handle:
        manifest = json.load(handle)
    with open(os.path.join(path, _VOCAB), encoding="utf-8") as handle:
        vocab = json.load(handle)
    with np.load(os.path.join(path, _STATE)) as archive:
        state = {name: archive[name] for name in archive.files}
    with np.load(os.path.join(path, _DATA)) as archive:
        data = {name: archive[name] for name in archive.files}
    ann: dict[str, np.ndarray] = {}
    ann_path = os.path.join(path, _ANN)
    if os.path.exists(ann_path):
        with np.load(ann_path) as archive:
            ann = {name: archive[name] for name in archive.files}
    return manifest, vocab, state, data, ann


def load_bundle(path: str, strict: bool = True) -> CheckpointBundle:
    """Read a bundle from ``path`` (layout auto-detected) and validate it.

    Validation checks the format version and cross-checks the state
    arrays actually present against the manifest's ``state_keys``
    record.  With ``strict=True`` any missing/extra state key raises a
    :class:`BundleError` listing both sets; with ``strict=False`` the
    mismatch is tolerated (``build_model(strict=False)`` then loads the
    intersection).
    """
    with trace("serve.bundle_load", path=path):
        return _load_bundle_inner(path, strict)


def _load_bundle_inner(path: str, strict: bool) -> CheckpointBundle:
    manifest, vocab, state, data, ann_arrays = _read_parts(path)
    version = manifest.get("format_version")
    if not isinstance(version, int) or version < 1 or version > BUNDLE_VERSION:
        raise BundleError(
            f"unsupported bundle format_version {version!r} "
            f"(this build reads versions 1..{BUNDLE_VERSION})"
        )
    declared = set(manifest.get("state_keys", {}))
    present = set(state)
    missing, extra = sorted(declared - present), sorted(present - declared)
    if strict and (missing or extra):
        raise BundleError(
            f"bundle {path!r} state arrays disagree with manifest: "
            f"missing {missing}; extra {extra}"
        )
    if manifest.get("ann") and not ann_arrays:
        if strict:
            raise BundleError(
                f"bundle {path!r} declares an ANN artifact in its manifest "
                "but carries no ANN arrays")
        manifest = dict(manifest)
        manifest.pop("ann")
    for key in ("split::train", "split::valid", "split::test",
                "features::molecular", "features::textual",
                "features::structural", "features::has_molecule"):
        if key not in data:
            raise BundleError(f"bundle {path!r} is missing data array {key!r}")

    entities = Vocabulary(vocab["entities"])
    relations = Vocabulary(vocab["relations"])
    train = data["split::train"]
    valid = data["split::valid"]
    test = data["split::test"]
    appended = data.get("split::appended")
    if appended is None:
        appended = np.empty((0, 3), dtype=np.int64)
    appended = np.asarray(appended, dtype=np.int64).reshape(-1, 3)
    graph = KnowledgeGraph(
        entities=entities, relations=relations,
        # Appended triples are part of the known graph (and the serving
        # filter) without belonging to any train/valid/test part.
        triples=np.concatenate([train, valid, test, appended]),
        entity_types=list(vocab.get("entity_types", [])),
        name=manifest.get("dataset", {}).get("name", "bundle"),
    )
    split = KGSplit(graph=graph, train=train, valid=valid, test=test)
    features = ModalityFeatures(
        molecular=data["features::molecular"],
        textual=data["features::textual"],
        structural=data["features::structural"],
        has_molecule=data["features::has_molecule"].astype(bool),
    )
    return CheckpointBundle(manifest=manifest, split=split,
                            features=features, state=state,
                            ann_arrays=ann_arrays or None,
                            appended=appended)
