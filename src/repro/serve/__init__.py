"""Serving subsystem: checkpoint bundles + a batched prediction service.

Turns any trained registry model into a queryable artifact:

* :mod:`repro.serve.bundle` — self-describing checkpoint bundles
  (model + config + vocab + split + modality features + state dict);
* :mod:`repro.serve.engine` — top-k / triple-scoring engine with an LRU
  score-row cache and known-triple filtering;
* :mod:`repro.serve.ann` — sublinear approximate top-k: couples an
  :class:`repro.ann.IVFIndex` over the (optionally quantized) entity
  table to the model's exact rerank;
* :mod:`repro.serve.batcher` — micro-batching of concurrent queries;
* :mod:`repro.serve.http` — stdlib JSON HTTP API
  (``/predict``, ``/score``, ``/healthz``, ``/stats``);
* :mod:`repro.serve.cli` — ``python -m repro.serve export|query|serve``.

Instrumentation uses the standard :mod:`logging` hierarchy under the
``repro.serve`` logger (children: ``.engine``, ``.batcher``, ``.http``,
``.cli``): batch sizes and cache hit rates at ``DEBUG``, request
latencies and lifecycle events at ``INFO``.
"""

from .ann import ANN_FORMAT_VERSION, AnnError, AnnServing, supports_ann
from .batcher import MicroBatcher
from .bundle import (
    BUNDLE_VERSION,
    BundleError,
    CheckpointBundle,
    load_bundle,
    save_bundle,
)
from .engine import PredictionEngine, topk_indices
from .http import ServiceApp, make_server

__all__ = [
    "ANN_FORMAT_VERSION",
    "AnnError",
    "AnnServing",
    "BUNDLE_VERSION",
    "BundleError",
    "CheckpointBundle",
    "MicroBatcher",
    "PredictionEngine",
    "ServiceApp",
    "load_bundle",
    "make_server",
    "save_bundle",
    "supports_ann",
    "topk_indices",
]
