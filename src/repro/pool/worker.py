"""Worker-process side of the pool: one read-only replica, one loop.

A pool worker is a forked child that:

1. remaps its inherited model onto the shared ``FlatSpec`` segment
   (:func:`repro.pool.replica.attach_replica` — zero-copy, read-only);
2. wraps it in a fresh :class:`~repro.serve.PredictionEngine` (own
   metrics registry, zeroed counters; the known-triple CSR filter and
   any ANN index are inherited from the parent copy-on-write, so no
   per-worker rebuild) and the stock
   :class:`~repro.serve.http.ServiceApp` — request validation, error
   envelopes and scoring behave **identically** to the threaded server;
3. loops on its command pipe answering ``req`` / ``ping`` / ``stats``
   messages until told to ``stop``.

Deadlines travel as absolute ``time.monotonic()`` values — on Linux
``CLOCK_MONOTONIC`` is system-wide, so the front-end's deadline is
directly comparable here.  A request that expires while queued is
answered with the 504 envelope without touching the model, which is
what "cancelling queued work" means once bytes have crossed the pipe.

Messages (tuples, first element is the kind):

=====================  =================================================
parent -> worker       worker -> parent (on the shared results queue)
=====================  =================================================
``("req", id, method,  ``("res", rank, id, status, payload)``
path, body, deadline,
traceparent)``
``("ping", id)``       ``("pong", rank, id, health_dict)``
``("stats", id)``      ``("stats", rank, id, snapshot, engine_stats)``
``("stop",)``          —
=====================  =================================================

The envelope's ``traceparent`` (the front-end's ``pool.request`` span)
is adopted as the parent of this worker's ``serve.request`` span, so
one request is a single trace across both processes.  When the parent
was exporting spans to a file, the worker exports its own to
``<path>.w<rank>`` (the tracer's at-fork hook already gave this process
a clean, disabled tracer) — ``repro.obs report`` stitches the files.
"""

from __future__ import annotations

import logging
import os
import signal
import time
from dataclasses import dataclass
from queue import Empty

from ..obs import activate, disable_tracing, enable_tracing, parse_traceparent
from ..serve.engine import PredictionEngine
from ..serve.http import ServiceApp
from .replica import ReplicaSegment, attach_replica

__all__ = ["PoolWorkerContext", "pool_worker_main"]

logger = logging.getLogger("repro.pool.worker")

#: Seconds between command-queue polls (bounds stop latency).
_POLL = 0.1


@dataclass
class PoolWorkerContext:
    """Everything a forked pool worker needs (inherited, never pickled)."""

    rank: int
    model: object
    split: object                  # KGSplit
    segment: ReplicaSegment
    cmd: object                    # mp.Queue: parent -> this worker
    results: object                # mp.Queue: all workers -> parent
    model_name: str = "model"
    csr_filter: object | None = None   # prebuilt CSRFilter (COW-shared)
    ann: object | None = None          # AnnServing (COW-shared)
    approx_default: bool = False
    bundle_version: int | None = None
    cache_size: int = 512
    request_delay: float = 0.0     # test-only fault injection
    trace_path: str | None = None  # per-rank JSONL export (parent tracing on)


def _build_app(ctx: PoolWorkerContext) -> ServiceApp:
    shared = attach_replica(ctx.model, ctx.segment)
    engine = PredictionEngine(
        ctx.model, ctx.split, model_name=ctx.model_name,
        cache_size=ctx.cache_size, ann=ctx.ann,
        approx_default=ctx.approx_default,
        bundle_version=ctx.bundle_version)
    if ctx.csr_filter is not None:
        engine._filter = ctx.csr_filter
    logger.info("pool worker %d up: %d shared bytes, model=%s",
                ctx.rank, shared, ctx.model_name)
    return ServiceApp(engine)


def pool_worker_main(ctx: PoolWorkerContext) -> None:
    """Forked worker main loop; exits on ``("stop",)``, queue EOF, or
    the death of its front-end (orphan check on every idle poll)."""
    # The fork happens after run_pool() may have installed asyncio signal
    # handlers; inherited, they would make SIGTERM a no-op here (it only
    # writes to the parent's wakeup fd).  Restore defaults: SIGTERM kills
    # a stray worker, Ctrl-C is ignored — drain is the front-end's job.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    parent = os.getppid()
    # The at-fork hook already reset the inherited tracer (disabled,
    # empty ring, parent's file handle dropped); re-enable onto a
    # per-rank file when the front-end wants worker spans exported.
    if ctx.trace_path:
        enable_tracing(ctx.trace_path, flush_every=16)
    app = _build_app(ctx)
    served = 0
    started = time.time()
    try:
        while True:
            try:
                msg = ctx.cmd.get(timeout=_POLL)
            except Empty:
                if os.getppid() != parent:  # front-end died without a drain
                    logger.warning("pool worker %d orphaned; exiting", ctx.rank)
                    return
                continue
            except (EOFError, OSError):  # pragma: no cover - parent went away
                return
            kind = msg[0]
            if kind == "stop":
                logger.info("pool worker %d stopping after %d requests",
                            ctx.rank, served)
                return
            if kind == "ping":
                ctx.results.put(("pong", ctx.rank, msg[1], {
                    "requests": served,
                    "uptime_seconds": round(time.time() - started, 3),
                    "cache_entries": len(app.engine._cache),
                }))
                continue
            if kind == "stats":
                ctx.results.put(("stats", ctx.rank, msg[1],
                                 app.metrics.snapshot(), app.engine.stats()))
                continue
            if kind != "req":  # pragma: no cover - protocol guard
                logger.warning("pool worker %d: unknown message %r",
                               ctx.rank, kind)
                continue
            _, req_id, method, path, body, deadline, traceparent = msg
            rctx = parse_traceparent(traceparent) if traceparent else None
            if ctx.request_delay:
                time.sleep(ctx.request_delay)
            if deadline is not None and time.monotonic() > deadline:
                error = {"code": "deadline_exceeded",
                         "message": ("request expired while queued for a "
                                     "pool worker")}
                if rctx is not None:
                    error["trace_id"] = rctx.trace_id
                status, payload = 504, {"error": error}
            else:
                with activate(rctx):
                    status, payload = app.handle(method, path, body,
                                                 deadline=deadline)
            served += 1
            ctx.results.put(("res", ctx.rank, req_id, status, payload))
    finally:
        disable_tracing()  # flush + close the per-rank export file
