"""Multi-replica serve tier: admission control, load-shedding, respawn.

``repro.pool`` scales :mod:`repro.serve` horizontally on one host: an
asyncio front end (no model, no GIL-bound work) admits or sheds each
request, then dispatches admitted work to N forked worker processes,
each serving the stock :class:`~repro.serve.http.ServiceApp` over a
read-only model replica mapped zero-copy from one shared ``FlatSpec``
segment.  ``python -m repro.serve serve --pool N`` turns it on; pool 0
is the original threaded server, byte-for-byte.
"""

from .admission import (AdmissionController, AdmissionTicket, RateLimiter,
                        TokenBucket, format_retry_after)
from .config import PoolConfig
from .frontend import NoLiveWorkers, PoolServer, ReplicaPool, run_pool
from .replica import ReplicaSegment, attach_replica, publish_replica

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "NoLiveWorkers",
    "PoolConfig",
    "PoolServer",
    "RateLimiter",
    "ReplicaPool",
    "ReplicaSegment",
    "TokenBucket",
    "attach_replica",
    "format_retry_after",
    "publish_replica",
    "run_pool",
]
