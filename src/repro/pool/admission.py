"""Admission control: per-client token buckets + bounded endpoint queues.

Everything here is synchronous and allocation-light because it sits on
the front-end event loop's hot path — one admission decision per POST
request, before any bytes cross a process boundary.

Two independent gates, both answering "admit or shed, and if shed, when
should the client retry":

* :class:`TokenBucket` / :class:`RateLimiter` — per-client request
  budget.  A client that exhausts its bucket is shed with the exact
  number of seconds until its next token accrues, so well-behaved
  clients can honour ``Retry-After`` and converge on the permitted
  rate instead of hammering.
* :class:`AdmissionController` — per-endpoint depth accounting.  Depth
  counts queued *and* in-flight requests (work the pool has accepted
  responsibility for); once it reaches the watermark the endpoint sheds
  with a configured ``Retry-After`` hint.

The clock is injectable (``time.monotonic`` by default) so tests drive
bucket refill deterministically.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict

__all__ = ["TokenBucket", "RateLimiter", "AdmissionController",
           "AdmissionTicket", "format_retry_after"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``acquire()`` returns ``(admitted, retry_after_seconds)``;
    ``retry_after_seconds`` is 0.0 on admits and the exact time until one
    full token accrues on sheds.
    """

    __slots__ = ("rate", "burst", "tokens", "updated", "clock")

    def __init__(self, rate: float, burst: int, clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self.tokens = float(burst)
        self.clock = clock
        self.updated = clock()

    def acquire(self, amount: float = 1.0) -> tuple[bool, float]:
        now = self.clock()
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= amount:
            self.tokens -= amount
            return True, 0.0
        return False, (amount - self.tokens) / self.rate


class RateLimiter:
    """Per-client :class:`TokenBucket` map with LRU-bounded client count.

    Thread-safe: the front-end event loop is single-threaded, but the
    threaded server could share one of these across handler threads.
    """

    def __init__(self, rate: float, burst: int, max_clients: int = 1024,
                 clock=time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = int(burst)
        self.max_clients = int(max_clients)
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def acquire(self, client: str) -> tuple[bool, float]:
        """Admission decision for one request from ``client``."""
        if not self.enabled:
            return True, 0.0
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self.clock)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            return bucket.acquire()

    def num_clients(self) -> int:
        with self._lock:
            return len(self._buckets)


class AdmissionTicket:
    """Handle for one admitted request; ``release()`` exactly once."""

    __slots__ = ("_controller", "_route", "_released")

    def __init__(self, controller: "AdmissionController", route: str) -> None:
        self._controller = controller
        self._route = route
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._route)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Bounded per-endpoint depth accounting with a shed watermark."""

    def __init__(self, max_depth: int, retry_after: float = 1.0) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = int(max_depth)
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._depth: dict[str, int] = {}

    def try_admit(self, route: str) -> tuple[AdmissionTicket | None, float]:
        """Admit one request on ``route`` or shed it.

        Returns ``(ticket, 0.0)`` on admit and ``(None, retry_after)``
        once the endpoint's depth has reached the watermark.
        """
        with self._lock:
            depth = self._depth.get(route, 0)
            if depth >= self.max_depth:
                return None, self.retry_after
            self._depth[route] = depth + 1
        return AdmissionTicket(self, route), 0.0

    def _release(self, route: str) -> None:
        with self._lock:
            depth = self._depth.get(route, 0)
            if depth <= 1:
                self._depth.pop(route, None)
            else:
                self._depth[route] = depth - 1

    def depth(self, route: str) -> int:
        with self._lock:
            return self._depth.get(route, 0)

    def depths(self) -> dict[str, int]:
        with self._lock:
            return dict(self._depth)


def format_retry_after(seconds: float) -> str:
    """``Retry-After`` header value: integral seconds, rounded up, >= 1."""
    return str(max(1, math.ceil(seconds)))
