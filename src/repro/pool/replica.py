"""Zero-copy model replicas over the ``FlatSpec`` shared segment.

The pool materialises a bundle's model **once**, in the parent: the
model's full state dict is flattened (``nn.FlatSpec`` ordering, the same
layout ``repro.dist`` mirrors parameters with) into one
:class:`~repro.dist.shm.SharedFlatBuffer` float64 segment.  Each forked
worker then *remaps* its inherited model onto that segment —
``param.data`` becomes a read-only view of the shared vector — so N
replicas share one copy of the embedding tables instead of paying N
materialisations.  Non-float64 entries (integer buffers such as
batch-norm step counts) cannot alias a float64 segment and are copied
back at their original dtype; they are tiny by construction.

The views are marked non-writeable: a worker that tried to mutate its
replica mid-inference would fault loudly instead of silently corrupting
every sibling's weights.
"""

from __future__ import annotations

import numpy as np

from ..dist.shm import SharedFlatBuffer
from ..nn.serialize import FlatSpec, flatten_state_dict

__all__ = ["ReplicaSegment", "publish_replica", "attach_replica"]

_FLOAT64 = np.dtype(np.float64)


class ReplicaSegment:
    """One shared flat copy of a model's state, ready for N consumers."""

    def __init__(self, spec: FlatSpec, buffer: SharedFlatBuffer) -> None:
        self.spec = spec
        self.buffer = buffer

    @property
    def flat(self) -> np.ndarray:
        return self.buffer.row(0)

    @property
    def nbytes(self) -> int:
        return int(self.spec.total_size * _FLOAT64.itemsize)

    def close(self) -> None:
        self.buffer.close()

    def __enter__(self) -> "ReplicaSegment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def publish_replica(model) -> ReplicaSegment:
    """Flatten ``model``'s state dict into a fresh shared segment.

    Called once by the pool parent before forking workers.  The segment
    owner (the parent) must :meth:`~ReplicaSegment.close` it after the
    workers have been joined.
    """
    state = model.state_dict()
    spec = FlatSpec.from_state_dict(state)
    buffer = SharedFlatBuffer(1, spec.total_size)
    flatten_state_dict(state, spec=spec, out=buffer.row(0))
    return ReplicaSegment(spec, buffer)


def _named_buffer_sites(module, prefix: str = ""):
    """Yield ``(owner, attr, dotted_name)`` for every registered buffer."""
    for key in getattr(module, "_buffer_names", ()):
        yield module, key, f"{prefix}{key}"
    for key, value in vars(module).items():
        if hasattr(value, "_named_buffers"):  # Module or ModuleList
            if hasattr(value, "_items"):  # ModuleList
                for i, item in enumerate(value._items):
                    yield from _named_buffer_sites(item, f"{prefix}{key}.{i}.")
            else:
                yield from _named_buffer_sites(value, f"{prefix}{key}.")


def attach_replica(model, segment: ReplicaSegment) -> int:
    """Remap ``model``'s state onto the shared segment, zero-copy.

    Every float64 parameter's ``data`` is replaced by a **read-only
    view** of the segment (no bytes copied); other dtypes are copied
    back at their recorded dtype.  Returns the number of bytes now
    served from the shared mapping instead of private memory.

    The model must have the same architecture (and therefore the same
    :class:`FlatSpec`) as the one :func:`publish_replica` flattened —
    with the fork start method it *is* the same object, inherited
    copy-on-write.
    """
    spec, flat = segment.spec, segment.flat
    state_names = set(spec.names)
    shared_bytes = 0
    for name, param in model.named_parameters():
        if name not in state_names:
            raise ValueError(f"parameter {name!r} missing from replica spec "
                             f"{list(spec.names)}")
        i = spec.names.index(name)
        sl = spec.slot(name)
        if param.data.shape != spec.shapes[i]:
            raise ValueError(
                f"shape mismatch for {name!r}: model {param.data.shape}, "
                f"spec {spec.shapes[i]}")
        if spec.dtypes[i] == _FLOAT64:
            view = flat[sl].reshape(spec.shapes[i])
            view.flags.writeable = False
            param.data = view
            shared_bytes += view.nbytes
        else:
            param.data[...] = flat[sl].reshape(spec.shapes[i]).astype(
                spec.dtypes[i])
    for owner, attr, dotted in _named_buffer_sites(model):
        key = f"buffer::{dotted}"
        if key not in state_names:
            continue
        i = spec.names.index(key)
        sl = spec.slot(key)
        if spec.dtypes[i] == _FLOAT64:
            view = flat[sl].reshape(spec.shapes[i])
            view.flags.writeable = False
            setattr(owner, attr, view)
            shared_bytes += view.nbytes
        else:
            target = getattr(owner, attr)
            target[...] = flat[sl].reshape(spec.shapes[i]).astype(spec.dtypes[i])
    return shared_bytes
