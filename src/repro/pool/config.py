"""Tunables for the multi-replica serve tier.

One frozen-ish dataclass so the CLI, tests and benchmarks configure the
pool through the same named knobs.  Every timing knob is in seconds
(the CLI converts from milliseconds where that reads better).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PoolConfig"]


@dataclass
class PoolConfig:
    """Configuration for :class:`repro.pool.PoolServer`.

    Parameters
    ----------
    workers:
        Worker processes holding read-only model replicas.  Must be
        >= 1 — a pool of 0 is spelled "run the threaded server instead"
        and is handled by the CLI, not here.
    max_queue_depth:
        Per-endpoint admission watermark: a POST route whose queued +
        in-flight request count has reached this depth sheds new work
        with ``429`` + ``Retry-After`` instead of queueing it.
    rate_limit / rate_burst:
        Per-client token bucket (tokens/second and bucket capacity).
        Clients are keyed by the ``X-Client-Id`` header when present,
        else by peer address.  ``rate_limit=0`` disables rate limiting.
    max_clients:
        Distinct client buckets kept (LRU-evicted beyond this).
    default_timeout:
        Server-side deadline applied to requests that do not carry
        their own ``deadline_ms`` field.
    shed_retry_after:
        ``Retry-After`` seconds advertised on queue-full sheds.
    health_interval / health_timeout:
        Cadence of worker liveness pings and how long a worker may go
        unresponsive before it is declared hung and replaced.
    respawn:
        Replace dead workers automatically (off only in tests that
        assert on a shrunken world).
    drain_timeout:
        Seconds a graceful shutdown waits for in-flight requests.
    stats_timeout:
        How long ``/stats`` and ``/metrics`` wait for per-worker
        snapshots before reporting without the stragglers.
    cache_size:
        Per-worker :class:`~repro.serve.PredictionEngine` row-cache
        capacity.
    request_delay:
        Test-only fault injection: every worker sleeps this many
        seconds before handling each request (deterministic deadline /
        shedding tests; keep 0.0 in production).
    """

    workers: int = 2
    max_queue_depth: int = 64
    rate_limit: float = 0.0
    rate_burst: int = 16
    max_clients: int = 1024
    default_timeout: float = 30.0
    shed_retry_after: float = 1.0
    health_interval: float = 0.5
    health_timeout: float = 5.0
    respawn: bool = True
    drain_timeout: float = 10.0
    stats_timeout: float = 2.0
    cache_size: int = 512
    approx_default: bool = False
    request_delay: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.rate_limit < 0:
            raise ValueError(f"rate_limit must be >= 0, got {self.rate_limit}")
        if self.rate_burst < 1:
            raise ValueError(f"rate_burst must be >= 1, got {self.rate_burst}")
        if self.default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be > 0, got {self.default_timeout}")
