"""Asyncio front-end: admission control + dispatch to replica workers.

The serve tier's accept path is one non-blocking event loop (stdlib
``asyncio`` streams; no third-party deps) that never touches a model.
For every POST it makes an admission decision — per-client token
bucket, then per-endpoint bounded queue — and either sheds the request
(``429`` + ``Retry-After``) or forwards it over a pipe to one of N
forked worker processes, each holding a read-only replica mapped
zero-copy from the shared ``FlatSpec`` segment
(:mod:`repro.pool.replica`).  Worker responses come back on one shared
results queue, pumped by a dedicated thread into the event loop.

Failure behaviour (the matrix DESIGN.md §12 documents):

* **request deadline** — ``deadline_ms`` (or the server default) bounds
  queue + compute time; expiry answers ``504 deadline_exceeded`` and
  the worker skips expired work it dequeues later;
* **worker crash / hang** — the health loop notices (liveness +
  ping-timeout), fails or **requeues-once** the dead worker's in-flight
  requests (a request is never requeued twice — the second loss is a
  ``503 worker_lost``), and respawns a replacement so the pool returns
  to full strength;
* **overload** — per-endpoint depth watermark sheds with ``429`` while
  admitted requests keep their latency bound (the closed-loop
  benchmark's past-saturation run asserts this);
* **SIGTERM** — graceful drain: stop accepting, finish in-flight work,
  stop workers, release the shared segment.

``POST /append`` (streaming, :mod:`repro.stream`) is handled in the
parent, not dispatched: the parent model/vocabulary/filter grow first,
then :meth:`ReplicaPool.republish` publishes a fresh shared segment
from the grown model and rolls the workers onto it one generation
forward — new workers spawn against the new segment, in-flight requests
on the old generation drain (stragglers are requeued once, like a
worker loss), and the old segment is released.  Replicas therefore pick
up appends via generation-stamped republish; ``/healthz`` exposes the
stream generation and per-replica generations so clients can watch the
roll complete.

``/healthz`` reports per-replica liveness; ``/stats`` and ``/metrics``
merge every worker's :class:`~repro.obs.MetricsRegistry` snapshot with
the front-end's own counters (``MetricsRegistry.merge``), so pool-wide
p50/p99, queue depth and shed/respawn counters are one scrape away;
:class:`~repro.obs.SLOTracker` gauges (latency attainment, error-budget
burn rate) ride the same exposition.

Every request runs under a ``pool.request`` span whose context crosses
the cmd-queue envelope as a ``traceparent`` string (clients may supply
their own, which is honored); responses — including 429/503/504 error
envelopes and ``Retry-After`` sheds — echo ``X-Trace-Id``, and with the
per-rank worker JSONL exports ``python -m repro.obs report`` stitches
one request into a single cross-process tree (DESIGN.md §14).
"""

from __future__ import annotations

import asyncio
import json
import logging
import multiprocessing as mp
import threading
import time
from http.client import responses as _REASONS
from queue import Empty

from .. import __version__
from ..eval.evaluator import build_csr_filter
from ..obs import (MetricsRegistry, SLOTracker, activate, current_traceparent,
                   get_tracer, parse_traceparent, render_prometheus, trace)
from ..serve.ann import supports_ann
from ..serve.http import MAX_BODY_BYTES
from .admission import AdmissionController, RateLimiter, format_retry_after
from .config import PoolConfig
from .worker import PoolWorkerContext, pool_worker_main

__all__ = ["PoolServer", "ReplicaPool", "NoLiveWorkers", "run_pool"]

logger = logging.getLogger("repro.pool.frontend")

#: Routes the pool dispatches to workers (everything else is local).
DISPATCH_ROUTES = ("/predict", "/score")

#: Idle keep-alive connections are reaped after this many seconds.
_IDLE_TIMEOUT = 60.0


class NoLiveWorkers(RuntimeError):
    """Every replica is dead (and respawn has not caught up yet)."""


def _envelope(code: str, message: str) -> dict:
    return {"error": {"code": code, "message": message}}


class _Pending:
    """One message awaiting a worker response."""

    __slots__ = ("req_id", "kind", "future", "method", "path", "body",
                 "deadline", "route", "requeued", "rank", "enqueued_at",
                 "traceparent")

    def __init__(self, req_id: int, kind: str, future, method: str = "",
                 path: str = "", body=None, deadline: float | None = None,
                 route: str = "") -> None:
        self.req_id = req_id
        self.kind = kind          # "req" | "pong" | "stats"
        self.future = future
        self.method = method
        self.path = path
        self.body = body
        self.deadline = deadline
        self.route = route
        self.requeued = False
        self.rank = -1
        self.enqueued_at = time.monotonic()
        self.traceparent: str | None = None


class WorkerHandle:
    """Parent-side view of one replica worker process."""

    __slots__ = ("rank", "proc", "cmd", "inflight", "spawned_at",
                 "last_pong", "requests_done", "alive", "generation")

    def __init__(self, rank: int, proc, cmd, generation: int) -> None:
        self.rank = rank
        self.proc = proc
        self.cmd = cmd
        self.inflight: dict[int, _Pending] = {}
        self.spawned_at = time.monotonic()
        self.last_pong = time.monotonic()
        self.requests_done = 0
        self.alive = True
        self.generation = generation

    def liveness(self) -> dict:
        return {
            "rank": self.rank,
            "alive": bool(self.alive and self.proc.is_alive()),
            "pid": self.proc.pid,
            "mode": "process",
            "inflight": len(self.inflight),
            "requests": self.requests_done,
            "generation": self.generation,
            "last_health_age_seconds": round(
                time.monotonic() - self.last_pong, 3),
        }


class ReplicaPool:
    """Worker lifecycle + request dispatch for :class:`PoolServer`."""

    def __init__(self, model, split, config: PoolConfig, *,
                 model_name: str = "model", csr_filter=None, ann=None,
                 bundle_version: int | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "repro.pool needs the 'fork' start method; run the threaded "
                "server (--pool 0) on this platform")
        self.model = model
        self.split = split
        self.config = config
        self.model_name = model_name
        self.ann = ann
        self.bundle_version = bundle_version
        # Built eagerly so every forked worker inherits it copy-on-write
        # instead of paying its own CSR construction.
        self.csr_filter = csr_filter if csr_filter is not None else \
            build_csr_filter(split, ("train", "valid", "test"))
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.handles: dict[int, WorkerHandle] = {}
        self.segment = None
        self.draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ctx = mp.get_context("fork")
        self._results = None
        self._pending: dict[int, _Pending] = {}
        self._next_id = 0
        self._generation = 0
        self._pump: threading.Thread | None = None
        self._pump_stop = threading.Event()
        self._g_alive = self.metrics.gauge(
            "pool_workers_alive", "replica workers currently alive")
        self._c_respawns = self.metrics.counter(
            "pool_worker_respawns_total", "replica workers respawned")
        self._c_requeues = self.metrics.counter(
            "pool_requeues_total",
            "in-flight requests requeued after a worker loss")
        self._c_lost = self.metrics.counter(
            "pool_worker_lost_requests_total",
            "in-flight requests failed with 503 after a worker loss")
        self._c_late = self.metrics.counter(
            "pool_late_responses_total",
            "worker responses discarded after the request was answered")
        self._c_republishes = self.metrics.counter(
            "pool_republishes_total",
            "replica republish rolls (streaming appends adopted)")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        from .replica import publish_replica

        self._loop = loop
        self.segment = publish_replica(self.model)
        self._results = self._ctx.Queue()
        for rank in range(self.config.workers):
            self._spawn(rank)
        self._pump = threading.Thread(target=self._pump_main, daemon=True,
                                      name="repro-pool-pump")
        self._pump.start()
        logger.info("pool up: %d workers over a %d-byte shared segment",
                    self.config.workers, self.segment.nbytes)

    def _spawn(self, rank: int) -> WorkerHandle:
        cmd = self._ctx.Queue()
        self._generation += 1
        # Workers inherit a reset tracer (at-fork hook); if the parent is
        # exporting spans, each worker gets its own per-rank JSONL next
        # to the parent's so `repro.obs report` can stitch all of them.
        tracer = get_tracer()
        trace_path = (f"{tracer.path}.w{rank}"
                      if tracer.enabled and tracer.path else None)
        wctx = PoolWorkerContext(
            rank=rank, model=self.model, split=self.split,
            segment=self.segment, cmd=cmd, results=self._results,
            model_name=self.model_name, csr_filter=self.csr_filter,
            ann=self.ann, approx_default=self.config.approx_default,
            bundle_version=self.bundle_version,
            cache_size=self.config.cache_size,
            request_delay=self.config.request_delay,
            trace_path=trace_path)
        proc = self._ctx.Process(target=pool_worker_main, args=(wctx,),
                                 daemon=True, name=f"repro-pool-{rank}")
        proc.start()
        handle = WorkerHandle(rank, proc, cmd, self._generation)
        self.handles[rank] = handle
        self._g_alive.set(self.num_live())
        return handle

    def num_live(self) -> int:
        return sum(1 for h in self.handles.values()
                   if h.alive and h.proc.is_alive())

    def inflight_requests(self) -> int:
        return sum(1 for p in self._pending.values() if p.kind == "req")

    def stop(self) -> None:
        """Stop workers and release the segment; never blocks forever."""
        self._pump_stop.set()
        for handle in self.handles.values():
            try:
                handle.cmd.put(("stop",))
            except Exception:  # pragma: no cover - broken queue
                pass
        for handle in self.handles.values():
            handle.proc.join(timeout=2.0)
            if handle.proc.is_alive():  # pragma: no cover - hung worker
                handle.proc.terminate()
                handle.proc.join(timeout=1.0)
            handle.alive = False
        if self._pump is not None:
            self._pump.join(timeout=2.0)
        for handle in self.handles.values():
            handle.cmd.cancel_join_thread()
            handle.cmd.close()
        if self._results is not None:
            self._results.cancel_join_thread()
            self._results.close()
        if self.segment is not None:
            self.segment.close()
            self.segment = None
        self._g_alive.set(0)
        # Anything still pending can never be answered now.
        for pending in list(self._pending.values()):
            self._fail(pending, 503, _envelope(
                "shutting_down", "pool stopped before the request completed"))
        self._pending.clear()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _pick_worker(self) -> WorkerHandle:
        live = [h for h in self.handles.values()
                if h.alive and h.proc.is_alive()]
        if not live:
            raise NoLiveWorkers("no live replica workers")
        return min(live, key=lambda h: (len(h.inflight), h.rank))

    def _register(self, kind: str, **fields) -> _Pending:
        self._next_id += 1
        pending = _Pending(self._next_id, kind,
                           self._loop.create_future(), **fields)
        self._pending[pending.req_id] = pending
        return pending

    def _send(self, handle: WorkerHandle, pending: _Pending) -> None:
        pending.rank = handle.rank
        handle.inflight[pending.req_id] = pending
        handle.cmd.put(("req", pending.req_id, pending.method, pending.path,
                        pending.body, pending.deadline, pending.traceparent))

    def dispatch(self, method: str, path: str, body,
                 deadline: float | None, route: str) -> _Pending:
        """Forward one request to the least-loaded live worker.

        The active trace context (the front-end's ``pool.request`` span,
        or a client-supplied parent) rides the envelope as a
        ``traceparent`` string so the worker's spans join the same
        trace; requeued requests re-send the original context.
        """
        pending = self._register("req", method=method, path=path, body=body,
                                 deadline=deadline, route=route)
        pending.traceparent = current_traceparent()
        try:
            self._send(self._pick_worker(), pending)
        except NoLiveWorkers:
            self._pending.pop(pending.req_id, None)
            raise
        return pending

    def abandon(self, pending: _Pending) -> None:
        """Forget a request the front-end already answered (deadline)."""
        self._pending.pop(pending.req_id, None)
        handle = self.handles.get(pending.rank)
        if handle is not None:
            handle.inflight.pop(pending.req_id, None)

    def send_control(self, handle: WorkerHandle, kind: str) -> _Pending:
        """Dispatch a ``ping`` or ``stats`` message to one worker."""
        pending = self._register("pong" if kind == "ping" else "stats")
        pending.rank = handle.rank
        handle.inflight[pending.req_id] = pending
        handle.cmd.put((kind, pending.req_id))
        return pending

    def _fail(self, pending: _Pending, status: int, payload: dict) -> None:
        if pending.future.done():
            return
        if pending.kind == "req":
            pending.future.set_result((status, payload))
        else:  # control messages resolve exceptionally, callers skip them
            pending.future.set_exception(
                RuntimeError(payload["error"]["message"]))

    # ------------------------------------------------------------------
    # Response pump (thread -> event loop)
    # ------------------------------------------------------------------
    def _pump_main(self) -> None:
        while not self._pump_stop.is_set():
            try:
                msg = self._results.get(timeout=0.2)
            except (Empty, EOFError, OSError):
                continue
            except Exception:  # pragma: no cover - half-written pickle
                continue
            try:
                self._loop.call_soon_threadsafe(self._on_message, msg)
            except RuntimeError:  # pragma: no cover - loop already closed
                return

    def _on_message(self, msg: tuple) -> None:
        kind, rank, req_id = msg[0], msg[1], msg[2]
        pending = self._pending.pop(req_id, None)
        handle = self.handles.get(rank)
        if handle is not None:
            handle.inflight.pop(req_id, None)
            handle.last_pong = time.monotonic()
        if pending is None or pending.future.done():
            self._c_late.inc()
            return
        if kind == "res":
            if handle is not None:
                handle.requests_done += 1
            pending.future.set_result((msg[3], msg[4]))
        elif kind == "pong":
            pending.future.set_result(msg[3])
        elif kind == "stats":
            pending.future.set_result((msg[3], msg[4]))
        else:  # pragma: no cover - protocol guard
            logger.warning("unknown worker message kind %r", kind)

    # ------------------------------------------------------------------
    # Health / failure handling (runs on the event loop)
    # ------------------------------------------------------------------
    def health_tick(self) -> None:
        """One liveness sweep: detect deaths/hangs, ping the survivors."""
        now = time.monotonic()
        for handle in list(self.handles.values()):
            if not handle.alive:
                continue
            if not handle.proc.is_alive():
                self._on_worker_death(handle, "died")
                continue
            if now - handle.last_pong > self.config.health_timeout:
                self._on_worker_death(
                    handle, f"unresponsive > {self.config.health_timeout:.1f}s")
                continue
            self.send_control(handle, "ping")

    def _on_worker_death(self, handle: WorkerHandle, reason: str) -> None:
        if not handle.alive:
            return
        handle.alive = False
        logger.error("pool worker %d (pid %s) %s; %d in-flight request(s)",
                     handle.rank, handle.proc.pid, reason,
                     len(handle.inflight))
        handle.proc.terminate()
        handle.proc.join(timeout=1.0)
        victims = list(handle.inflight.values())
        handle.inflight.clear()
        replacement: WorkerHandle | None = None
        if self.config.respawn and not self.draining:
            replacement = self._spawn(handle.rank)
            self._c_respawns.inc()
            logger.info("respawned pool worker %d (pid %s)",
                        replacement.rank, replacement.proc.pid)
        self._g_alive.set(self.num_live())
        for pending in victims:
            self._pending.pop(pending.req_id, None)
            if pending.kind != "req":
                self._fail(pending, 503, _envelope(
                    "worker_lost", f"worker {handle.rank} {reason}"))
                continue
            if pending.requeued:
                self._c_lost.inc()
                self._fail(pending, 503, _envelope(
                    "worker_lost",
                    f"worker {handle.rank} {reason} (request already "
                    "requeued once)"))
                continue
            pending.requeued = True
            try:
                target = self._pick_worker()
            except NoLiveWorkers:
                self._c_lost.inc()
                self._fail(pending, 503, _envelope(
                    "worker_lost", "no surviving replica workers"))
                continue
            self._pending[pending.req_id] = pending
            self._send(target, pending)
            self._c_requeues.inc()

    # ------------------------------------------------------------------
    # Republish (streaming appends)
    # ------------------------------------------------------------------
    async def republish(self) -> None:
        """Roll every worker onto a fresh segment of the (grown) model.

        Called after the parent model/split/filter have adopted a
        streaming append.  Sequence:

        1. publish a new shared segment from the current parent model;
        2. spawn replacement workers (next generation) against it — the
           pool never drops below full strength on the new generation;
        3. let requests in flight on the old generation drain (bounded
           by ``drain_timeout``), requeueing stragglers once exactly as
           a worker loss would;
        4. stop the old workers and release the old segment.

        ``attach_replica`` hard-fails on a shape mismatch, which is why
        a whole new segment (not an in-place overwrite) is required:
        the entity table changed shape.
        """
        from .replica import publish_replica

        old_segment = self.segment
        old_handles = [h for h in self.handles.values() if h.alive]
        victims = [p for h in old_handles for p in h.inflight.values()]
        self.segment = publish_replica(self.model)
        for rank in list(self.handles):
            self._spawn(rank)  # replaces the handle; old one kept above
        self._c_republishes.inc()
        logger.info("republished %d-byte segment at generation %d; rolling "
                    "%d worker(s)", self.segment.nbytes, self._generation,
                    len(old_handles))
        deadline = time.monotonic() + self.config.drain_timeout
        while (any(not p.future.done() for p in victims)
               and time.monotonic() < deadline):
            await asyncio.sleep(0.01)
        for handle in old_handles:
            handle.alive = False
            try:
                handle.cmd.put(("stop",))
            except Exception:  # pragma: no cover - broken queue
                pass
        for handle in old_handles:
            handle.proc.join(timeout=2.0)
            if handle.proc.is_alive():  # pragma: no cover - hung worker
                handle.proc.terminate()
                handle.proc.join(timeout=1.0)
            handle.cmd.cancel_join_thread()
            handle.cmd.close()
        if old_segment is not None:
            old_segment.close()
        self._g_alive.set(self.num_live())
        # Stragglers lost with their worker: requeue once onto the new
        # generation, mirroring the worker-death policy.
        for pending in victims:
            if pending.future.done():
                continue
            self._pending.pop(pending.req_id, None)
            if pending.kind != "req":
                self._fail(pending, 503, _envelope(
                    "worker_lost", "worker rolled during republish"))
                continue
            if pending.requeued:
                self._c_lost.inc()
                self._fail(pending, 503, _envelope(
                    "worker_lost", "request lost across a republish roll "
                    "(already requeued once)"))
                continue
            pending.requeued = True
            try:
                target = self._pick_worker()
            except NoLiveWorkers:
                self._c_lost.inc()
                self._fail(pending, 503, _envelope(
                    "worker_lost", "no live replica workers after republish"))
                continue
            self._pending[pending.req_id] = pending
            self._send(target, pending)
            self._c_requeues.inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    async def gather_worker_stats(self) -> list[dict]:
        """Per-worker liveness + metrics snapshots (stragglers skipped)."""
        rows, waits = [], []
        for handle in sorted(self.handles.values(), key=lambda h: h.rank):
            row = handle.liveness()
            if row["alive"]:
                waits.append((row, self.send_control(handle, "stats")))
            rows.append(row)
        for row, pending in waits:
            try:
                snapshot, engine = await asyncio.wait_for(
                    pending.future, timeout=self.config.stats_timeout)
                row["metrics_snapshot"] = snapshot
                row["engine"] = engine
            except Exception:  # noqa: BLE001 - straggler or lost worker
                self.abandon(pending)
        return rows


class PoolServer:
    """The serve tier: asyncio HTTP front end over a :class:`ReplicaPool`.

    Lifecycle: ``await serve(host, port)`` on an event loop (the CLI
    path, with SIGTERM wired to a graceful drain), or
    ``start_background()`` to run the loop on a daemon thread (tests
    and benchmarks).  ``request_shutdown(drain=True)`` is thread-safe.
    """

    def __init__(self, model, split, config: PoolConfig, *,
                 model_name: str = "model", ann=None,
                 bundle_version: int | None = None,
                 appended=None, stream_generation: int = 0) -> None:
        self.config = config
        self.model = model
        self.split = split
        self.model_name = model_name
        self.ann = ann
        self.bundle_version = bundle_version
        self.started = time.time()
        self.metrics = MetricsRegistry()
        #: Streaming delta-log generation the parent (and, after each
        #: republish roll, every replica) has adopted.
        self.stream_generation = int(stream_generation)
        self._append_lock = asyncio.Lock()
        csr_filter = None
        if appended is not None and len(appended):
            # v3 bundles: appended known triples join the filter without
            # belonging to any train/valid/test part.
            csr_filter = build_csr_filter(
                split, ("train", "valid", "test")).append_rows(
                    appended, num_relations=split.num_relations,
                    num_entities=split.num_entities)
        self.pool = ReplicaPool(model, split, config, model_name=model_name,
                                csr_filter=csr_filter,
                                ann=ann, bundle_version=bundle_version,
                                registry=self.metrics)
        self.limiter = RateLimiter(config.rate_limit, config.rate_burst,
                                   max_clients=config.max_clients)
        self.admission = AdmissionController(config.max_queue_depth,
                                             retry_after=config.shed_retry_after)
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._health_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._drain_on_stop = True
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self._m_requests = self.metrics.counter(
            "pool_requests_total", "front-end requests by route and code",
            labels=("route", "code"))
        self._m_latency = self.metrics.histogram(
            "pool_request_seconds",
            "end-to-end latency of requests the front end answered")
        self._g_depth = self.metrics.gauge(
            "pool_queue_depth", "admitted requests queued or in flight",
            labels=("route",))
        self._c_shed = self.metrics.counter(
            "pool_shed_total", "requests shed at admission", labels=("reason",))
        self._c_deadline = self.metrics.counter(
            "pool_deadline_exceeded_total",
            "requests answered 504 after their deadline passed")
        self._g_draining = self.metrics.gauge(
            "pool_draining", "1 while a graceful drain is in progress")
        #: Front-end SLO gauges (scope="pool": end-to-end latency incl.
        #: queueing, vs the workers' scope="serve" engine-side series).
        self.slo = SLOTracker(self.metrics, scope="pool")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_bundle(cls, path: str, config: PoolConfig, *, ann: str = "auto",
                    strict: bool = True) -> "PoolServer":
        """Load a checkpoint bundle once and build the tier around it.

        ``ann`` follows the same ``auto|off|require|build`` policy as
        :meth:`repro.serve.PredictionEngine.from_bundle`; the resolved
        index is shared by every worker (fork copy-on-write).
        """
        from ..serve.ann import resolve_ann_policy
        from ..serve.bundle import load_bundle

        bundle = load_bundle(path, strict=strict)
        model = bundle.build_model(strict=strict)
        serving = resolve_ann_policy(bundle, model, ann)
        return cls(model, bundle.split, config, model_name=bundle.model_name,
                   ann=serving,
                   bundle_version=bundle.manifest.get("format_version"),
                   appended=bundle.appended,
                   stream_generation=bundle.stream_generation)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(self, host: str = "127.0.0.1", port: int = 0,
                    _started: threading.Event | None = None,
                    on_started=None) -> None:
        """Run the tier until :meth:`request_shutdown` is called."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self.pool.start(self._loop)
            self._server = await asyncio.start_server(
                self._handle_conn, host, port)
        except BaseException as exc:
            self._startup_error = exc
            if _started is not None:
                _started.set()
            raise
        self.host = host
        self.port = int(self._server.sockets[0].getsockname()[1])
        self._health_task = self._loop.create_task(self._health_loop())
        logger.info("pool serving %s on http://%s:%d with %d workers",
                    self.model_name, self.host, self.port, self.config.workers)
        if _started is not None:
            _started.set()
        if on_started is not None:
            on_started(self)
        try:
            await self._stop_event.wait()
        finally:
            await self._shutdown(self._drain_on_stop)

    def start_background(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Run :meth:`serve` on a daemon thread; returns the bound port."""
        started = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.serve(host, port, _started=started)),
            daemon=True, name="repro-pool-server")
        self._thread.start()
        if not started.wait(timeout=60.0):  # pragma: no cover - startup hang
            raise RuntimeError("pool server did not start within 60s")
        if self._startup_error is not None:
            raise RuntimeError("pool server failed to start") \
                from self._startup_error
        return self.port

    def request_shutdown(self, drain: bool = True) -> None:
        """Thread-safe shutdown trigger (SIGTERM handler, tests)."""
        self._drain_on_stop = drain
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # loop already closed: nothing to stop
                pass

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    async def _shutdown(self, drain: bool) -> None:
        self._draining = True
        self.pool.draining = True
        self._g_draining.set(1)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout
            while (self.pool.inflight_requests()
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.02)
        if self._health_task is not None:
            self._health_task.cancel()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.pool.stop()
        logger.info("pool server stopped (drain=%s)", drain)

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval)
            try:
                self.pool.health_tick()
            except Exception:  # noqa: BLE001 - keep the loop alive
                logger.exception("health tick failed")

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        peer = writer.get_extra_info("peername")
        client_ip = peer[0] if isinstance(peer, (tuple, list)) else "local"
        try:
            while True:
                try:
                    request_line = await asyncio.wait_for(
                        reader.readline(), timeout=_IDLE_TIMEOUT)
                except asyncio.TimeoutError:
                    break
                if not request_line or not request_line.strip():
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    await self._write(writer, 400, _envelope(
                        "bad_request", "malformed HTTP request line"), {},
                        close=True)
                    break
                method, path = parts[0], parts[1]
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length") or 0)
                except ValueError:
                    await self._write(writer, 400, _envelope(
                        "bad_request", "invalid Content-Length"), {},
                        close=True)
                    break
                if length > MAX_BODY_BYTES:
                    await self._write(writer, 413, _envelope(
                        "payload_too_large",
                        f"body exceeds {MAX_BODY_BYTES} bytes"), {},
                        close=True)
                    # Drain what the client is still sending before the
                    # close — otherwise unread bytes turn the FIN into a
                    # RST and the client sees a reset, not the 413.
                    remaining = min(length, 8 * MAX_BODY_BYTES)
                    while remaining > 0:
                        chunk = await reader.read(min(65536, remaining))
                        if not chunk:
                            break
                        remaining -= len(chunk)
                    break
                raw = await reader.readexactly(length) if length else b""
                status, payload, extra = await self._handle_request(
                    method, path, headers, raw, client_ip)
                close = (headers.get("connection", "").lower() == "close"
                         or self._draining)
                await self._write(writer, status, payload, extra, close=close)
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer already gone
                pass

    async def _write(self, writer: asyncio.StreamWriter, status: int,
                     payload, extra_headers: dict, close: bool = False) -> None:
        if isinstance(payload, str):  # pre-rendered Prometheus text
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                "Server: repro-pool/1",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(data)}"]
        for name, value in extra_headers.items():
            head.append(f"{name}: {value}")
        if close:
            head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + data)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _handle_request(self, method: str, path: str,
                              headers: dict[str, str], raw: bytes,
                              client_ip: str) -> tuple[int, object, dict]:
        """Route one parsed request, under a ``pool.request`` span.

        The span is this request's root (or the child of a
        client-supplied ``traceparent``); it stays open across the
        worker round-trip, so its duration is end-to-end including
        admission and queueing.  Every response — success, shed 429s,
        503/504/500 envelopes — carries ``X-Trace-Id``, and error
        envelopes embed the id too.  With tracing disabled and no
        client context, none of this allocates.
        """
        tick = time.perf_counter()
        client_tp = headers.get("traceparent")
        rctx = parse_traceparent(client_tp) if client_tp else None
        trace_id = None
        if rctx is not None or get_tracer().enabled:
            with activate(rctx):
                with trace("pool.request", method=method, route=path) as span:
                    trace_id = span.trace_id or (
                        rctx.trace_id if rctx is not None else None)
                    status, payload, extra = await self._route(
                        method, path, headers, raw, client_ip)
                    span.set_attr("status", status)
        else:
            status, payload, extra = await self._route(
                method, path, headers, raw, client_ip)
        if trace_id is not None:
            extra = dict(extra)
            extra.setdefault("X-Trace-Id", trace_id)
            if isinstance(payload, dict) and isinstance(
                    payload.get("error"), dict):
                payload["error"].setdefault("trace_id", trace_id)
        elapsed = time.perf_counter() - tick
        self._m_requests.labels(route=path, code=status).inc()
        self._m_latency.observe(elapsed)
        self.slo.observe(path, elapsed, status)
        logger.info("%s %s -> %d in %.1f ms", method, path, status,
                    1e3 * elapsed)
        return status, payload, extra

    async def _route(self, method: str, path: str, headers: dict[str, str],
                     raw: bytes, client_ip: str) -> tuple[int, object, dict]:
        extra: dict = {}
        try:
            if method == "GET" and path == "/healthz":
                status, payload = 200, self._healthz()
            elif method == "GET" and path == "/stats":
                status, payload = 200, await self._stats()
            elif method == "GET" and path == "/metrics":
                merged, _ = await self._merged_registry()
                status, payload = 200, render_prometheus(merged)
            elif method == "POST" and path in DISPATCH_ROUTES:
                status, payload, extra = await self._dispatch_post(
                    path, headers, raw, client_ip)
            elif method == "POST" and path == "/append":
                status, payload = await self._append(raw)
            else:
                status, payload = 404, _envelope(
                    "not_found", f"no route for {method} {path}")
        except Exception as exc:  # noqa: BLE001 - surface as a 500 envelope
            logger.exception("unhandled error for %s %s", method, path)
            status, payload = 500, _envelope("internal", str(exc))
        return status, payload, extra

    async def _dispatch_post(self, path: str, headers: dict[str, str],
                             raw: bytes,
                             client_ip: str) -> tuple[int, dict, dict]:
        from ..serve.http import ApiError, deadline_from_body

        try:
            body = json.loads(raw) if raw else None
        except json.JSONDecodeError as exc:
            return 400, _envelope("bad_json", f"invalid JSON body: {exc}"), {}
        if self._draining:
            return 503, _envelope(
                "draining", "server is draining; retry later"), {}
        client = headers.get("x-client-id") or client_ip
        admitted, retry = self.limiter.acquire(client)
        if not admitted:
            self._c_shed.labels(reason="rate_limited").inc()
            return (429,
                    _envelope("rate_limited",
                              f"client {client!r} exceeded "
                              f"{self.limiter.rate:g} requests/s"),
                    {"Retry-After": format_retry_after(retry)})
        ticket, retry = self.admission.try_admit(path)
        if ticket is None:
            self._c_shed.labels(reason="queue_full").inc()
            return (429,
                    _envelope("overloaded",
                              f"{path} queue is at its "
                              f"{self.config.max_queue_depth}-deep watermark"),
                    {"Retry-After": format_retry_after(retry)})
        try:
            self._g_depth.labels(route=path).set(self.admission.depth(path))
            try:
                deadline = deadline_from_body(body)
            except ApiError as exc:
                return exc.status, _envelope(exc.code, exc.message), {}
            timeout = (self.config.default_timeout if deadline is None
                       else deadline - time.monotonic())
            absolute = time.monotonic() + timeout
            try:
                pending = self.pool.dispatch("POST", path, body, absolute, path)
            except NoLiveWorkers:
                return 503, _envelope(
                    "worker_lost", "no live replica workers"), {}
            try:
                status, payload = await asyncio.wait_for(
                    pending.future, timeout=max(0.0, timeout))
            except asyncio.TimeoutError:
                self.pool.abandon(pending)
                self._c_deadline.inc()
                return 504, _envelope(
                    "deadline_exceeded",
                    f"request exceeded its {timeout * 1e3:.0f} ms deadline"), {}
            return status, payload, {}
        finally:
            ticket.release()
            self._g_depth.labels(route=path).set(self.admission.depth(path))

    async def _append(self, raw: bytes) -> tuple[int, dict]:
        """Apply a streaming append on the parent, then roll the replicas.

        Handled locally: workers hold read-only replicas, so the
        mutation happens on the parent model/vocabulary/filter and
        propagates via :meth:`ReplicaPool.republish` (a fresh shared
        segment + generation-stamped worker roll).  Serialised by a
        lock so concurrent appends commit in generation order.
        """
        from ..stream import (StreamError, StreamMetrics, apply_append_to_model,
                              default_encoder)

        try:
            body = json.loads(raw) if raw else None
        except json.JSONDecodeError as exc:
            return 400, _envelope("bad_json", f"invalid JSON body: {exc}")
        if self._draining:
            return 503, _envelope("draining", "server is draining; retry later")
        async with self._append_lock:
            encoder = getattr(self, "_stream_encoder", None)
            if encoder is None:
                encoder = default_encoder(self.model, self.split)
                self._stream_encoder = encoder
            try:
                delta, _ = apply_append_to_model(
                    self.model, self.split, body, encoder=encoder,
                    generation=self.stream_generation + 1, source="pool")
            except StreamError as exc:
                return exc.status, _envelope(exc.code, exc.message)
            if len(delta.triples):
                self.pool.csr_filter = self.pool.csr_filter.append_rows(
                    delta.triples, num_relations=self.split.num_relations,
                    num_entities=self.split.num_entities)
            self.stream_generation = delta.generation
            StreamMetrics(self.metrics).record(delta)
            with trace("pool.republish", generation=delta.generation):
                await self.pool.republish()
        return 200, {
            "applied": delta.log_entry(),
            "stream_generation": self.stream_generation,
            "num_entities": int(self.split.num_entities),
            "replicas": [h.liveness() for h in
                         sorted(self.pool.handles.values(),
                                key=lambda h: h.rank)],
        }

    # ------------------------------------------------------------------
    # Local routes
    # ------------------------------------------------------------------
    def _healthz(self) -> dict:
        replicas = [handle.liveness() for handle in
                    sorted(self.pool.handles.values(), key=lambda h: h.rank)]
        alive = sum(1 for row in replicas if row["alive"])
        if self._draining:
            status = "draining"
        elif alive == self.config.workers:
            status = "ok"
        elif alive > 0:
            status = "degraded"
        else:
            status = "down"
        ann_info = {"supports_ann": supports_ann(self.model),
                    "attached": self.ann is not None}
        if self.ann is not None:
            ann_info.update(self.ann.stats())
        return {
            "status": status,
            "model": self.model_name,
            "num_entities": self.split.num_entities,
            "num_relations": self.split.num_relations,
            "uptime_seconds": round(time.time() - self.started, 3),
            "version": __version__,
            "bundle": {"version": self.bundle_version},
            "stream": {"generation": int(self.stream_generation)},
            "ann": ann_info,
            "replicas": replicas,
        }

    async def _merged_registry(self) -> tuple[MetricsRegistry, list[dict]]:
        """Front-end metrics + every worker's snapshot, fan-in merged."""
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        rows = await self.pool.gather_worker_stats()
        for row in rows:
            snapshot = row.pop("metrics_snapshot", None)
            if snapshot:
                merged.merge(snapshot)
        return merged, rows

    async def _stats(self) -> dict:
        _, rows = await self._merged_registry()
        requests = int(self._m_requests.total()) + 1  # include this one
        errors = int(sum(child.value for key, child
                         in self._m_requests.children() if int(key[1]) >= 400))
        shed = {key[0]: int(child.value)
                for key, child in self._c_shed.children()}
        return {
            "server": {
                "mode": "pool",
                "requests": requests,
                "errors": errors,
                "uptime_seconds": round(time.time() - self.started, 3),
                "draining": self._draining,
                "workers": self.config.workers,
                "workers_alive": self.pool.num_live(),
            },
            "pool": {
                "queue_depth": self.admission.depths(),
                "max_queue_depth": self.config.max_queue_depth,
                "rate_limit": self.limiter.rate,
                "rate_clients": self.limiter.num_clients(),
                "shed": shed,
                "deadline_exceeded": int(self._c_deadline.value),
                "requeues": int(self.pool._c_requeues.value),
                "respawns": int(self.pool._c_respawns.value),
                "lost_requests": int(self.pool._c_lost.value),
                "late_responses": int(self.pool._c_late.value),
                "p50_ms": round(1e3 * self._m_latency.quantile(0.5), 3),
                "p99_ms": round(1e3 * self._m_latency.quantile(0.99), 3),
            },
            "slo": self.slo.stats(),
            "workers": rows,
        }


def run_pool(bundle: str, config: PoolConfig, *, host: str = "127.0.0.1",
             port: int = 8080, ann: str = "auto", on_started=None) -> int:
    """CLI entry: serve ``bundle`` with a pool, drain gracefully on signals."""
    import signal

    server = PoolServer.from_bundle(bundle, config, ann=ann)

    async def main() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: server.request_shutdown(drain=True))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await server.serve(host, port, on_started=on_started)

    asyncio.run(main())
    return 0
