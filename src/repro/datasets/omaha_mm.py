"""Synthetic OMAHA-MM: a sparse text+structure medical knowledge graph.

The real OMAHA-MM is extracted from the Open Medical and Healthcare
Alliance KG: sparser than DRKG-MM, 17 relation types, and — crucially
for the paper's experiments — its compound entities carry **no
molecular information**, so models see only textual and structured
modalities.  This generator reproduces those regime properties:

* entity types Disease / Symptom / Gene / GeneMutation / Drug;
* fewer relations, lower edge density (the paper notes OMAHA is sparse
  and prunes entities of degree < 5; we generate a moderately sparse
  graph directly);
* descriptions on every entity, molecules on none.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kg import KnowledgeGraph, Vocabulary, split_triples
from ..text import lexicon
from .base import MultimodalKG

__all__ = ["OMAHAConfig", "generate_omaha_mm"]

RELATIONS = (
    "has_symptom", "indicates", "disease_gene", "gene_mutation",
    "mutation_disease", "drug_treats", "drug_gene", "contraindicates",
    "comorbid_with", "symptom_of_gene", "drug_symptom", "stage_of",
    "complication", "risk_factor", "biomarker", "pathway", "subtype_of",
)

#: Undirected medical relations materialised in both directions (see the
#: symmetric-relation note in :mod:`repro.datasets.drkg_mm`).
SYMMETRIC_RELATIONS = frozenset({"comorbid_with", "pathway"})

_SYMPTOMS = (
    "fever", "cough", "chest pain", "shortness of breath", "weight loss",
    "night sweats", "joint pain", "swelling", "numbness", "blurred vision",
    "abdominal pain", "vomiting", "palpitations", "seizure", "jaundice",
)


@dataclass
class OMAHAConfig:
    """Size/shape knobs for the synthetic OMAHA-MM build."""

    num_diseases: int = 120
    num_symptoms: int = 60
    num_genes: int = 100
    num_mutations: int = 60
    num_drugs: int = 60
    num_triples: int = 2200
    noise: float = 0.12
    zipf_exponent: float = 1.2
    seed: int = 11

    def scaled(self, factor: float) -> "OMAHAConfig":
        """Copy with entity/triple counts scaled by ``factor``."""
        return OMAHAConfig(
            num_diseases=max(10, int(self.num_diseases * factor)),
            num_symptoms=max(8, int(self.num_symptoms * factor)),
            num_genes=max(8, int(self.num_genes * factor)),
            num_mutations=max(6, int(self.num_mutations * factor)),
            num_drugs=max(6, int(self.num_drugs * factor)),
            num_triples=max(120, int(self.num_triples * factor)),
            noise=self.noise,
            zipf_exponent=self.zipf_exponent,
            seed=self.seed,
        )


def generate_omaha_mm(config: OMAHAConfig | None = None) -> MultimodalKG:
    """Build the synthetic OMAHA-MM dataset (text + structure only)."""
    cfg = config or OMAHAConfig()
    rng = np.random.default_rng(cfg.seed)

    entities = Vocabulary()
    entity_types: list[str] = []
    descriptions: dict[int, str] = {}
    latent_family: dict[int, int] = {}

    def _add(name: str, etype: str, family: int, description: str) -> int:
        base, k = name, 2
        while name in entities:
            name = f"{base} ({k})"
            k += 1
        idx = entities.add(name)
        entity_types.append(etype)
        latent_family[idx] = family
        descriptions[idx] = description
        return idx

    n_disease_fams = len(lexicon.DISEASE_FAMILIES)
    n_gene_fams = len(lexicon.GENE_FAMILIES)

    diseases = []
    disease_fams = rng.integers(0, n_disease_fams, size=cfg.num_diseases)
    for fam in disease_fams:
        name = lexicon.disease_name(int(fam), rng)
        diseases.append(_add(name, "Disease", int(fam),
                             lexicon.disease_description(int(fam), name)))

    symptoms = []
    for s in range(cfg.num_symptoms):
        base = _SYMPTOMS[s % len(_SYMPTOMS)]
        name = base if s < len(_SYMPTOMS) else f"{base} grade {s // len(_SYMPTOMS) + 1}"
        symptoms.append(_add(name, "Symptom", s % n_disease_fams,
                             f"{name.capitalize()} is a clinical symptom reported by patients."))

    genes = []
    gene_fams = rng.integers(0, n_gene_fams, size=cfg.num_genes)
    for fam in gene_fams:
        symbol = lexicon.gene_symbol(int(fam), rng)
        genes.append(_add(symbol, "Gene", int(fam),
                          lexicon.gene_description(int(fam), symbol)))

    mutations = []
    for m in range(cfg.num_mutations):
        gene_pos = int(rng.integers(0, len(genes)))
        symbol = entities.name(genes[gene_pos])
        name = f"{symbol} c.{int(rng.integers(100, 9999))}{rng.choice(list('ACGT'))}>{rng.choice(list('ACGT'))}"
        mutations.append(_add(name, "GeneMutation", latent_family[genes[gene_pos]],
                              f"{name} is a point mutation of gene {symbol}."))

    drugs = []
    drug_fams = rng.integers(0, n_disease_fams, size=cfg.num_drugs)
    for fam in drug_fams:
        name = lexicon.drug_stem(rng) + str(rng.choice(["ol", "ine", "ide", "ate"]))
        drugs.append(_add(name, "Drug", int(fam),
                          f"{name} is a medication used in the management of chronic conditions."))

    relations = Vocabulary(RELATIONS)

    diseases_arr = np.asarray(diseases)
    symptoms_arr = np.asarray(symptoms)
    genes_arr = np.asarray(genes)
    drugs_arr = np.asarray(drugs)

    ranks = np.arange(1, len(entities) + 1, dtype=np.float64) ** (-cfg.zipf_exponent)
    rng.shuffle(ranks)
    popularity = ranks / ranks.sum()

    def pick(pool: np.ndarray) -> int:
        w = popularity[pool]
        return int(rng.choice(pool, p=w / w.sum()))

    triples: set[tuple[int, int, int]] = set()

    def add_edge(h: int, rel: str, t: int) -> None:
        if h == t:
            return
        triples.add((int(h), relations.id(rel), int(t)))
        if rel in SYMMETRIC_RELATIONS:
            triples.add((int(t), relations.id(rel), int(h)))

    # Edge templates: (relation, head pool fn, tail pool fn, family-coupled?)
    symptoms_by_fam = {f: symptoms_arr[np.array([latent_family[s] for s in symptoms]) == f]
                       for f in range(n_disease_fams)}
    genes_by_fam = {f: genes_arr[gene_fams == f] for f in range(n_gene_fams)}
    disease_gene_map = {f: list(range(f, n_gene_fams, n_disease_fams)) for f in range(n_disease_fams)}

    for _ in range(cfg.num_triples):
        roll = rng.random()
        noisy = rng.random() < cfg.noise
        if roll < 0.28:  # Disease - Symptom
            d = int(rng.choice(diseases_arr))
            fam = latent_family[d]
            pool = symptoms_by_fam.get(fam)
            s = pick(symptoms_arr if noisy or pool is None or not len(pool) else pool)
            rel = "has_symptom" if rng.random() < 0.7 else "indicates"
            if rel == "indicates":
                add_edge(s, rel, d)
            else:
                add_edge(d, rel, s)
        elif roll < 0.48:  # Disease - Gene / biomarker / pathway
            d = int(rng.choice(diseases_arr))
            fams = disease_gene_map[latent_family[d]]
            fam = int(rng.choice(fams)) if fams else int(rng.integers(0, n_gene_fams))
            pool = genes_by_fam.get(fam)
            g = pick(genes_arr if noisy or pool is None or not len(pool) else pool)
            rel = ("disease_gene", "biomarker", "pathway")[latent_family[d] % 3]
            add_edge(d, rel, g)
        elif roll < 0.62:  # Gene - Mutation - Disease chain
            m_pos = int(rng.integers(0, len(mutations)))
            g = genes[int(rng.integers(0, len(genes)))] if noisy else None
            if g is None:
                # Recover the owning gene by name prefix.
                mname = entities.name(mutations[m_pos])
                symbol = mname.split(" c.")[0]
                g = entities.id(symbol)
            add_edge(g, "gene_mutation", mutations[m_pos])
            if rng.random() < 0.5:
                fam = latent_family[mutations[m_pos]] % n_disease_fams
                pool = diseases_arr[np.array([latent_family[d] for d in diseases]) == fam]
                d = pick(diseases_arr if noisy or not len(pool) else pool)
                add_edge(mutations[m_pos], "mutation_disease", d)
        elif roll < 0.82:  # Drug edges
            dr = int(rng.choice(drugs_arr))
            fam = latent_family[dr]
            sub = rng.random()
            if sub < 0.5:
                pool = diseases_arr[np.array([latent_family[d] for d in diseases]) == fam]
                d = pick(diseases_arr if noisy or not len(pool) else pool)
                rel = "drug_treats" if rng.random() < 0.8 else "contraindicates"
                add_edge(dr, rel, d)
            elif sub < 0.8:
                fams = disease_gene_map[fam]
                gfam = int(rng.choice(fams)) if fams else 0
                pool = genes_by_fam.get(gfam)
                g = pick(genes_arr if noisy or pool is None or not len(pool) else pool)
                add_edge(dr, "drug_gene", g)
            else:
                s = pick(symptoms_arr)
                add_edge(dr, "drug_symptom", s)
        else:  # Disease - Disease structure
            a = int(rng.choice(diseases_arr))
            fam = latent_family[a]
            pool = diseases_arr[np.array([latent_family[d] for d in diseases]) == fam]
            b = pick(diseases_arr if noisy or len(pool) < 2 else pool)
            rel = ("comorbid_with", "complication", "risk_factor",
                   "stage_of", "subtype_of")[int(rng.integers(0, 5))]
            add_edge(a, rel, b)

    triple_array = np.asarray(sorted(triples), dtype=np.int64)
    graph = KnowledgeGraph(
        entities=entities,
        relations=relations,
        triples=triple_array,
        entity_types=entity_types,
        name="OMAHA-MM(synthetic)",
    )
    split = split_triples(graph, rng)
    return MultimodalKG(
        split=split,
        molecules={},
        descriptions=descriptions,
        scaffold_of={},
        latent_family=latent_family,
    )
