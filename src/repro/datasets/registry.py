"""Dataset registry with in-process caching.

Experiments and benchmarks request datasets by name + scale so every
harness shares identical data (and pays the generation cost once per
process).
"""

from __future__ import annotations

from .base import MultimodalKG
from .drkg_mm import DRKGConfig, generate_drkg_mm
from .omaha_mm import OMAHAConfig, generate_omaha_mm

__all__ = ["get_dataset", "dataset_names", "clear_cache"]

_CACHE: dict[tuple[str, float, int], MultimodalKG] = {}

_BUILDERS = {
    "drkg-mm": lambda factor, seed: generate_drkg_mm(
        DRKGConfig(seed=seed).scaled(factor)
    ),
    "omaha-mm": lambda factor, seed: generate_omaha_mm(
        OMAHAConfig(seed=seed).scaled(factor)
    ),
}


def dataset_names() -> list[str]:
    """Names accepted by :func:`get_dataset`."""
    return sorted(_BUILDERS)


def get_dataset(name: str, scale: float = 1.0, seed: int = 0) -> MultimodalKG:
    """Build (or fetch the cached) dataset ``name`` at ``scale``.

    Parameters
    ----------
    name:
        ``"drkg-mm"`` or ``"omaha-mm"`` (case-insensitive).
    scale:
        Multiplier on the default entity/triple counts; experiments use
        small fractions for smoke runs and 1.0 for the bench runs.
    seed:
        Offset added to the builder's base seed, giving independent
        replicates.
    """
    key = (name.lower(), float(scale), int(seed))
    if key not in _CACHE:
        try:
            builder = _BUILDERS[key[0]]
        except KeyError:
            raise KeyError(f"unknown dataset {name!r}; known: {dataset_names()}") from None
        base_seed = 7 if key[0] == "drkg-mm" else 11
        _CACHE[key] = builder(scale, base_seed + seed * 1000)
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to control memory)."""
    _CACHE.clear()
