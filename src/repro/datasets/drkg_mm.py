"""Synthetic DRKG-MM: a multimodal drug-repurposing knowledge graph.

The real DRKG-MM augments the public Drug Repurposing Knowledge Graph
with molecular structures and textual descriptions; it is not
redistributable here, so this module generates a *schema-faithful*
synthetic stand-in that preserves exactly the properties the paper's
experiments measure:

1. **Entity/relation schema** — Compounds, Genes, Diseases and
   Side-Effects connected by the six relation families of Tables IV/V
   (Gene-Gene, Compound-Compound, Compound-Gene, Compound-Disease,
   Compound-Side-Effect, Disease-Gene) with triple-count proportions
   matching Table V (Gene-Gene and Compound-Compound dominate).
2. **Long-tail degree distributions** (Fig. 4) — partner selection uses
   Zipf-distributed popularity weights.
3. **Cross-modal common cause** — every compound is grown from a latent
   pharmacophore scaffold that simultaneously fixes its molecular core,
   its name affix ("-cillin", "Sulfa-", ...), its description phrase, its
   target gene families, its treated disease families, and its
   characteristic side effects.  Multimodal redundancy is therefore real
   signal, as in Fig. 1/Fig. 7, not decoration.
4. **Noise** — a configurable fraction of edges is rewired uniformly at
   random so no modality is perfectly predictive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kg import KnowledgeGraph, Vocabulary, split_triples
from ..mol import SCAFFOLDS, MoleculeGenerator
from ..text import lexicon
from .base import MultimodalKG

__all__ = ["DRKGConfig", "generate_drkg_mm"]

#: DRKG-MM relation names per family (subset of the 107 real relations,
#: keeping >1 relation per family so the "Same"/"Not-Same" diamond
#: structure of Fig. 1 is meaningful).
RELATIONS = {
    "compound_gene": ("targets", "inhibits", "binds"),
    "compound_disease": ("treats", "palliates"),
    "compound_compound": ("ddi", "resembles"),
    "gene_gene": ("interacts", "coexpression", "regulates"),
    "disease_gene": ("associates", "upregulates"),
    "compound_side_effect": ("causes",),
}

#: Relations that are symmetric in the real DRKG (drug-drug interaction
#: is mutual; protein interaction and coexpression are undirected) and
#: are therefore materialised in both directions.  Symmetric relations
#: are a key reason translational models underperform on real BKGs
#: (TransE cannot satisfy h + r = t and t + r = h simultaneously).
SYMMETRIC_RELATIONS = frozenset({"ddi", "resembles", "interacts", "coexpression"})


@dataclass
class DRKGConfig:
    """Size/shape knobs for the synthetic DRKG-MM build.

    Triple-count targets are per relation family and roughly follow the
    Table V proportions (scaled down).  ``noise`` is the fraction of
    edges whose endpoint is rewired uniformly at random.
    """

    num_compounds: int = 140
    num_genes: int = 160
    num_diseases: int = 50
    num_side_effects: int = 30
    gene_gene_triples: int = 2400
    compound_compound_triples: int = 1400
    compound_gene_triples: int = 900
    compound_side_effect_triples: int = 500
    disease_gene_triples: int = 450
    compound_disease_triples: int = 350
    noise: float = 0.08
    zipf_exponent: float = 1.1
    seed: int = 7

    def scaled(self, factor: float) -> "DRKGConfig":
        """Return a copy with entity and triple counts scaled by ``factor``."""
        return DRKGConfig(
            num_compounds=max(10, int(self.num_compounds * factor)),
            num_genes=max(10, int(self.num_genes * factor)),
            num_diseases=max(5, int(self.num_diseases * factor)),
            num_side_effects=max(5, int(self.num_side_effects * factor)),
            gene_gene_triples=max(50, int(self.gene_gene_triples * factor)),
            compound_compound_triples=max(30, int(self.compound_compound_triples * factor)),
            compound_gene_triples=max(20, int(self.compound_gene_triples * factor)),
            compound_side_effect_triples=max(10, int(self.compound_side_effect_triples * factor)),
            disease_gene_triples=max(10, int(self.disease_gene_triples * factor)),
            compound_disease_triples=max(10, int(self.compound_disease_triples * factor)),
            noise=self.noise,
            zipf_exponent=self.zipf_exponent,
            seed=self.seed,
        )


def _zipf_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Random permutation of a Zipf law: long-tail popularity weights."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    rng.shuffle(weights)
    return weights / weights.sum()


def _weighted_choice(candidates: np.ndarray, weights: np.ndarray,
                     rng: np.random.Generator) -> int:
    """Sample one candidate proportionally to its popularity weight."""
    w = weights[candidates]
    total = w.sum()
    if total <= 0:
        return int(rng.choice(candidates))
    return int(rng.choice(candidates, p=w / total))


def generate_drkg_mm(config: DRKGConfig | None = None) -> MultimodalKG:
    """Build the synthetic DRKG-MM dataset.

    Deterministic given ``config.seed``.  Returns a
    :class:`~repro.datasets.base.MultimodalKG` with molecules on every
    compound and descriptions on every entity.
    """
    cfg = config or DRKGConfig()
    rng = np.random.default_rng(cfg.seed)

    entities = Vocabulary()
    entity_types: list[str] = []
    descriptions: dict[int, str] = {}
    scaffold_of: dict[int, str] = {}
    latent_family: dict[int, int] = {}
    molecules = {}

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    mol_gen = MoleculeGenerator(rng)
    compound_scaffolds = rng.integers(0, len(SCAFFOLDS), size=cfg.num_compounds)
    compounds: list[int] = []
    used_names: set[str] = set()
    for c in range(cfg.num_compounds):
        scaffold = SCAFFOLDS[int(compound_scaffolds[c])]
        name = scaffold.affixed_name(lexicon.drug_stem(rng))
        while name in used_names:
            name = scaffold.affixed_name(lexicon.drug_stem(rng))
        used_names.add(name)
        idx = entities.add(name)
        compounds.append(idx)
        entity_types.append("Compound")
        scaffold_of[idx] = scaffold.name
        latent_family[idx] = int(compound_scaffolds[c])
        molecules[idx] = mol_gen.generate(scaffold)
        descriptions[idx] = f"{name} is {scaffold.description_phrase}."

    num_gene_families = len(lexicon.GENE_FAMILIES)
    gene_families = rng.integers(0, num_gene_families, size=cfg.num_genes)
    genes: list[int] = []
    for g in range(cfg.num_genes):
        fam = int(gene_families[g])
        symbol = lexicon.gene_symbol(fam, rng)
        while symbol in used_names:
            symbol = lexicon.gene_symbol(fam, rng)
        used_names.add(symbol)
        idx = entities.add(symbol)
        genes.append(idx)
        entity_types.append("Gene")
        latent_family[idx] = fam
        descriptions[idx] = lexicon.gene_description(fam, symbol)

    num_disease_families = len(lexicon.DISEASE_FAMILIES)
    disease_families = rng.integers(0, num_disease_families, size=cfg.num_diseases)
    diseases: list[int] = []
    for d in range(cfg.num_diseases):
        fam = int(disease_families[d])
        name = lexicon.disease_name(fam, rng)
        while name in used_names:
            name = lexicon.disease_name(fam, rng)
        used_names.add(name)
        idx = entities.add(name)
        diseases.append(idx)
        entity_types.append("Disease")
        latent_family[idx] = fam
        descriptions[idx] = lexicon.disease_description(fam, name)

    side_effects: list[int] = []
    for s in range(cfg.num_side_effects):
        base = lexicon.SIDE_EFFECTS[s % len(lexicon.SIDE_EFFECTS)]
        name = base if s < len(lexicon.SIDE_EFFECTS) else f"{base} type {s // len(lexicon.SIDE_EFFECTS) + 1}"
        idx = entities.add(name)
        side_effects.append(idx)
        entity_types.append("Side-Effect")
        latent_family[idx] = s % len(lexicon.SIDE_EFFECTS)
        descriptions[idx] = lexicon.side_effect_description(name)

    compounds_arr = np.asarray(compounds)
    genes_arr = np.asarray(genes)
    diseases_arr = np.asarray(diseases)
    side_effects_arr = np.asarray(side_effects)

    # Popularity weights drive the Fig. 4 long tail.
    popularity = np.zeros(len(entities))
    popularity[compounds_arr] = _zipf_weights(len(compounds), cfg.zipf_exponent, rng)
    popularity[genes_arr] = _zipf_weights(len(genes), cfg.zipf_exponent, rng)
    popularity[diseases_arr] = _zipf_weights(len(diseases), cfg.zipf_exponent, rng)
    popularity[side_effects_arr] = _zipf_weights(len(side_effects), cfg.zipf_exponent, rng)

    relations = Vocabulary()
    for family_relations in RELATIONS.values():
        for rel in family_relations:
            relations.add(rel)

    # Lookup helpers for scaffold-driven wiring -------------------------
    genes_by_family: dict[int, np.ndarray] = {
        fam: genes_arr[gene_families == fam] for fam in range(num_gene_families)
    }
    diseases_by_family: dict[int, np.ndarray] = {
        fam: diseases_arr[disease_families == fam] for fam in range(num_disease_families)
    }
    # Scaffold -> characteristic side-effect subset (deterministic).
    scaffold_side_effects = {
        s.name: side_effects_arr[
            rng.choice(len(side_effects_arr),
                       size=max(2, len(side_effects_arr) // 4), replace=False)
        ]
        for s in SCAFFOLDS
    }
    # Disease family -> gene families (via the scaffolds treating it).
    disease_gene_families: dict[int, list[int]] = {f: [] for f in range(num_disease_families)}
    for s in SCAFFOLDS:
        for dfam in s.treated_disease_families:
            disease_gene_families[dfam % num_disease_families].extend(s.target_gene_families)

    triples: set[tuple[int, int, int]] = set()

    def add_edge(h: int, rel_name: str, t: int) -> None:
        if h == t:
            return
        triples.add((int(h), relations.id(rel_name), int(t)))
        if rel_name in SYMMETRIC_RELATIONS:
            triples.add((int(t), relations.id(rel_name), int(h)))

    def maybe_noise(pool: np.ndarray, chosen: int) -> int:
        if rng.random() < cfg.noise:
            return int(rng.choice(pool))
        return chosen

    scaffold_list = [SCAFFOLDS[int(i)] for i in compound_scaffolds]

    # ------------------------------------------------------------------
    # Compound-Gene: drugs hit genes in their scaffold's target families.
    # The relation used depends deterministically on (scaffold, gene
    # family) so that same-scaffold drugs use the *same* relation to the
    # same gene — the diamond structure of Fig. 1.
    # ------------------------------------------------------------------
    cg_relations = RELATIONS["compound_gene"]
    for _ in range(cfg.compound_gene_triples):
        c_pos = int(rng.integers(0, len(compounds)))
        scaffold = scaffold_list[c_pos]
        fam = int(rng.choice(scaffold.target_gene_families)) % num_gene_families
        pool = genes_by_family[fam]
        if not len(pool):
            pool = genes_arr
        gene = _weighted_choice(pool, popularity, rng)
        gene = maybe_noise(genes_arr, gene)
        rel = cg_relations[(latent_family[compounds[c_pos]] + fam) % len(cg_relations)]
        if rng.random() < cfg.noise:
            rel = cg_relations[int(rng.integers(0, len(cg_relations)))]
        add_edge(compounds[c_pos], rel, gene)

    # Compound-Disease: scaffold treats its disease families.
    cd_relations = RELATIONS["compound_disease"]
    for _ in range(cfg.compound_disease_triples):
        c_pos = int(rng.integers(0, len(compounds)))
        scaffold = scaffold_list[c_pos]
        fam = int(rng.choice(scaffold.treated_disease_families)) % num_disease_families
        pool = diseases_by_family[fam]
        if not len(pool):
            pool = diseases_arr
        disease = _weighted_choice(pool, popularity, rng)
        disease = maybe_noise(diseases_arr, disease)
        rel = cd_relations[latent_family[compounds[c_pos]] % len(cd_relations)]
        add_edge(compounds[c_pos], rel, disease)

    # Compound-Compound: same-scaffold drugs resemble each other and
    # shared-target drugs interact.
    for _ in range(cfg.compound_compound_triples):
        a_pos = int(rng.integers(0, len(compounds)))
        same_scaffold = compounds_arr[compound_scaffolds == compound_scaffolds[a_pos]]
        if rng.random() < 0.6 and len(same_scaffold) > 1:
            b = _weighted_choice(same_scaffold, popularity, rng)
            rel = "resembles"
        else:
            b = _weighted_choice(compounds_arr, popularity, rng)
            rel = "ddi"
        b = maybe_noise(compounds_arr, int(b))
        add_edge(compounds[a_pos], rel, b)

    # Gene-Gene: intra-family interaction with popularity hubs.
    gg_relations = RELATIONS["gene_gene"]
    for _ in range(cfg.gene_gene_triples):
        a_pos = int(rng.integers(0, len(genes)))
        fam = int(gene_families[a_pos])
        pool = genes_by_family[fam]
        if rng.random() < 0.7 and len(pool) > 1:
            b = _weighted_choice(pool, popularity, rng)
        else:
            b = _weighted_choice(genes_arr, popularity, rng)
        b = maybe_noise(genes_arr, int(b))
        rel = gg_relations[fam % len(gg_relations)]
        if rng.random() < cfg.noise:
            rel = gg_relations[int(rng.integers(0, len(gg_relations)))]
        add_edge(genes[a_pos], rel, b)

    # Disease-Gene: disease associates with gene families its treating
    # scaffolds target (biological consistency).
    dg_relations = RELATIONS["disease_gene"]
    for _ in range(cfg.disease_gene_triples):
        d_pos = int(rng.integers(0, len(diseases)))
        dfam = int(disease_families[d_pos])
        gene_fams = disease_gene_families.get(dfam) or list(range(num_gene_families))
        fam = int(rng.choice(gene_fams)) % num_gene_families
        pool = genes_by_family[fam]
        if not len(pool):
            pool = genes_arr
        gene = _weighted_choice(pool, popularity, rng)
        gene = maybe_noise(genes_arr, gene)
        rel = dg_relations[dfam % len(dg_relations)]
        add_edge(diseases[d_pos], rel, gene)

    # Compound-Side-Effect: scaffold-characteristic side effects.
    for _ in range(cfg.compound_side_effect_triples):
        c_pos = int(rng.integers(0, len(compounds)))
        scaffold = scaffold_list[c_pos]
        pool = scaffold_side_effects[scaffold.name]
        effect = _weighted_choice(pool, popularity, rng)
        effect = maybe_noise(side_effects_arr, effect)
        add_edge(compounds[c_pos], "causes", effect)

    triple_array = np.asarray(sorted(triples), dtype=np.int64)
    graph = KnowledgeGraph(
        entities=entities,
        relations=relations,
        triples=triple_array,
        entity_types=entity_types,
        name="DRKG-MM(synthetic)",
    )
    split = split_triples(graph, rng)
    return MultimodalKG(
        split=split,
        molecules=molecules,
        descriptions=descriptions,
        scaffold_of=scaffold_of,
        latent_family=latent_family,
    )
