"""Pre-trained modality feature construction.

The paper fixes the non-structural inputs before training CamE:
CharacterBERT vectors for text, pre-trained-GIN vectors for molecules,
CompGCN vectors for structure.  This module performs the analogous
pipeline on the synthetic datasets and returns fixed feature matrices
aligned with entity ids.

Entities missing a modality (e.g. genes have no molecule; every OMAHA
compound lacks one) receive a zero vector, matching the common practice
of padding absent modalities; CamE's fusion learns to down-weight them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gnn import pretrain_structural_embeddings
from ..mol import GINEncoder, MaskedAttributePretrainer
from ..text import CharCNNEncoder, CharVocab, MaskedCharPretrainer, NgramHashEncoder
from .base import MultimodalKG

__all__ = ["ModalityFeatures", "build_features"]


@dataclass
class ModalityFeatures:
    """Fixed per-entity feature matrices for the three modalities.

    Attributes
    ----------
    molecular:
        ``(num_entities, d_m)``; zero rows where no molecule exists.
    textual:
        ``(num_entities, d_t)`` text features for every entity.
    structural:
        ``(num_entities, d_s)`` CompGCN features from the train graph.
    has_molecule:
        Boolean mask of entities that carry the molecular modality.
    """

    molecular: np.ndarray
    textual: np.ndarray
    structural: np.ndarray
    has_molecule: np.ndarray

    @property
    def dims(self) -> tuple[int, int, int]:
        return (self.molecular.shape[1], self.textual.shape[1], self.structural.shape[1])

    def drop_modality(self, modality: str) -> "ModalityFeatures":
        """Zero out one modality (ablation helper for Fig. 6 w/o TD & w/o MS)."""
        if modality not in ("molecular", "textual", "structural"):
            raise ValueError(f"unknown modality {modality!r}")
        replace = {modality: np.zeros_like(getattr(self, modality))}
        return ModalityFeatures(
            molecular=replace.get("molecular", self.molecular),
            textual=replace.get("textual", self.textual),
            structural=replace.get("structural", self.structural),
            has_molecule=self.has_molecule if modality != "molecular"
            else np.zeros_like(self.has_molecule),
        )


def _standardize(features: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """Column-standardise features (over present rows only)."""
    out = features.astype(np.float64).copy()
    rows = out[mask] if mask is not None else out
    if not len(rows):
        return out
    mu = rows.mean(axis=0)
    sigma = rows.std(axis=0)
    sigma[sigma < 1e-8] = 1.0
    if mask is not None:
        out[mask] = (out[mask] - mu) / sigma
    else:
        out = (out - mu) / sigma
    return out


def build_features(
    mkg: MultimodalKG,
    rng: np.random.Generator,
    d_m: int = 32,
    d_t: int = 32,
    d_s: int = 32,
    text_encoder: str = "ngram",
    gin_epochs: int = 3,
    text_epochs: int = 2,
    compgcn_epochs: int = 3,
) -> ModalityFeatures:
    """Run the full modality pre-training pipeline on ``mkg``.

    Parameters
    ----------
    text_encoder:
        ``"ngram"`` (deterministic hashed n-grams; fast default) or
        ``"charcnn"`` (trainable CNN pre-trained with masked characters).
    gin_epochs / text_epochs / compgcn_epochs:
        Self-supervised pre-training budgets.
    """
    num_entities = mkg.num_entities

    # ---------------- molecular ----------------
    molecular = np.zeros((num_entities, d_m))
    has_molecule = np.zeros(num_entities, dtype=bool)
    if mkg.has_molecules:
        ids = sorted(mkg.molecules)
        mols = [mkg.molecules[i] for i in ids]
        encoder = GINEncoder(hidden_dim=d_m, num_layers=2, rng=rng)
        MaskedAttributePretrainer(encoder, rng, lr=0.02).train(
            mols, epochs=gin_epochs, batch_size=32
        )
        emb = encoder.encode(mols)
        id_arr = np.asarray(ids, dtype=np.int64)
        molecular[id_arr] = emb
        has_molecule[id_arr] = True
        molecular = _standardize(molecular, mask=has_molecule)

    # ---------------- textual ----------------
    texts = [mkg.entity_text(i) for i in range(num_entities)]
    if text_encoder == "ngram":
        textual = NgramHashEncoder(dim=d_t).encode(texts)
    elif text_encoder == "charcnn":
        vocab = CharVocab(max_len=96)
        cnn = CharCNNEncoder(vocab, dim=d_t, rng=rng)
        MaskedCharPretrainer(cnn, rng, lr=0.02).train(
            texts, epochs=text_epochs, batch_size=32
        )
        textual = cnn.encode(texts)
    else:
        raise ValueError(f"unknown text encoder {text_encoder!r}")
    textual = _standardize(textual)

    # ---------------- structural ----------------
    structural = pretrain_structural_embeddings(
        mkg.split.train,
        num_entities=num_entities,
        num_relations=mkg.num_relations,
        dim=d_s,
        rng=rng,
        epochs=compgcn_epochs,
    )
    structural = _standardize(structural)

    return ModalityFeatures(
        molecular=molecular,
        textual=textual,
        structural=structural,
        has_molecule=has_molecule,
    )
