"""Shared container for multimodal knowledge-graph datasets."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kg import KGSplit
from ..mol import Molecule

__all__ = ["MultimodalKG"]


@dataclass
class MultimodalKG:
    """A knowledge graph bundled with its non-structural modalities.

    Attributes
    ----------
    split:
        Train/valid/test partition (8:1:1, Table II protocol).
    molecules:
        Entity id -> molecular graph.  Only compound entities carry
        molecules; on OMAHA-MM the map is empty (the paper's setting).
    descriptions:
        Entity id -> textual description string (name morphology plus a
        one-sentence definition).  Present for every entity.
    scaffold_of:
        Compound entity id -> scaffold name (generator ground truth, used
        only by analysis experiments, never leaked to models).
    latent_family:
        Entity id -> latent family index per type (generator ground
        truth, analysis only).
    """

    split: KGSplit
    molecules: dict[int, Molecule] = field(default_factory=dict)
    descriptions: dict[int, str] = field(default_factory=dict)
    scaffold_of: dict[int, str] = field(default_factory=dict)
    latent_family: dict[int, int] = field(default_factory=dict)

    @property
    def graph(self):
        return self.split.graph

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def num_entities(self) -> int:
        return self.graph.num_entities

    @property
    def num_relations(self) -> int:
        return self.graph.num_relations

    @property
    def has_molecules(self) -> bool:
        return bool(self.molecules)

    def entity_name(self, entity_id: int) -> str:
        return self.graph.entities.name(entity_id)

    def entity_text(self, entity_id: int) -> str:
        """Name + description, the string the text encoder consumes."""
        name = self.entity_name(entity_id)
        desc = self.descriptions.get(entity_id, "")
        return f"{name}. {desc}" if desc else name

    def entities_of_type(self, entity_type: str) -> np.ndarray:
        """Ids of all entities with the given semantic type."""
        types = self.graph.entity_types
        return np.asarray(
            [i for i, t in enumerate(types) if t == entity_type], dtype=np.int64
        )
