"""``repro.datasets`` — synthetic multimodal BKG datasets.

Schema-faithful stand-ins for the paper's DRKG-MM and OMAHA-MM
(:mod:`repro.datasets.drkg_mm`, :mod:`repro.datasets.omaha_mm`), the
modality feature pre-training pipeline (:mod:`repro.datasets.features`),
and a cached registry (:mod:`repro.datasets.registry`).
"""

from .base import MultimodalKG
from .drkg_mm import DRKGConfig, generate_drkg_mm
from .features import ModalityFeatures, build_features
from .omaha_mm import OMAHAConfig, generate_omaha_mm
from .registry import clear_cache, dataset_names, get_dataset

__all__ = [
    "MultimodalKG",
    "DRKGConfig",
    "generate_drkg_mm",
    "OMAHAConfig",
    "generate_omaha_mm",
    "ModalityFeatures",
    "build_features",
    "get_dataset",
    "dataset_names",
    "clear_cache",
]
