#!/usr/bin/env python3
"""End-to-end approximate-serving smoke test: export, cold-load, verify.

Exercises the ANN artifact pipeline the way production would::

    python examples/ann_smoke.py [--model M] [--epochs N]

Steps:

1. train a tiny model with the experiment runner, build an int8 IVF
   index over its entity table, and export one bundle carrying both;
2. cold-load the bundle into a fresh ``PredictionEngine`` (the index is
   deserialized, never rebuilt) and require the artifact;
3. verify approximate top-k at full probe is *identical* to the exact
   path (candidate generation covers every entity, the exact rerank
   restores true scores and ordering), and that ``approx=False``
   results are bit-identical to an engine with no index at all;
4. run the engine's recall self-check at the default ``nprobe`` and
   print it together with the memory footprint.

Exits non-zero on any mismatch, so CI can run it as a smoke gate.
"""

import argparse
import sys
import tempfile

import numpy as np

from repro.experiments import get_scale, train_model
from repro.serve import AnnServing, PredictionEngine, load_bundle, save_bundle


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="TransE")
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--k", type=int, default=5)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        bundle_path = f"{tmp}/{args.model}_ann.bundle"

        # 1. Train, index, export.
        result = train_model(args.model, "drkg-mm", get_scale(args.scale),
                             seed=0, epochs=args.epochs)
        from repro.experiments.runner import get_prepared

        scale = get_scale(args.scale)
        mkg, feats = get_prepared("drkg-mm", scale, 0)
        ann = AnnServing.build(result.model, store="int8", seed=0)
        save_bundle(bundle_path, result.model, args.model, mkg.split, feats,
                    dim=scale.model_dim, ann=ann)
        print(f"exported: {bundle_path} "
              f"(nlist={ann.index.nlist}, store={ann.index.store})")

        # 2. Cold load; the index must come from the artifact.
        engine = PredictionEngine.from_bundle(bundle_path, ann="require")
        assert engine.ann is not None and engine.ann.source == "bundle"
        manifest = load_bundle(bundle_path).manifest
        assert manifest["ann"]["nlist"] == ann.index.nlist, manifest["ann"]
        print(f"loaded  : bundled index, format_version="
              f"{manifest['ann']['format_version']}")

        # 3a. Full probe + exact rerank == exact path, bit-for-bit ids
        # and scores equal to 1e-12.
        nlist = engine.ann.index.nlist
        plain = PredictionEngine.from_bundle(bundle_path, ann="off")
        for head in (0, 3, 7):
            for rel in (0, 1):
                ids_e, sc_e = engine.top_k_tails(head, rel, args.k,
                                                 approx=False)
                ids_a, sc_a = engine.top_k_tails(head, rel, args.k,
                                                 approx=True, nprobe=nlist)
                assert np.array_equal(ids_a, ids_e), (head, rel, ids_a, ids_e)
                assert np.allclose(sc_a, sc_e, rtol=1e-12), (head, rel)
                # 3b. approx=False must ignore the index entirely.
                ids_p, sc_p = plain.top_k_tails(head, rel, args.k)
                assert np.array_equal(ids_e, ids_p)
                assert np.array_equal(sc_e, sc_p)
        print(f"verified: full-probe approx == exact for 6 queries (k={args.k})")

        # 4. Recall at the default probe setting.
        recall = engine.ann_self_check(num_queries=32, k=10)
        memory = engine.ann.index.memory()
        print(f"recall  : self-check recall@10={recall:.3f} at "
              f"nprobe={engine.ann.index.default_nprobe}/{nlist}; "
              f"int8 table={memory['table_bytes']}B "
              f"({100 * memory['table_ratio_vs_float64']:.0f}% of float64)")
        assert memory["table_ratio_vs_float64"] <= 0.30

    print("OK: ANN smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
