#!/usr/bin/env python3
"""Drug repurposing: rank candidate diseases for every drug.

The Compound-Disease relation is the paper's motivating application —
predicting missing (drug, treats, disease) links proposes repurposing
hypotheses.  This example trains CamE, then for a handful of drugs
prints the top diseases the model predicts beyond what the KG already
contains, alongside the drug's scaffold and description so the
multimodal rationale is visible.

    python examples/drug_repurposing.py [--epochs N]
"""

import argparse

import numpy as np

from repro.core import CamE, CamEConfig, OneToNTrainer
from repro.datasets import build_features, get_dataset
from repro.eval import build_filter


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument("--drugs", type=int, default=5,
                        help="number of example drugs to query")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    mkg = get_dataset("drkg-mm", scale=args.scale, seed=args.seed)
    feats = build_features(mkg, rng, d_m=24, d_t=24, d_s=24)
    model = CamE(mkg.num_entities, mkg.num_relations, feats,
                 CamEConfig(entity_dim=48, relation_dim=48), rng=rng)
    OneToNTrainer(model, mkg.split, rng, lr=1e-3, batch_size=128).fit(args.epochs)

    graph = mkg.graph
    treats = graph.relations.id("treats")
    diseases = set(mkg.entities_of_type("Disease").tolist())
    known = build_filter(mkg.split)

    compounds = mkg.entities_of_type("Compound")
    picks = rng.choice(compounds, size=min(args.drugs, len(compounds)), replace=False)
    print("=== drug repurposing candidates (relation: treats) ===\n")
    for drug in picks:
        drug = int(drug)
        scores = model.predict_tails(np.array([drug]), np.array([treats]))[0]
        already = set(known.get((drug, treats), np.array([], dtype=np.int64)).tolist())
        ranked = [int(e) for e in np.argsort(-scores)
                  if int(e) in diseases and int(e) not in already][:3]
        name = graph.entities.name(drug)
        print(f"{name}  [{mkg.scaffold_of.get(drug, '?')}]")
        print(f"  \"{mkg.descriptions.get(drug, '')}\"")
        for rank, disease in enumerate(ranked, 1):
            print(f"  candidate {rank}: {graph.entities.name(disease):20s} "
                  f"score={scores[disease]:+.2f}  "
                  f"({mkg.descriptions.get(disease, '')})")
        print()


if __name__ == "__main__":
    main()
