#!/usr/bin/env python3
"""End-to-end serving smoke test: train, export, serve, query, verify.

Exercises the whole ``repro.serve`` stack in one process and asserts the
HTTP answers are bit-identical to calling the model directly::

    python examples/serve_smoke.py [--model M] [--epochs N]

Steps:

1. train a tiny model with the experiment runner and export a
   checkpoint bundle (``repro.serve.save_bundle`` via the runner hook);
2. reload the bundle, rebuild the model, and wrap it in a
   ``PredictionEngine`` + ``MicroBatcher`` + stdlib HTTP server;
3. hit ``/healthz``, ``/predict`` (filtered and unfiltered), ``/score``
   and ``/stats`` over real HTTP and compare every score against
   ``model.predict_tails`` on the directly-trained model;
4. shut everything down cleanly.

Exits non-zero on any mismatch, so CI can run it as a smoke gate.
"""

import argparse
import json
import sys
import tempfile
import threading
import urllib.request

import numpy as np

from repro.experiments import get_scale, train_model
from repro.serve import MicroBatcher, PredictionEngine, make_server, topk_indices


def _call(base: str, method: str, path: str, body: dict | None = None) -> dict:
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(base + path, data=data, method=method,
                                 headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="TransE")
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--k", type=int, default=5)
    args = parser.parse_args()

    # 1. Train + export through the runner hook.
    with tempfile.TemporaryDirectory() as tmp:
        bundle_path = f"{tmp}/{args.model}.bundle"
        result = train_model(args.model, "drkg-mm", get_scale(args.scale),
                             seed=0, epochs=args.epochs,
                             export_bundle=bundle_path)
        model = result.model
        print(f"trained : {args.model} ({args.epochs} epochs, "
              f"scale={args.scale})")

        # 2. Bundle -> engine -> batcher -> HTTP server.
        engine = PredictionEngine.from_bundle(bundle_path)
        batcher = MicroBatcher(engine, max_batch=16, max_delay=0.002)
        server = make_server(engine, batcher)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        base = f"http://{host}:{port}"
        print(f"serving : {base}")

        try:
            # 3a. Liveness.
            health = _call(base, "GET", "/healthz")
            assert health["status"] == "ok", health
            assert health["model"] == args.model, health

            # 3b. Unfiltered top-k must match direct predict_tails bit-for-bit.
            heads, rels = [0, 1, 2], [0, 1, 0]
            for h, r in zip(heads, rels):
                got = _call(base, "POST", "/predict",
                            {"head": h, "relation": r, "k": args.k})
                row = model.predict_tails(np.array([h]), np.array([r]))[0]
                want = topk_indices(row, args.k)
                assert [x["id"] for x in got["results"]] == want.tolist(), (h, r)
                assert [x["score"] for x in got["results"]] == \
                    [float(s) for s in row[want]], (h, r)
            print(f"predict : unfiltered top-{args.k} bit-identical "
                  f"for {len(heads)} queries")

            # 3c. Filtered prediction: known tails masked, rest identical.
            h, r = int(engine.split.test[0, 0]), int(engine.split.test[0, 1])
            got = _call(base, "POST", "/predict",
                        {"head": h, "relation": r, "k": args.k,
                         "filter_known": True})
            row = model.predict_tails(np.array([h]), np.array([r]))[0].copy()
            known = engine.filter.row(h, r)
            row[known] = -np.inf
            want = topk_indices(row, args.k)
            assert [x["id"] for x in got["results"]] == want.tolist()
            assert not set(x["id"] for x in got["results"]) & set(known.tolist())
            print(f"predict : filtered top-{args.k} bit-identical, "
                  f"{len(known)} known tails excluded")

            # 3d. Explicit triple scoring.
            triple = engine.split.test[0].tolist()
            got = _call(base, "POST", "/score", {"triples": [triple]})
            direct = model.predict_tails(np.array([triple[0]]),
                                         np.array([triple[1]]))[0, triple[2]]
            assert got["scores"][0] == float(direct)
            print(f"score   : test triple {triple} -> {got['scores'][0]:.4f}")

            # 3e. Stats from all three layers.
            stats = _call(base, "GET", "/stats")
            assert stats["server"]["requests"] >= 6
            assert stats["engine"]["queries_served"] >= 5
            assert stats["batcher"]["requests_processed"] >= 4
            print(f"stats   : {stats['server']['requests']} requests, "
                  f"cache hit rate {stats['engine']['cache']['hit_rate']}, "
                  f"mean batch {stats['batcher']['mean_batch_size']}")
        finally:
            # 4. Clean shutdown.
            server.shutdown()
            server.server_close()
            batcher.close()
            thread.join(timeout=10)
    print("serve smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
