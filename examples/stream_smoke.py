#!/usr/bin/env python3
"""Streaming smoke test: export, pool up, append an unseen compound, rank it.

Exercises the whole ``repro.stream`` stack end to end on a tiny DRKG-MM
split::

    python examples/stream_smoke.py [--workers N]

Steps:

1. build a TransE model plus an IVF ANN index, export a checkpoint
   bundle, and serve it with ``workers`` forked replica processes
   (``PoolServer.from_bundle``);
2. record baseline exact top-k predictions for a probe query on every
   replica;
3. ``POST /append`` one unseen compound (name + description + molecular
   feature row) with a known triple linking it to an existing entity —
   the parent grows its model inductively, publishes a fresh shared
   segment, and rolls all replicas onto it;
4. assert on **every** replica that (a) the pre-existing probe
   predictions are byte-identical to the baseline, (b) the new entity is
   rankable through the exact path AND the (stale-prefix) ANN path, and
   (c) ``filter_known`` excludes the appended triple;
5. re-export the grown bundle through the CLI append path and check the
   v3 manifest journals the delta;
6. drain and exit non-zero on any failure, so CI can run it as the
   streaming gate.
"""

import argparse
import json
import multiprocessing as mp
import os
import sys
import tempfile
import urllib.error
import urllib.request

import numpy as np

from repro.baselines import build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.pool import PoolConfig, PoolServer
from repro.serve import load_bundle, save_bundle
from repro.serve.ann import AnnServing


def http(port, method, path, body=None, timeout=60.0):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    if "fork" not in mp.get_all_start_methods():
        print("fork start method unavailable; nothing to smoke-test")
        return 0

    print("building tiny DRKG-MM model + ANN index, exporting bundle ...")
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.12))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(1),
                           dim=16)
    ann = AnnServing.build(model)
    bundle_dir = os.path.join(tempfile.mkdtemp(prefix="repro-stream-smoke-"),
                              "bundle")
    save_bundle(bundle_dir, model, "TransE", mkg.split, feats, dim=16, ann=ann)

    config = PoolConfig(workers=args.workers, health_interval=0.1)
    server = PoolServer.from_bundle(bundle_dir, config)
    port = server.start_background()
    print(f"pool serving bundle on port {port} with {args.workers} workers")

    status, health = http(port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok", health
    assert health["stream"]["generation"] == 0, health
    old_n = health["num_entities"]

    entities = mkg.split.graph.entities
    probe_head = entities.name(3)
    probe = {"head": probe_head, "relation": 0, "k": 5}
    # One baseline per replica slot (round-robin covers every worker).
    baselines = []
    for _ in range(args.workers * 2):
        status, payload = http(port, "POST", "/predict", probe)
        assert status == 200, payload
        baselines.append(payload["results"])
    assert all(b == baselines[0] for b in baselines), "replicas disagree"

    print("appending unseen compound STREAM::aspirin-like ...")
    new_name = "STREAM::aspirin-like"
    body = {
        "entities": [{
            "name": new_name, "type": "Compound",
            "description": "acetylated salicylate analogue, streamed in",
            "molecule": np.linspace(0.0, 1.0, feats.molecular.shape[1]).tolist(),
        }],
        "triples": [[new_name, 0, probe_head]],
    }
    status, applied = http(port, "POST", "/append", body)
    assert status == 200, applied
    assert applied["stream_generation"] == 1, applied
    assert applied["num_entities"] == old_n + 1, applied
    assert all(r["alive"] for r in applied["replicas"]), applied
    print(f"applied: {applied['applied']}")

    status, health = http(port, "GET", "/healthz")
    assert health["stream"]["generation"] == 1, health
    assert health["num_entities"] == old_n + 1, health

    # Hit every replica several times over: pre-existing predictions must
    # be byte-identical, the appended entity rankable both ways.
    for i in range(args.workers * 3):
        status, payload = http(port, "POST", "/predict", probe)
        assert status == 200, payload
        assert payload["results"] == baselines[0], (
            f"pre-existing predictions changed after append (round {i}): "
            f"{payload['results']} != {baselines[0]}")

        status, exact = http(port, "POST", "/predict",
                             {"head": new_name, "relation": 0, "k": 5})
        assert status == 200 and len(exact["results"]) == 5, exact

        status, approx = http(port, "POST", "/predict",
                              {"head": new_name, "relation": 0, "k": 5,
                               "approx": True})
        assert status == 200 and len(approx["results"]) >= 1, approx

        status, filtered = http(port, "POST", "/predict",
                                {"head": new_name, "relation": 0,
                                 "k": old_n + 1, "filter_known": True})
        assert status == 200, filtered
        names = [row["entity"] for row in filtered["results"]]
        assert probe_head not in names, (
            "appended known triple leaked through filter_known")
    print(f"all {args.workers} replicas: baseline byte-identical, "
          f"'{new_name}' rankable exact+ANN, appended triple filtered")

    print("draining ...")
    server.request_shutdown(drain=True)
    server.join(timeout=20)

    # Offline path: the CLI append journals the same delta into a v3
    # bundle (fresh copy of the original export).
    from repro.serve.cli import main as serve_cli

    request_path = bundle_dir + ".append.json"
    with open(request_path, "w", encoding="utf-8") as handle:
        json.dump(body, handle)
    assert serve_cli(["append", "--bundle", bundle_dir,
                      "--request", request_path]) == 0
    grown = load_bundle(bundle_dir)
    assert grown.stream_generation == 1, grown.manifest
    assert grown.stream_log[0]["entities"] == [new_name], grown.stream_log
    assert len(grown.appended) == 1, grown.appended
    clone = grown.build_model()
    assert clone.num_entities == old_n + 1
    assert grown.split.graph.entities.resolve(new_name) == old_n
    print("CLI re-export: bundle v3 with journaled delta reloads cleanly")

    print(f"OK: append -> republish -> rank on {args.workers} replicas "
          "+ offline CLI append round-trip")
    return 0


if __name__ == "__main__":
    sys.exit(main())
