#!/usr/bin/env python3
"""Build a custom multimodal BKG from scratch with the public API.

Demonstrates the full pipeline on a hand-made toy knowledge graph:
defining entities/relations/triples, attaching molecules (built
atom-by-atom) and text descriptions, pre-training modality features,
training CamE, and asking it a question.  Use this as a template for
loading your own biological data.

    python examples/custom_multimodal_kg.py
"""

import numpy as np

from repro.core import CamE, CamEConfig, OneToNTrainer
from repro.datasets import MultimodalKG, build_features
from repro.kg import KnowledgeGraph, Vocabulary, split_triples
from repro.mol import MoleculeGenerator, scaffold_by_name


def build_toy_kg(rng: np.random.Generator) -> MultimodalKG:
    """A tiny hand-wired BKG: two drug classes, genes, diseases."""
    entities = Vocabulary()
    entity_types, descriptions, molecules, scaffold_of = [], {}, {}, {}
    mol_gen = MoleculeGenerator(rng)

    def add(name, etype, description, scaffold=None):
        idx = entities.add(name)
        entity_types.append(etype)
        descriptions[idx] = description
        if scaffold is not None:
            sc = scaffold_by_name(scaffold)
            molecules[idx] = mol_gen.generate(sc)
            scaffold_of[idx] = scaffold
        return idx

    # Penicillin-class antibiotics and statins, with their targets.
    drugs = {
        "Amoxicillin": add("Amoxicillin", "Compound",
                           "Amoxicillin is a penicillin-type antibiotic.", "beta_lactam"),
        "Oxacillin": add("Oxacillin", "Compound",
                         "Oxacillin is a penicillin-type antibiotic.", "beta_lactam"),
        "Lovastatin": add("Lovastatin", "Compound",
                          "Lovastatin lowers cholesterol.", "statin"),
        "Simvastatin": add("Simvastatin", "Compound",
                           "Simvastatin lowers cholesterol.", "statin"),
    }
    genes = {g: add(g, "Gene", f"{g} encodes a drug target.")
             for g in ("PBP1A", "PBP2B", "HMGCR", "CYP3A4")}
    diseases = {d: add(d, "Disease", f"{d} is a disease.")
                for d in ("Pneumonia", "Sepsis", "Hypercholesterolemia")}

    relations = Vocabulary(["targets", "treats", "resembles"])
    triples = []

    def link(h, r, t):
        triples.append((h, relations.id(r), t))

    for antibiotic in ("Amoxicillin", "Oxacillin"):
        link(drugs[antibiotic], "targets", genes["PBP1A"])
        link(drugs[antibiotic], "targets", genes["PBP2B"])
        link(drugs[antibiotic], "treats", diseases["Pneumonia"])
    link(drugs["Amoxicillin"], "treats", diseases["Sepsis"])
    link(drugs["Amoxicillin"], "resembles", drugs["Oxacillin"])
    for statin in ("Lovastatin", "Simvastatin"):
        link(drugs[statin], "targets", genes["HMGCR"])
        link(drugs[statin], "targets", genes["CYP3A4"])
        link(drugs[statin], "treats", diseases["Hypercholesterolemia"])
    link(drugs["Lovastatin"], "resembles", drugs["Simvastatin"])

    graph = KnowledgeGraph(entities=entities, relations=relations,
                           triples=np.asarray(triples, dtype=np.int64),
                           entity_types=entity_types, name="toy-bkg")
    # Tiny KG: keep almost everything in train.
    split = split_triples(graph, rng, ratios=(0.9, 0.05, 0.05))
    return MultimodalKG(split=split, molecules=molecules,
                        descriptions=descriptions, scaffold_of=scaffold_of)


def main() -> None:
    rng = np.random.default_rng(7)
    mkg = build_toy_kg(rng)
    print(f"built {mkg.graph}")

    feats = build_features(mkg, rng, d_m=12, d_t=12, d_s=12)
    model = CamE(mkg.num_entities, mkg.num_relations, feats,
                 CamEConfig(entity_dim=16, relation_dim=16,
                            fusion_dim=16, fusion_height=4, fusion_width=4,
                            conv_channels=8),
                 rng=rng)
    OneToNTrainer(model, mkg.split, rng, lr=5e-3, batch_size=16).fit(60)

    # Ask: what does Oxacillin treat?  (The KG only says Pneumonia for
    # Oxacillin; a good model should also surface Sepsis by analogy with
    # Amoxicillin -- same scaffold, same targets.)
    graph = mkg.graph
    oxacillin = graph.entities.id("Oxacillin")
    treats = graph.relations.id("treats")
    scores = model.predict_tails(np.array([oxacillin]), np.array([treats]))[0]
    disease_ids = mkg.entities_of_type("Disease")
    ranked = sorted(((float(scores[d]), graph.entities.name(int(d)))
                     for d in disease_ids), reverse=True)
    print("\nWhat might Oxacillin treat?")
    for score, name in ranked:
        print(f"  {name:22s} score={score:+.2f}")


if __name__ == "__main__":
    main()
