#!/usr/bin/env python3
"""Quickstart: train CamE on synthetic DRKG-MM and evaluate link prediction.

Runs in about a minute on one CPU core::

    python examples/quickstart.py [--epochs N] [--scale S]
"""

import argparse

import numpy as np

from repro.core import CamE, CamEConfig, OneToNTrainer
from repro.datasets import build_features, get_dataset
from repro.eval import evaluate_ranking


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=30,
                        help="training epochs (default: 30)")
    parser.add_argument("--scale", type=float, default=0.35,
                        help="dataset size multiplier (default: 0.35)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)

    # 1. Build the multimodal BKG: entities with molecules + descriptions.
    mkg = get_dataset("drkg-mm", scale=args.scale, seed=args.seed)
    print(f"dataset : {mkg.graph}")
    print(f"split   : {mkg.split.summary()}")

    # 2. Pre-train the modality features (GIN molecules, n-gram text,
    #    CompGCN structure) -- the paper's fixed inputs.
    feats = build_features(mkg, rng, d_m=24, d_t=24, d_s=24)
    print(f"features: molecular/textual/structural dims = {feats.dims}")

    # 3. Build and train CamE with the 1-to-N protocol (Eqn. 16 loss).
    config = CamEConfig(entity_dim=48, relation_dim=48)
    model = CamE(mkg.num_entities, mkg.num_relations, feats, config, rng=rng)
    print(f"model   : CamE with {model.num_parameters():,} parameters")

    trainer = OneToNTrainer(model, mkg.split, rng, lr=config.learning_rate,
                            batch_size=128)
    report = trainer.fit(args.epochs, eval_every=max(args.epochs // 3, 1),
                         eval_max_queries=100, verbose=True)
    print(f"trained : final loss {report.final_loss:.4f}, "
          f"{report.mean_epoch_seconds:.2f}s/epoch")

    # 4. Filtered link-prediction evaluation (MR / MRR / Hits@n).
    metrics = evaluate_ranking(model, mkg.split, part="test",
                               max_queries=300, rng=rng)
    print(f"test    : {metrics}")


if __name__ == "__main__":
    main()
