#!/usr/bin/env python3
"""Serve-tier smoke test: pool up, traced request, mixed load, kill, drain.

Exercises the whole ``repro.pool`` stack end to end on a tiny DRKG-MM
split::

    python examples/pool_smoke.py [--workers N] [--requests N]

Steps:

1. build a TransE model plus an IVF ANN index and serve them with
   ``workers`` forked replica processes behind the asyncio front end
   (one shared ``FlatSpec`` segment, zero-copy replicas), with span
   export enabled (front-end JSONL + one ``.w<rank>`` file per worker);
2. send one ``/predict`` and remember its ``X-Trace-Id``;
3. drive a mix of exact and approximate ``/predict`` queries plus
   ``/score`` calls and check every response (envelope shape, scores
   identical to the in-process engine for the exact path);
4. SIGKILL one worker mid-run and assert the tier recovers: the health
   loop respawns a replacement, ``/healthz`` returns to full strength,
   and requests keep succeeding (worker-loss 503s are allowed only for
   requests the dead worker had already been handed twice);
5. drain gracefully and assert no ``repro-pool`` processes survive;
6. stitch the exported span files and assert the remembered request is
   **one** trace: the front-end's ``pool.request`` span parenting the
   worker's ``serve.request`` (different pids, correct parent ids) —
   then print its tree, exactly what ``python -m repro.obs report
   --trace <id>`` renders.

Exits non-zero on any failure, so CI can run it as the pool gate.
"""

import argparse
import glob
import json
import multiprocessing as mp
import os
import signal
import sys
import tempfile
import time
import urllib.error
import urllib.request

import numpy as np

from repro.baselines import build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.obs import (
    build_trace_trees,
    disable_tracing,
    enable_tracing,
    load_events,
)
from repro.obs.report import render_trace_tree
from repro.pool import PoolConfig, PoolServer
from repro.serve import PredictionEngine
from repro.serve.ann import AnnServing


def http(port, method, path, body=None, timeout=30.0, want_headers=False):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            result = response.status, json.loads(response.read())
            headers = dict(response.headers)
    except urllib.error.HTTPError as error:
        result = error.code, json.loads(error.read())
        headers = dict(error.headers)
    return (*result, headers) if want_headers else result


def wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--requests", type=int, default=40)
    args = parser.parse_args()

    if "fork" not in mp.get_all_start_methods():
        print("fork start method unavailable; nothing to smoke-test")
        return 0

    print("building tiny DRKG-MM model + ANN index ...")
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.12))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(1),
                           dim=16)
    ann = AnnServing.build(model)
    reference = PredictionEngine(model, mkg.split, model_name="TransE")

    trace_path = os.path.join(tempfile.mkdtemp(prefix="repro-pool-smoke-"),
                              "trace.jsonl")
    enable_tracing(trace_path, flush_every=1)

    config = PoolConfig(workers=args.workers, health_interval=0.1)
    server = PoolServer(model, mkg.split, config, model_name="TransE", ann=ann)
    port = server.start_background()
    print(f"pool serving on port {port} with {args.workers} workers; "
          f"spans -> {trace_path}(.w*)")

    status, health = http(port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok", health
    assert len(health["replicas"]) == args.workers, health
    assert health["ann"]["attached"] is True, health
    victim_pid = health["replicas"][0]["pid"]

    test = mkg.split.test
    codes = {}
    kill_at = args.requests // 3
    for i in range(args.requests):
        if i == kill_at:
            print(f"killing worker pid {victim_pid} mid-run ...")
            os.kill(victim_pid, signal.SIGKILL)
        h = int(test[i % len(test), 0])
        r = int(test[i % len(test), 1])
        body = {"head": h, "relation": r, "k": 5}
        if i % 3 == 1:
            body["approx"] = True
        status, payload = http(port, "POST", "/predict", body)
        codes[status] = codes.get(status, 0) + 1
        if status == 200:
            if body.get("approx"):
                # IVF recall: probed cells may hold fewer than k candidates.
                assert 1 <= len(payload["results"]) <= 5, payload
            else:
                assert len(payload["results"]) == 5, payload
                ids, scores = reference.top_k_tails(h, r, 5)
                got = [(item["id"], item["score"])
                       for item in payload["results"]]
                want = list(zip(ids.tolist(), scores.tolist()))
                assert got == want, (got, want)  # exact path: bit-identical
        else:
            assert status == 503, (status, payload)
            assert payload["error"]["code"] == "worker_lost", payload
        if i % 4 == 3:
            status, payload = http(port, "POST", "/score",
                                   {"triples": [[h, r, int(test[0, 2])]]})
            assert status == 200 and len(payload["scores"]) == 1, payload
    print(f"load done: status codes {codes}")
    assert codes.get(200, 0) >= args.requests * 0.8, codes

    def recovered():
        _, h = http(port, "GET", "/healthz")
        pids = {row["pid"] for row in h["replicas"]}
        return (h["status"] == "ok" and victim_pid not in pids
                and all(row["alive"] for row in h["replicas"]))

    assert wait_until(recovered), "pool did not respawn to full strength"
    status, stats = http(port, "GET", "/stats")
    assert stats["pool"]["respawns"] >= 1, stats["pool"]
    assert stats["server"]["workers_alive"] == args.workers, stats["server"]
    print(f"recovered: respawns={stats['pool']['respawns']}, "
          f"requeues={stats['pool']['requeues']}, "
          f"lost={stats['pool']['lost_requests']}")

    # Traced probe after recovery: every live worker survives to the
    # drain below, which is what flushes the per-rank span files.
    probe = {"head": int(test[0, 0]), "relation": int(test[0, 1]), "k": 5}
    status, _, headers = http(port, "POST", "/predict", probe,
                              want_headers=True)
    assert status == 200, status
    probe_trace_id = headers["X-Trace-Id"]
    assert len(probe_trace_id) == 32, headers
    print(f"traced probe request: X-Trace-Id={probe_trace_id}")

    print("draining ...")
    server.request_shutdown(drain=True)
    server.join(timeout=20)

    stragglers = [p.name for p in mp.active_children()
                  if p.name.startswith("repro-pool")]
    assert not stragglers, f"worker processes survived drain: {stragglers}"

    # -- cross-process trace reconstruction ----------------------------
    disable_tracing()  # flush the front-end's buffered spans
    span_files = [trace_path] + sorted(glob.glob(trace_path + ".w*"))
    assert len(span_files) >= 2, f"no worker span files next to {trace_path}"
    trees = build_trace_trees(load_events(span_files))
    probes = [t for t in trees if t["trace_id"] == probe_trace_id]
    assert len(probes) == 1, f"probe trace not stitched: {probe_trace_id}"
    tree = probes[0]
    assert len(tree["pids"]) == 2, tree["pids"]  # front-end + one worker
    assert len(tree["roots"]) == 1, [r["record"]["name"]
                                     for r in tree["roots"]]
    root = tree["roots"][0]
    assert root["record"]["name"] == "pool.request", root["record"]
    serve_spans = [c for c in root["children"]
                   if c["record"]["name"] == "serve.request"]
    assert serve_spans, [c["record"]["name"] for c in root["children"]]
    assert serve_spans[0]["record"]["pid"] != root["record"]["pid"]
    assert serve_spans[0]["record"]["parent_id"] == root["record"]["span_id"]
    print(f"stitched probe trace across pids {tree['pids']}:")
    print(render_trace_tree(tree))

    print(f"OK: {args.workers}-worker pool + traced probe + mixed "
          "exact/approx load + mid-run worker kill + clean drain + "
          "cross-process trace reconstruction")
    return 0


if __name__ == "__main__":
    sys.exit(main())
