#!/usr/bin/env python3
"""Multi-core training smoke test: train on N workers, verify, shut down.

Exercises the whole ``repro.dist`` stack end to end on a tiny DRKG-MM
split::

    python examples/dist_smoke.py [--workers N] [--epochs N] [--model M]

Steps:

1. train a model through the experiment runner with ``workers`` worker
   processes (``DistributedEngine``: shared-memory parameter mirroring,
   gradient averaging, one synchronized optimizer step per batch);
2. evaluate on the test split through the sharded evaluator and check
   the metrics are non-degenerate (finite losses, ranks actually
   computed, MRR strictly better than random);
3. assert the worker pool shut down cleanly — no orphaned ``repro-dist``
   processes survive the run.

Exits non-zero on any failure, so CI can run it as the 2-worker gate.
"""

import argparse
import multiprocessing as mp
import sys

import numpy as np

from repro.experiments import get_scale, train_model


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--model", default="DistMult")
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--scale", default="smoke")
    args = parser.parse_args()

    if args.workers > 1 and "fork" not in mp.get_all_start_methods():
        print("fork start method unavailable; nothing to smoke-test")
        return 0

    scale = get_scale(args.scale)
    print(f"training {args.model} on drkg-mm ({args.scale} scale, "
          f"{args.workers} workers, {args.epochs} epochs) ...")
    result = train_model(args.model, "drkg-mm", scale, epochs=args.epochs,
                         workers=args.workers)

    losses = result.report.epoch_losses
    metrics = result.test_metrics
    print(f"epoch losses: {[round(l, 4) for l in losses]}")
    print(f"test metrics: {metrics}")

    assert len(losses) == args.epochs, f"expected {args.epochs} epochs"
    assert np.isfinite(losses).all(), f"non-finite training loss: {losses}"
    assert metrics.num_queries > 0, "evaluation ranked no queries"
    assert np.isfinite(metrics.mrr) and metrics.mrr > 0, "degenerate MRR"
    # Filtered MRR (in %) of a random scorer is ~100 * (1/N) * H_N; even a
    # couple of epochs on the tiny graph beats 1% comfortably.
    assert metrics.mrr > 1.0, f"MRR {metrics.mrr} looks untrained/degenerate"

    stragglers = [p.name for p in mp.active_children()
                  if p.name.startswith("repro-dist")]
    assert not stragglers, f"worker processes survived shutdown: {stragglers}"

    print(f"OK: {args.workers}-worker training + sharded eval + clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
