#!/usr/bin/env python3
"""Drug-drug interaction screening, comparing CamE to a unimodal model.

Trains both CamE and ConvE, then measures filtered Hits@10 specifically
on the Compound-Compound (DDI) test triples — the relation family where
the paper's Table IV shows the largest multimodal advantage, because
molecular structure is directly informative about interactions.

    python examples/drug_drug_interaction.py [--epochs N]
"""

import argparse

import numpy as np

from repro.baselines import ConvE
from repro.core import CamE, CamEConfig, OneToNTrainer
from repro.datasets import build_features, get_dataset
from repro.eval import compute_ranks, RankingMetrics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    mkg = get_dataset("drkg-mm", scale=args.scale, seed=args.seed)
    feats = build_features(mkg, rng, d_m=24, d_t=24, d_s=24)

    types = mkg.graph.entity_types
    ddi_tests = np.array([t for t in mkg.split.test
                          if types[int(t[0])] == "Compound"
                          and types[int(t[2])] == "Compound"])
    print(f"{len(ddi_tests)} compound-compound test triples\n")

    results = {}
    for name in ("ConvE", "CamE"):
        model_rng = np.random.default_rng(args.seed + 1)
        if name == "CamE":
            model = CamE(mkg.num_entities, mkg.num_relations, feats,
                         CamEConfig(entity_dim=48, relation_dim=48), rng=model_rng)
            epochs = int(args.epochs * 1.5)  # CamE converges slower (Fig. 8)
        else:
            model = ConvE(mkg.num_entities, mkg.num_relations, dim=48, rng=model_rng)
            epochs = args.epochs
        OneToNTrainer(model, mkg.split, model_rng, lr=1e-3 if name == "CamE" else 3e-3,
                      batch_size=128).fit(epochs)
        ranks = compute_ranks(model, mkg.split, ddi_tests,
                              rng=np.random.default_rng(2))
        results[name] = RankingMetrics.from_ranks(ranks)
        print(f"{name:6s} on DDI triples: {results[name]}")

    lift = results["CamE"].mrr - results["ConvE"].mrr
    print(f"\nCamE vs ConvE on drug-drug interactions: {lift:+.1f} MRR points "
          "(the molecule modality at work)")


if __name__ == "__main__":
    main()
