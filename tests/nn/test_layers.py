"""Layer behaviour: shapes, modes, parameter discovery."""

import numpy as np
import pytest

from repro import nn

RNG = np.random.default_rng(11)


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(5, 3, rng=RNG)
        out = layer(nn.Tensor(RNG.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self):
        layer = nn.Linear(5, 3, bias=False, rng=RNG)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_affine_correct(self):
        layer = nn.Linear(2, 2, rng=RNG)
        x = RNG.normal(size=(3, 2))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(nn.Tensor(x)).data, expected)


class TestEmbedding:
    def test_lookup(self):
        emb = nn.Embedding(10, 4, rng=RNG)
        out = emb(np.array([1, 1, 9]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_gradient_accumulates_for_repeated_ids(self):
        emb = nn.Embedding(5, 2, rng=RNG)
        out = emb(np.array([3, 3]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[3], [2.0, 2.0])


class TestConv2d:
    def test_shape_with_padding(self):
        conv = nn.Conv2d(3, 8, 3, padding=1, rng=RNG)
        out = conv(nn.Tensor(RNG.normal(size=(2, 3, 6, 6))))
        assert out.shape == (2, 8, 6, 6)

    def test_parameters_counted(self):
        conv = nn.Conv2d(3, 8, 3, rng=RNG)
        assert conv.weight.data.shape == (8, 3, 3, 3)
        assert conv.bias.data.shape == (8,)


class TestNormalization:
    def test_layernorm_shape_and_params(self):
        ln = nn.LayerNorm(6)
        out = ln(nn.Tensor(RNG.normal(size=(4, 6))))
        assert out.shape == (4, 6)
        assert len(list(ln.parameters())) == 2

    def test_batchnorm1d_train_vs_eval(self):
        bn = nn.BatchNorm1d(3)
        x = nn.Tensor(RNG.normal(size=(16, 3)) * 3 + 2)
        bn.train()
        out_train = bn(x).data
        np.testing.assert_allclose(out_train.mean(axis=0), np.zeros(3), atol=1e-9)
        bn.eval()
        out_eval = bn(x).data
        assert not np.allclose(out_train, out_eval)

    def test_batchnorm2d_normalises_per_channel(self):
        bn = nn.BatchNorm2d(2)
        x = nn.Tensor(RNG.normal(size=(4, 2, 3, 3)) + 10)
        out = bn(x).data
        assert out.mean() == pytest.approx(0.0, abs=1e-9)

    def test_batchnorm_buffers_registered(self):
        bn = nn.BatchNorm1d(3)
        names = {n for n, _ in bn.buffers()}
        assert names == {"running_mean", "running_var"}


class TestDropout:
    def test_eval_identity(self):
        drop = nn.Dropout(0.9, rng=np.random.default_rng(0))
        drop.eval()
        x = nn.Tensor(np.ones((3, 3)))
        np.testing.assert_allclose(drop(x).data, np.ones((3, 3)))

    def test_train_zeroes_some(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        out = drop(nn.Tensor(np.ones((20, 20)))).data
        assert (out == 0).sum() > 0


class TestSequentialAndActivations:
    def test_sequential_chains(self):
        net = nn.Sequential(nn.Linear(4, 8, rng=RNG), nn.ReLU(),
                            nn.Linear(8, 2, rng=RNG), nn.Sigmoid())
        out = net(nn.Tensor(RNG.normal(size=(5, 4))))
        assert out.shape == (5, 2)
        assert ((out.data > 0) & (out.data < 1)).all()

    def test_sequential_parameter_discovery(self):
        net = nn.Sequential(nn.Linear(4, 8, rng=RNG), nn.Tanh(), nn.Linear(8, 2, rng=RNG))
        assert len(list(net.parameters())) == 4

    def test_flatten(self):
        out = nn.Flatten()(nn.Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2, rng=RNG))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())
