"""Finite-difference verification of every analytic gradient."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.gradcheck import check_gradients

RNG = np.random.default_rng(42)


def arr(*shape):
    return RNG.normal(size=shape)


ELEMENTWISE_CASES = [
    ("add", lambda a, b: F.add(a, b), [arr(3, 4), arr(3, 4)]),
    ("add_broadcast", lambda a, b: F.add(a, b), [arr(3, 4), arr(4)]),
    ("sub", lambda a, b: F.sub(a, b), [arr(3), arr(3)]),
    ("mul", lambda a, b: F.mul(a, b), [arr(2, 3), arr(2, 3)]),
    ("mul_broadcast", lambda a, b: F.mul(a, b), [arr(2, 3), arr(1, 3)]),
    ("div", lambda a, b: F.div(a, b), [arr(4), arr(4) + 3.0]),
    ("neg", lambda a: F.neg(a), [arr(3)]),
    ("pow3", lambda a: F.pow(a, 3.0), [arr(4)]),
    ("exp", lambda a: F.exp(a), [arr(3)]),
    ("log", lambda a: F.log(a), [np.abs(arr(4)) + 0.5]),
    ("sqrt", lambda a: F.sqrt(a), [np.abs(arr(4)) + 0.5]),
    ("abs", lambda a: F.abs(a), [arr(4) + 2.0]),  # keep away from 0
    ("sigmoid", lambda a: F.sigmoid(a), [arr(5)]),
    ("tanh", lambda a: F.tanh(a), [arr(5)]),
    ("relu", lambda a: F.relu(a), [arr(5) + 0.3]),
    ("leaky_relu", lambda a: F.leaky_relu(a, 0.1), [arr(5) + 0.3]),
    ("logsigmoid", lambda a: F.logsigmoid(a), [arr(5) * 3]),
    ("maximum", lambda a, b: F.maximum(a, b), [arr(4), arr(4) + 0.2]),
    ("minimum", lambda a, b: F.minimum(a, b), [arr(4), arr(4) + 0.2]),
    ("clip", lambda a: F.clip(a, -0.5, 0.5), [arr(6) * 2 + 0.01]),
]


@pytest.mark.parametrize("name,fn,inputs", ELEMENTWISE_CASES, ids=[c[0] for c in ELEMENTWISE_CASES])
def test_elementwise_gradients(name, fn, inputs):
    check_gradients(fn, inputs)


MATMUL_CASES = [
    ("mat_mat", [arr(3, 4), arr(4, 5)]),
    ("vec_vec", [arr(4), arr(4)]),
    ("vec_mat", [arr(4), arr(4, 3)]),
    ("mat_vec", [arr(3, 4), arr(4)]),
    ("batched", [arr(2, 3, 4), arr(2, 4, 5)]),
    ("batched_broadcast", [arr(2, 3, 4), arr(4, 5)]),
]


@pytest.mark.parametrize("name,inputs", MATMUL_CASES, ids=[c[0] for c in MATMUL_CASES])
def test_matmul_gradients(name, inputs):
    check_gradients(lambda a, b: F.matmul(a, b), inputs)


SOFTMAX_CASES = [
    ("softmax_ax0", lambda a: F.softmax(a, axis=0), [arr(4, 3)]),
    ("softmax_ax1", lambda a: F.softmax(a, axis=1), [arr(4, 3)]),
    ("softmax_axm1_3d", lambda a: F.softmax(a, axis=-1), [arr(2, 3, 4)]),
    ("log_softmax", lambda a: F.log_softmax(a), [arr(3, 4)]),
]


@pytest.mark.parametrize("name,fn,inputs", SOFTMAX_CASES, ids=[c[0] for c in SOFTMAX_CASES])
def test_softmax_gradients(name, fn, inputs):
    check_gradients(fn, inputs)


REDUCTION_CASES = [
    ("sum_all", lambda a: F.sum(a), [arr(3, 4)]),
    ("sum_axis", lambda a: F.sum(a, axis=1), [arr(3, 4)]),
    ("sum_keepdims", lambda a: F.sum(a, axis=0, keepdims=True), [arr(3, 4)]),
    ("sum_tuple_axes", lambda a: F.sum(a, axis=(0, 2)), [arr(2, 3, 4)]),
    ("mean_all", lambda a: F.mean(a), [arr(3, 4)]),
    ("mean_axis", lambda a: F.mean(a, axis=0), [arr(3, 4)]),
    ("max_axis", lambda a: F.max(a, axis=1), [arr(3, 4)]),
    ("max_all", lambda a: F.max(a), [arr(5)]),
    ("min_axis", lambda a: F.min(a, axis=0), [arr(3, 4)]),
    ("norm", lambda a: F.norm(a, axis=1), [arr(3, 4)]),
    ("l2_normalize", lambda a: F.l2_normalize(a), [arr(2, 4)]),
]


@pytest.mark.parametrize("name,fn,inputs", REDUCTION_CASES, ids=[c[0] for c in REDUCTION_CASES])
def test_reduction_gradients(name, fn, inputs):
    check_gradients(fn, inputs)


SHAPE_CASES = [
    ("reshape", lambda a: F.reshape(a, (6,)), [arr(2, 3)]),
    ("transpose_default", lambda a: F.transpose(a), [arr(2, 3)]),
    ("transpose_axes", lambda a: F.transpose(a, (1, 2, 0)), [arr(2, 3, 4)]),
    ("index_ints", lambda a: F.index(a, np.array([0, 2, 2])), [arr(4, 3)]),
    ("index_slice", lambda a: F.index(a, (slice(None), slice(0, 2))), [arr(3, 4)]),
    ("index_pair", lambda a: F.index(a, (np.array([0, 1]), np.array([2, 0]))), [arr(3, 4)]),
    ("concat", lambda a, b: F.concat([a, b], axis=1), [arr(2, 3), arr(2, 2)]),
    ("stack", lambda a, b: F.stack([a, b], axis=0), [arr(2, 3), arr(2, 3)]),
    ("where", lambda a, b: F.where(np.array([True, False, True]), a, b), [arr(3), arr(3)]),
]


@pytest.mark.parametrize("name,fn,inputs", SHAPE_CASES, ids=[c[0] for c in SHAPE_CASES])
def test_shape_gradients(name, fn, inputs):
    check_gradients(fn, inputs)


NN_CASES = [
    ("embedding", lambda w: F.embedding(w, np.array([0, 2, 2, 1])), [arr(4, 3)]),
    ("layer_norm", lambda a, g, b: F.layer_norm(a, g, b), [arr(3, 6), arr(6), arr(6)]),
    ("conv2d", lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
     [arr(2, 3, 5, 5), arr(4, 3, 3, 3), arr(4)]),
    ("conv2d_stride2", lambda x, w: F.conv2d(x, w, stride=2, padding=0),
     [arr(1, 2, 6, 6), arr(3, 2, 2, 2)]),
    ("max_pool2d", lambda x: F.max_pool2d(x, 2), [arr(1, 2, 4, 4)]),
    ("bce", lambda z: F.bce_with_logits(z, np.array([[1.0, 0.0], [0.0, 1.0]])), [arr(2, 2)]),
    ("bce_smoothed", lambda z: F.bce_with_logits(z, np.eye(3), label_smoothing=0.1), [arr(3, 3)]),
    ("cross_entropy", lambda z: F.cross_entropy(z, np.array([0, 2, 1])), [arr(3, 4)]),
    ("scatter_sum", lambda s: F.scatter_sum(s, np.array([0, 1, 0, 2]), 3), [arr(4, 3)]),
    ("scatter_mean", lambda s: F.scatter_mean(s, np.array([0, 1, 0, 2]), 4), [arr(4, 3)]),
    ("segment_sum", lambda s: F.segment_sum(s, np.array([0, 2, 2, 4])), [arr(4, 3)]),
    ("segment_mean", lambda s: F.segment_mean(s, np.array([0, 2, 2, 4])), [arr(4, 3)]),
    ("circ_corr", lambda a, b: F.circular_correlation(a, b), [arr(3, 8), arr(3, 8)]),
    ("circ_corr_odd", lambda a, b: F.circular_correlation(a, b), [arr(2, 7), arr(2, 7)]),
    ("circ_corr_broadcast", lambda a, b: F.circular_correlation(a, b), [arr(3, 6), arr(1, 6)]),
]


@pytest.mark.parametrize("name,fn,inputs", NN_CASES, ids=[c[0] for c in NN_CASES])
def test_nn_primitive_gradients(name, fn, inputs):
    check_gradients(fn, inputs)


def test_batch_norm_gradient_training_mode():
    running_mean = np.zeros(4)
    running_var = np.ones(4)

    def fn(a, g, b):
        rm, rv = running_mean.copy(), running_var.copy()
        return F.batch_norm(a, g, b, rm, rv, training=True)

    check_gradients(fn, [arr(6, 4), arr(4), arr(4)], atol=1e-4, rtol=1e-3)


def test_batch_norm_gradient_eval_mode():
    running_mean = RNG.normal(size=4)
    running_var = np.abs(RNG.normal(size=4)) + 0.5

    def fn(a, g, b):
        return F.batch_norm(a, g, b, running_mean, running_var, training=False)

    check_gradients(fn, [arr(5, 4), arr(4), arr(4)])
