"""Checkpoint strictness: clear mismatch errors and lenient loading."""

import numpy as np
import pytest

from repro import nn


class Net(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc = nn.Linear(3, 2, rng=np.random.default_rng(0))
        self.scale = nn.Parameter(np.ones(2))


class TestLoadStateDictStrictness:
    def test_error_lists_all_missing_and_unexpected_at_once(self):
        net = Net()
        state = net.state_dict()
        del state["scale"]
        del state["fc.weight"]
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError) as excinfo:
            net.load_state_dict(state)
        message = excinfo.value.args[0]
        assert "missing" in message and "unexpected" in message
        assert "scale" in message and "fc.weight" in message
        assert "ghost" in message

    def test_lenient_loads_intersection_and_reports(self):
        net, source = Net(), Net()
        source.fc.bias.data += 5.0
        state = source.state_dict()
        del state["fc.weight"]
        state["ghost"] = np.zeros(1)
        missing, unexpected = net.load_state_dict(state, strict=False)
        assert missing == ["fc.weight"]
        assert unexpected == ["ghost"]
        np.testing.assert_allclose(net.fc.bias.data, source.fc.bias.data)
        assert not hasattr(net, "ghost")

    def test_lenient_still_rejects_shape_mismatch(self):
        net = Net()
        state = net.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError, match="shape"):
            net.load_state_dict(state, strict=False)

    def test_strict_ok_returns_empty_lists(self):
        net = Net()
        assert net.load_state_dict(net.state_dict()) == ([], [])


class TestLoadModule:
    def test_mismatch_names_the_checkpoint_file(self, tmp_path):
        source, target = Net(), nn.Linear(3, 2, rng=np.random.default_rng(1))
        path = str(tmp_path / "ckpt.npz")
        nn.save_module(source, path)
        with pytest.raises(KeyError) as excinfo:
            nn.load_module(target, path)
        assert "ckpt.npz" in excinfo.value.args[0]
        assert "missing" in excinfo.value.args[0]

    def test_lenient_mode_loads_overlap(self, tmp_path):
        source, target = Net(), Net()
        path = str(tmp_path / "ckpt.npz")
        nn.save_module(source, path)
        target.extra = nn.Parameter(np.zeros(4))  # architecture drift
        nn.load_module(target, path, strict=False)
        np.testing.assert_allclose(target.fc.weight.data, source.fc.weight.data)
        np.testing.assert_allclose(target.extra.data, np.zeros(4))

    def test_buffer_round_trip_still_strict(self, tmp_path):
        bn = nn.BatchNorm1d(2)
        bn(nn.Tensor(np.random.default_rng(0).normal(size=(6, 2))))
        path = str(tmp_path / "bn.npz")
        nn.save_module(bn, path)
        fresh = nn.BatchNorm1d(2)
        nn.load_module(fresh, path)
        np.testing.assert_allclose(fresh.running_mean, bn.running_mean)


class TestFlatten:
    """flatten/unflatten round trips: the repro.dist IPC wire format."""

    def test_round_trip_simple_module(self):
        net = Net()
        flat, spec = nn.flatten_state_dict(net.state_dict())
        assert flat.dtype == np.float64
        assert flat.shape == (spec.total_size,)
        restored = nn.unflatten_state_dict(flat, spec)
        for name, value in net.state_dict().items():
            np.testing.assert_array_equal(restored[name], np.asarray(value))
            assert restored[name].dtype == np.asarray(value).dtype

    def test_spec_slots_are_ordered_and_disjoint(self):
        net = Net()
        _, spec = nn.flatten_state_dict(net.state_dict())
        assert list(spec.names) == list(net.state_dict())
        cursor = 0
        for name in spec.names:
            sl = spec.slot(name)
            assert sl.start == cursor
            cursor = sl.stop
        assert cursor == spec.total_size

    def test_flatten_into_preallocated_buffer(self):
        net = Net()
        flat, spec = nn.flatten_state_dict(net.state_dict())
        out = np.zeros(spec.total_size)
        flat2, _ = nn.flatten_state_dict(net.state_dict(), spec=spec, out=out)
        assert flat2 is out
        np.testing.assert_array_equal(out, flat)

    def test_mismatched_spec_rejected(self):
        net = Net()
        _, spec = nn.flatten_state_dict(net.state_dict())
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(ValueError):
            nn.flatten_state_dict(state, spec=spec)

    def test_round_trip_every_registry_model(self):
        from repro.baselines import MODEL_REGISTRY, build_model
        from repro.datasets import DRKGConfig, build_features, generate_drkg_mm

        mkg = generate_drkg_mm(DRKGConfig().scaled(0.12))
        feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6,
                               d_s=6, gin_epochs=1, compgcn_epochs=1)
        for name in sorted(MODEL_REGISTRY):
            model, _ = build_model(name, mkg, feats,
                                   np.random.default_rng(1), dim=8)
            state = {k: p.data for k, p in model.named_parameters()}
            flat, spec = nn.flatten_state_dict(state)
            restored = nn.unflatten_state_dict(flat, spec)
            assert set(restored) == set(state), name
            for key in state:
                np.testing.assert_array_equal(
                    restored[key], np.asarray(state[key]), err_msg=f"{name}.{key}")
