"""Checkpoint strictness: clear mismatch errors and lenient loading."""

import numpy as np
import pytest

from repro import nn


class Net(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc = nn.Linear(3, 2, rng=np.random.default_rng(0))
        self.scale = nn.Parameter(np.ones(2))


class TestLoadStateDictStrictness:
    def test_error_lists_all_missing_and_unexpected_at_once(self):
        net = Net()
        state = net.state_dict()
        del state["scale"]
        del state["fc.weight"]
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError) as excinfo:
            net.load_state_dict(state)
        message = excinfo.value.args[0]
        assert "missing" in message and "unexpected" in message
        assert "scale" in message and "fc.weight" in message
        assert "ghost" in message

    def test_lenient_loads_intersection_and_reports(self):
        net, source = Net(), Net()
        source.fc.bias.data += 5.0
        state = source.state_dict()
        del state["fc.weight"]
        state["ghost"] = np.zeros(1)
        missing, unexpected = net.load_state_dict(state, strict=False)
        assert missing == ["fc.weight"]
        assert unexpected == ["ghost"]
        np.testing.assert_allclose(net.fc.bias.data, source.fc.bias.data)
        assert not hasattr(net, "ghost")

    def test_lenient_still_rejects_shape_mismatch(self):
        net = Net()
        state = net.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError, match="shape"):
            net.load_state_dict(state, strict=False)

    def test_strict_ok_returns_empty_lists(self):
        net = Net()
        assert net.load_state_dict(net.state_dict()) == ([], [])


class TestLoadModule:
    def test_mismatch_names_the_checkpoint_file(self, tmp_path):
        source, target = Net(), nn.Linear(3, 2, rng=np.random.default_rng(1))
        path = str(tmp_path / "ckpt.npz")
        nn.save_module(source, path)
        with pytest.raises(KeyError) as excinfo:
            nn.load_module(target, path)
        assert "ckpt.npz" in excinfo.value.args[0]
        assert "missing" in excinfo.value.args[0]

    def test_lenient_mode_loads_overlap(self, tmp_path):
        source, target = Net(), Net()
        path = str(tmp_path / "ckpt.npz")
        nn.save_module(source, path)
        target.extra = nn.Parameter(np.zeros(4))  # architecture drift
        nn.load_module(target, path, strict=False)
        np.testing.assert_allclose(target.fc.weight.data, source.fc.weight.data)
        np.testing.assert_allclose(target.extra.data, np.zeros(4))

    def test_buffer_round_trip_still_strict(self, tmp_path):
        bn = nn.BatchNorm1d(2)
        bn(nn.Tensor(np.random.default_rng(0).normal(size=(6, 2))))
        path = str(tmp_path / "bn.npz")
        nn.save_module(bn, path)
        fresh = nn.BatchNorm1d(2)
        nn.load_module(fresh, path)
        np.testing.assert_allclose(fresh.running_mean, bn.running_mean)
