"""Module system: discovery, state dicts, buffers."""

import numpy as np
import pytest

from repro import nn


class TinyNet(nn.Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.fc1 = nn.Linear(3, 4, rng=rng)
        self.fc2 = nn.Linear(4, 1, rng=rng)
        self.scale = nn.Parameter(np.ones(1))

    def forward(self, x):
        from repro.nn import functional as F
        return F.mul(self.fc2(F.tanh(self.fc1(x))), self.scale)


class TestDiscovery:
    def test_named_parameters_paths(self):
        net = TinyNet()
        names = {n for n, _ in net.named_parameters()}
        assert names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias", "scale"}

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 3 * 4 + 4 + 4 + 1 + 1

    def test_modules_traversal(self):
        net = TinyNet()
        assert len(list(net.modules())) == 3  # net + 2 Linear

    def test_zero_grad_clears_all(self):
        net = TinyNet()
        out = net(nn.Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net1, net2 = TinyNet(), TinyNet()
        net2.fc1.weight.data += 1.0
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_allclose(net1.fc1.weight.data, net2.fc1.weight.data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] += 100.0
        assert not np.allclose(net.fc1.weight.data, state["fc1.weight"])

    def test_missing_key_raises(self):
        net = TinyNet()
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError, match="missing"):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError, match="shape"):
            net.load_state_dict(state)

    def test_buffers_serialised(self):
        bn = nn.BatchNorm1d(2)
        bn(nn.Tensor(np.random.default_rng(0).normal(size=(8, 2)) + 5))
        state = bn.state_dict()
        fresh = nn.BatchNorm1d(2)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh.running_mean, bn.running_mean)


class TestModuleList:
    def test_iteration_and_indexing(self):
        ml = nn.ModuleList([nn.LayerNorm(2), nn.LayerNorm(3)])
        assert len(ml) == 2
        assert ml[1] is list(ml)[1]

    def test_parameters_discovered_through_list(self):
        class Holder(nn.Module):
            def __init__(self):
                super().__init__()
                self.items = nn.ModuleList([nn.LayerNorm(2), nn.LayerNorm(2)])

        names = {n for n, _ in Holder().named_parameters()}
        assert "items.0.gamma" in names and "items.1.beta" in names

    def test_append(self):
        ml = nn.ModuleList()
        ml.append(nn.LayerNorm(2))
        assert len(ml) == 1

    def test_calling_container_raises(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList()()


class TestSerializeToDisk:
    def test_save_load_roundtrip(self, tmp_path):
        net1, net2 = TinyNet(), TinyNet()
        path = str(tmp_path / "model.npz")
        nn.save_module(net1, path)
        nn.load_module(net2, path)
        for (n1, p1), (n2, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            assert n1 == n2
            np.testing.assert_allclose(p1.data, p2.data)

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        net = TinyNet()
        path = str(tmp_path / "model.npz")
        nn.save_module(net, path)
        assert not (tmp_path / "model.npz.tmp").exists()
