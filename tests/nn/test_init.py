"""Weight initialisation statistics."""

import numpy as np
import pytest

from repro.nn import init


RNG = np.random.default_rng(0)


class TestFans:
    def test_linear_weight(self):
        assert init._fans((8, 4)) == (4, 8)

    def test_conv_weight(self):
        # (out, in, kh, kw): receptive field multiplies both fans.
        assert init._fans((8, 3, 5, 5)) == (75, 200)

    def test_vector(self):
        assert init._fans((6,)) == (6, 6)

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            init._fans(())


class TestDistributions:
    def test_xavier_normal_std(self):
        w = init.xavier_normal((400, 600), RNG)
        expected = np.sqrt(2.0 / (400 + 600))
        assert w.std() == pytest.approx(expected, rel=0.05)
        assert w.mean() == pytest.approx(0.0, abs=0.001)

    def test_xavier_uniform_bound(self):
        w = init.xavier_uniform((300, 500), RNG)
        bound = np.sqrt(6.0 / 800)
        assert np.abs(w).max() <= bound

    def test_kaiming_normal_std(self):
        w = init.kaiming_normal((500, 200), RNG)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 200), rel=0.05)

    def test_uniform_range(self):
        w = init.uniform((100, 100), RNG, low=-0.2, high=0.2)
        assert w.min() >= -0.2 and w.max() < 0.2

    def test_normal_std(self):
        w = init.normal((500, 100), RNG, std=0.05)
        assert w.std() == pytest.approx(0.05, rel=0.05)

    def test_zeros_ones(self):
        assert init.zeros((3, 3)).sum() == 0
        assert init.ones((3, 3)).sum() == 9

    def test_gain_scales(self):
        a = init.xavier_normal((1000, 1000), np.random.default_rng(1), gain=1.0)
        b = init.xavier_normal((1000, 1000), np.random.default_rng(1), gain=2.0)
        assert b.std() == pytest.approx(2 * a.std(), rel=0.02)

    def test_deterministic_with_seeded_rng(self):
        a = init.xavier_normal((4, 4), np.random.default_rng(3))
        b = init.xavier_normal((4, 4), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
