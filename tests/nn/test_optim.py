"""Optimisers: convergence, state, clipping, schedules."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F


def quadratic_loss(p: nn.Parameter) -> nn.Tensor:
    target = nn.Tensor(np.array([3.0, -2.0]))
    diff = F.sub(p, target)
    return F.sum(F.mul(diff, diff))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = nn.Parameter(np.zeros(2))
        opt = nn.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, -2.0], atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = nn.Parameter(np.zeros(2))
            opt = nn.SGD([p], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                loss = quadratic_loss(p)
                loss.backward()
                opt.step()
            return float(quadratic_loss(p).data)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = nn.Parameter(np.array([10.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        # No loss gradient, only decay.
        p.grad = np.zeros(1)
        opt.step()
        assert abs(p.data[0]) < 10.0

    def test_skips_params_without_grad(self):
        p = nn.Parameter(np.ones(2))
        opt = nn.SGD([p], lr=0.1)
        opt.step()  # no grad -> no change, no crash
        np.testing.assert_allclose(p.data, [1.0, 1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = nn.Parameter(np.zeros(2))
        opt = nn.Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, -2.0], atol=1e-3)

    def test_bias_correction_first_step_magnitude(self):
        p = nn.Parameter(np.zeros(1))
        opt = nn.Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        # With bias correction the first step is ~ lr regardless of betas.
        assert p.data[0] == pytest.approx(-0.1, rel=1e-3)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)


class TestClipGradNorm:
    def test_scales_down_when_over(self):
        p = nn.Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_untouched_when_under(self):
        p = nn.Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        nn.clip_grad_norm([p], max_norm=5.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])


class TestSchedules:
    def test_step_lr(self):
        p = nn.Parameter(np.zeros(1))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_exponential_lr(self):
        p = nn.Parameter(np.zeros(1))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.ExponentialLR(opt, gamma=0.9)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.81)


class TestEndToEndTraining:
    def test_xor_learnable(self):
        rng = np.random.default_rng(0)
        net = nn.Sequential(nn.Linear(2, 8, rng=rng), nn.Tanh(), nn.Linear(8, 1, rng=rng))
        opt = nn.Adam(net.parameters(), lr=0.05)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([[0.0], [1.0], [1.0], [0.0]])
        for _ in range(300):
            opt.zero_grad()
            loss = F.bce_with_logits(net(nn.Tensor(x)), y)
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.05
